"""strict_ls vs weak_ls: the paper's motivating comparison."""


from repro.dynsets import FileSystem, strict_ls, weak_ls
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel, Sleep
from repro.store import World


def make_fs(n_files=6, n_nodes=4, service_time=0.002):
    nodes = ["client", "root"] + [f"n{i}" for i in range(n_nodes)]
    kernel = Kernel()
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net, service_time=service_time)
    fs = FileSystem(world, root_node="root")
    fs.mkdir("/pub", node="root")
    for i in range(n_files):
        fs.create_file(f"/pub/f{i:02d}", content=f"data{i}", home=f"n{i % n_nodes}")
    return kernel, net, world, fs


def test_strict_ls_lists_alphabetically():
    kernel, net, world, fs = make_fs(5)

    def proc():
        return (yield from strict_ls(fs, "client", "/pub"))

    result = kernel.run_process(proc())
    assert not result.failed
    assert result.names == sorted(result.names)
    assert len(result.names) == 5


def test_strict_ls_fails_on_unreachable_file():
    kernel, net, world, fs = make_fs(6)
    net.crash("n1")

    def proc():
        return (yield from strict_ls(fs, "client", "/pub"))

    result = kernel.run_process(proc())
    assert result.failed
    assert result.entries == []      # all-or-nothing


def test_weak_ls_returns_reachable_files_despite_failure():
    kernel, net, world, fs = make_fs(8, n_nodes=4)
    net.crash("n1")

    def proc():
        return (yield from weak_ls(fs, "client", "/pub", give_up_after=1.0))

    result = kernel.run_process(proc())
    assert not result.failed
    available = [e for e in result.entries if e.kind != "unavailable"]
    unavailable = [e for e in result.entries if e.kind == "unavailable"]
    assert len(available) == 6       # files on n0, n2, n3
    assert len(unavailable) == 2     # files on the crashed n1
    assert {e.name for e in result.entries} == {f"f{i:02d}" for i in range(8)}


def test_weak_ls_faster_to_first_entry_than_strict_total():
    kernel, net, world, fs = make_fs(12, service_time=0.02)

    def weak():
        return (yield from weak_ls(fs, "client", "/pub", parallelism=4))

    weak_result = kernel.run_process(weak())

    def strict():
        return (yield from strict_ls(fs, "client", "/pub"))

    strict_result = kernel.run_process(strict())
    assert not weak_result.failed and not strict_result.failed
    assert weak_result.time_to_first < strict_result.total_time / 4
    assert weak_result.total_time < strict_result.total_time


def test_weak_ls_with_limit_stops_early():
    kernel, net, world, fs = make_fs(10, service_time=0.02)

    def proc():
        return (yield from weak_ls(fs, "client", "/pub", limit=3))

    result = kernel.run_process(proc())
    assert len([e for e in result.entries if e.kind != "unavailable"]) == 3


def test_weak_ls_lists_directories_too():
    kernel, net, world, fs = make_fs(2)
    fs.mkdir("/pub/sub", node="n2")

    def proc():
        return (yield from weak_ls(fs, "client", "/pub"))

    result = kernel.run_process(proc())
    kinds = {e.name: e.kind for e in result.entries}
    assert kinds["sub"] == "dir"
    assert kinds["f00"] == "file"


def test_weak_ls_blocks_then_completes_after_heal_without_give_up():
    kernel, net, world, fs = make_fs(6, n_nodes=3)
    net.isolate("n0")

    def healer():
        yield Sleep(3.0)
        net.heal()

    def proc():
        return (yield from weak_ls(fs, "client", "/pub"))  # no give_up

    kernel.spawn(healer(), daemon=True)
    result = kernel.run_process(proc())
    assert not result.failed
    assert len(result.entries) == 6
    assert all(e.kind == "file" for e in result.entries)
