"""Constraint clauses: immutable, grow-only, trivial, per-run."""

from hypothesis import given, strategies as st

from repro.spec import (
    GrowOnlyConstraint,
    ImmutableConstraint,
    TrivialConstraint,
    per_run_grow_only,
    per_run_immutable,
)
from repro.store import Element


def elem(name: str) -> Element:
    return Element(name=name, oid=f"oid-{name}", home="s0")


A, B, C = elem("a"), elem("b"), elem("c")


def hist(*values, times=None):
    values = [frozenset(v) for v in values]
    times = times or [float(i) for i in range(len(values))]
    return list(zip(times, values))


# ---------------------------------------------------------------------------
# basic constraints
# ---------------------------------------------------------------------------

def test_trivial_never_violated():
    h = hist({A}, {B}, set(), {A, B, C})
    assert TrivialConstraint().check(h) == []
    assert TrivialConstraint().check_pairwise(h) == []


def test_immutable_holds_on_constant_history():
    h = hist({A, B}, {A, B}, {A, B})
    assert ImmutableConstraint().check(h) == []


def test_immutable_flags_any_change():
    h = hist({A}, {A, B})
    v = ImmutableConstraint().check(h)
    assert len(v) == 1
    assert "immutable" in v[0].message


def test_grow_only_holds_on_monotone_history():
    h = hist(set(), {A}, {A, B}, {A, B, C})
    assert GrowOnlyConstraint().check(h) == []


def test_grow_only_flags_shrink():
    h = hist({A, B}, {A})
    assert len(GrowOnlyConstraint().check(h)) == 1


def test_grow_only_flags_replace():
    # {A} -> {B} is neither subset nor superset: still a violation.
    h = hist({A}, {B})
    assert len(GrowOnlyConstraint().check(h)) == 1


# ---------------------------------------------------------------------------
# consecutive-pair checking is equivalent to the paper's ∀ i<j form
# (valid because =, ⊆ are transitive)
# ---------------------------------------------------------------------------

members_strategy = st.lists(
    st.sets(st.sampled_from([A, B, C])), min_size=0, max_size=8
)


@given(members_strategy)
def test_immutable_consecutive_equiv_pairwise(values):
    h = hist(*values)
    c = ImmutableConstraint()
    assert bool(c.check(h)) == bool(c.check_pairwise(h))


@given(members_strategy)
def test_grow_only_consecutive_equiv_pairwise(values):
    h = hist(*values)
    c = GrowOnlyConstraint()
    assert bool(c.check(h)) == bool(c.check_pairwise(h))


# ---------------------------------------------------------------------------
# per-run constraints
# ---------------------------------------------------------------------------

def test_per_run_immutable_allows_change_between_runs():
    h = hist({A}, {A}, {A, B}, {A, B}, times=[0.0, 1.0, 5.0, 6.0])
    windows = [(0.5, 1.5), (5.5, 6.5)]  # the change at t=5 is between runs
    assert per_run_immutable().check_windows(h, windows) == []


def test_per_run_immutable_flags_change_during_run():
    h = hist({A}, {A, B}, times=[0.0, 1.0])
    windows = [(0.5, 1.5)]  # the change at t=1.0 falls inside the run
    assert len(per_run_immutable().check_windows(h, windows)) == 1


def test_per_run_uses_value_in_force_at_window_start():
    # value {A} from t=0; window starts at 2.0; change at 3.0 inside it
    h = hist({A}, {A, B}, times=[0.0, 3.0])
    assert len(per_run_immutable().check_windows(h, [(2.0, 4.0)])) == 1
    # but if the window closes before the change, all is well
    assert per_run_immutable().check_windows(h, [(2.0, 2.9)]) == []


def test_per_run_grow_only_allows_shrink_between_runs():
    h = hist({A, B}, {A}, {A, C}, times=[0.0, 4.0, 5.0])
    windows = [(0.0, 3.0), (4.5, 6.0)]  # shrink at t=4 is between runs
    assert per_run_grow_only().check_windows(h, windows) == []


def test_per_run_grow_only_flags_shrink_during_run():
    h = hist({A, B}, {A}, times=[0.0, 1.0])
    assert len(per_run_grow_only().check_windows(h, [(0.5, 2.0)])) == 1


def test_per_run_with_no_windows_is_vacuous():
    h = hist({A}, set(), {B})
    assert per_run_immutable().check_windows(h, []) == []
