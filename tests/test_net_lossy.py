"""Lossy links: flaky-but-up connectivity, and weak sets on top of it."""

import pytest

from repro.errors import SimulationError, TimeoutFailure
from repro.net import FixedLatency, Link, Network, Topology
from repro.sim import Kernel
from repro.spec import Returned
from repro.store import World
from repro.weaksets import DynamicSet


def lossy_pair(loss_rate, seed=0, timeout=0.3):
    kernel = Kernel(seed=seed)
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    link = topo.add_link("a", "b", FixedLatency(0.01))
    link.loss_rate = loss_rate
    net = Network(kernel, topo, default_timeout=timeout)
    return kernel, net


class Echo:
    def echo(self, x):
        return x


def test_loss_rate_validation():
    with pytest.raises(SimulationError):
        Link("a", "b", loss_rate=1.0)
    with pytest.raises(SimulationError):
        Link("a", "b", loss_rate=-0.1)
    Link("a", "b", loss_rate=0.5)  # fine


def test_zero_loss_never_drops():
    kernel, net = lossy_pair(0.0)
    net.register_service("b", "echo", Echo())

    def proc():
        for i in range(50):
            assert (yield from net.call("a", "b", "echo", "echo", i)) == i
        return True

    assert kernel.run_process(proc())
    assert net.transport.messages_dropped == 0


def test_lossy_link_causes_timeouts_at_roughly_loss_rate():
    kernel, net = lossy_pair(0.3, seed=5)
    net.register_service("b", "echo", Echo())
    outcomes = {"ok": 0, "timeout": 0}

    def proc():
        for i in range(200):
            try:
                yield from net.call("a", "b", "echo", "echo", i, timeout=0.3)
                outcomes["ok"] += 1
            except TimeoutFailure:
                outcomes["timeout"] += 1

    kernel.run_process(proc())
    # either direction can drop: expected failure rate 1-(0.7)^2 = 0.51
    rate = outcomes["timeout"] / 200
    assert 0.35 < rate < 0.65
    assert net.transport.messages_dropped > 0


def test_retry_eventually_succeeds_over_lossy_link():
    kernel, net = lossy_pair(0.4, seed=9)
    net.register_service("b", "echo", Echo())

    def call_with_retries():
        for _ in range(20):
            try:
                return (yield from net.call("a", "b", "echo", "echo", "hi",
                                            timeout=0.2))
            except TimeoutFailure:
                continue
        return None

    assert kernel.run_process(call_with_retries()) == "hi"


def test_dynamic_set_completes_over_lossy_network():
    """The optimistic iterator's retries absorb message loss too."""
    kernel = Kernel(seed=3)
    topo = Topology()
    for n in ["client", "s0", "s1"]:
        topo.add_node(n)
    for a, b in [("client", "s0"), ("client", "s1"), ("s0", "s1")]:
        link = topo.add_link(a, b, FixedLatency(0.01))
        link.loss_rate = 0.2
    net = Network(kernel, topo, default_timeout=0.3)
    world = World(net)
    world.create_collection("c", primary="s0")
    elements = [world.seed_member("c", f"m{i}", value=i, home=f"s{i % 2}")
                for i in range(6)]
    ws = DynamicSet(world, "client", "c", retry_interval=0.2)

    def proc():
        return (yield from ws.elements().drain())

    result = kernel.run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(elements)
