"""The sharded membership registry: ring, routing, reads, rebalance."""

import pytest

from repro.errors import (
    FailureException,
    ServerBusyFailure,
    SimulationError,
    WrongShardFailure,
)
from repro.sim.events import Join, Sleep
from repro.store import (
    Element,
    HashRing,
    Repository,
    ShardMap,
    fresh_oid,
    shard_state_id,
)

from helpers import CLIENT, sharded_world, standard_world


# ---------------------------------------------------------------------------
# HashRing / ShardMap units
# ---------------------------------------------------------------------------

def test_ring_placement_is_deterministic_and_total():
    a = HashRing(("s0", "s1", "s2"))
    b = HashRing(("s2", "s0", "s1"))          # node order must not matter
    names = [f"k{i}" for i in range(200)]
    assert [a.owner(n) for n in names] == [b.owner(n) for n in names]
    owned = {a.owner(n) for n in names}
    assert owned == {"s0", "s1", "s2"}        # no shard starves at 200 keys


def test_ring_seed_changes_placement():
    names = [f"k{i}" for i in range(100)]
    a = HashRing(("s0", "s1", "s2"), seed=0)
    b = HashRing(("s0", "s1", "s2"), seed=1)
    assert any(a.owner(n) != b.owner(n) for n in names)


def test_ring_grow_moves_keys_only_to_the_new_node():
    old = HashRing(("s0", "s1", "s2"))
    new = old.with_node("s3")
    names = [f"k{i}" for i in range(300)]
    moved = old.moved_names(names, new)
    assert moved                               # vnodes guarantee some motion
    assert set(moved.values()) == {"s3"}       # consistent hashing's promise
    for name in names:
        if old.owner(name) != new.owner(name):
            assert name in moved


def test_ring_shrink_reassigns_only_the_removed_nodes_keys():
    old = HashRing(("s0", "s1", "s2"))
    new = old.without_node("s1")
    for i in range(300):
        name = f"k{i}"
        if old.owner(name) != "s1":
            assert new.owner(name) == old.owner(name)
        else:
            assert new.owner(name) in ("s0", "s2")


def test_shard_map_legitimate_holders_during_migration():
    ring = HashRing(("s0", "s1"))
    target = ring.with_node("s2")
    smap = ShardMap(ring=ring, migration=target)
    moving = next(f"k{i}" for i in range(1000)
                  if target.owner(f"k{i}") == "s2")
    assert smap.shard_of(moving) == ring.owner(moving)
    assert smap.legitimate_holders(moving) == {ring.owner(moving), "s2"}
    settled = next(f"k{i}" for i in range(1000)
                   if target.owner(f"k{i}") != "s2")
    assert smap.legitimate_holders(settled) == {ring.owner(settled)}


def test_shard_state_id_namespaces_mirrors():
    assert shard_state_id("coll", "s1") == "coll@s1"


# ---------------------------------------------------------------------------
# create_collection validation (satellite: duplicate replicas)
# ---------------------------------------------------------------------------

def test_create_collection_rejects_duplicate_replicas():
    kernel, net, world, _ = standard_world()
    with pytest.raises(SimulationError, match="duplicate node ids"):
        world.create_collection("dup", primary="s0",
                                replicas=("s1", "s2", "s1"))


def test_create_collection_rejects_duplicate_replicas_sharded():
    kernel, net, world, _ = sharded_world(mirrors=2)
    with pytest.raises(SimulationError, match="duplicate node ids"):
        world.create_collection("dup", replicas=("m0", "m0"),
                                shards=("s0", "s1"))


def test_create_collection_rejects_shard_replica_overlap():
    kernel, net, world, _ = sharded_world()
    with pytest.raises(SimulationError):
        world.create_collection("overlap", replicas=("s1",),
                                shards=("s0", "s1"))


# ---------------------------------------------------------------------------
# Routing and scatter-gather reads
# ---------------------------------------------------------------------------

def test_registration_lands_on_the_owning_shard_only():
    kernel, net, world, _ = sharded_world()
    repo = Repository(world, CLIENT)

    def proc():
        els = []
        for i in range(20):
            e = yield from repo.add("coll", f"k{i}", value=i, size=0)
            els.append(e)
        return els

    els = kernel.run_process(proc())
    ring = world.collections["coll"].shard_map.ring
    placed = {node: set(state.members) for node, state
              in world.partition_states("coll")}
    for e in els:
        owner = ring.owner(e.name)
        assert e.name in placed[owner]
        for node, names in placed.items():
            if node != owner:
                assert e.name not in names
    assert world.check_invariants() == []


def test_scatter_read_merges_all_shards():
    kernel, net, world, elements = sharded_world(members=15)
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.read_membership("coll", source="primary"))

    view = kernel.run_process(proc())
    assert {e.name for e in view.members} == {e.name for e in elements}
    assert set(view.shard_versions) == {"s0", "s1", "s2"}
    assert view.version == sum(view.shard_versions.values())
    assert world.kernel.obs.metrics.value("shard.scatter_reads") >= 1


def test_wrong_shard_rejected_and_rerouted():
    kernel, net, world, _ = sharded_world()
    repo = Repository(world, CLIENT)
    ring = world.collections["coll"].shard_map.ring
    name = "needs-a-home"
    owner = ring.owner(name)
    wrong = next(n for n in ring.nodes if n != owner)

    element = Element(name=name, oid=fresh_oid(name), home=owner)

    def direct():
        yield from repo._call(owner, "put_object", element.oid, None, 0)
        yield from repo._call(wrong, "add_member", "coll", element)

    with pytest.raises(WrongShardFailure) as exc_info:
        kernel.run_process(direct())
    assert exc_info.value.owner == owner
    # Reclaim the probe's object so the orphan-GC invariant stays clean.
    kernel.run_process(repo._call(owner, "delete_object", element.oid))

    def routed():
        e = yield from repo.add("coll", "routed-fine", value=1, size=0)
        return e

    kernel.run_process(routed())
    assert world.check_invariants() == []


def test_mirror_fence_triggers_authoritative_reread():
    kernel, net, world, _ = sharded_world(mirrors=1, members=9,
                                          replica_lag=0.1)
    repo = Repository(world, CLIENT)

    # God-mode seeding populates mirrors instantly; wind m0 back so it
    # is genuinely stale, as it would be behind a missed sync round.
    mirror = world.server("m0")
    for shard in ("s0", "s1", "s2"):
        alias = mirror.collections[shard_state_id("coll", shard)]
        alias.members.clear()
        alias.member_versions.clear()
        alias.version = 0

    def proc():
        # Authoritative scatter read sets the per-shard fences.
        yield from repo.read_membership("coll", source="primary")
        # The mirror now answers below the fence: the read must detect
        # the violation and re-read authoritatively from the shards.
        view = yield from repo.read_membership("coll", source="m0")
        return view

    view = kernel.run_process(proc())
    assert len(view.members) == 9
    assert world.kernel.obs.metrics.value("shard.fence_rereads") >= 1


def test_mirrors_converge_per_shard():
    kernel, net, world, elements = sharded_world(mirrors=2, members=12,
                                                 replica_lag=0.1)

    def proc():
        yield Sleep(1.0)

    kernel.run_process(proc())
    for mirror in ("m0", "m1"):
        server = world.server(mirror)
        mirrored = set()
        for shard in ("s0", "s1", "s2"):
            state = server.collections[shard_state_id("coll", shard)]
            mirrored |= set(state.members)
    assert mirrored == {e.name for e in elements}
    assert world.check_invariants() == []


# ---------------------------------------------------------------------------
# Invariants on sharded worlds
# ---------------------------------------------------------------------------

def test_invariants_catch_member_parked_on_wrong_shard():
    kernel, net, world, elements = sharded_world(members=6)
    ring = world.collections["coll"].shard_map.ring
    victim = elements[0]
    wrong = next(n for n in ring.nodes if n != ring.owner(victim.name))
    state = world.server(wrong).collections["coll"]
    state.members[victim.name] = victim
    state.member_versions[victim.name] = 1
    problems = world.check_invariants()
    assert any(victim.name in p for p in problems)


def test_invariants_catch_undropped_range_copy():
    kernel, net, world, elements = sharded_world(members=6, spare=1)
    victim = elements[0]
    # A node that is off the ring hosting a primary-flavored partition
    # with members = a botched cutover that never dropped its range.
    from repro.store.server import CollectionState
    stray = CollectionState(coll_id="coll", policy="any", is_primary=True)
    stray.members[victim.name] = victim
    stray.member_versions[victim.name] = 1
    world.server("x0").collections["coll"] = stray
    problems = world.check_invariants()
    assert problems


# ---------------------------------------------------------------------------
# Migration primitives
# ---------------------------------------------------------------------------

def test_absorb_handoff_is_idempotent():
    kernel, net, world, elements = sharded_world(members=8, spare=1)
    target = world.server("x0")
    from repro.store.server import CollectionState
    target.collections["coll"] = CollectionState(
        coll_id="coll", policy="any", is_primary=True)
    adds = tuple((e.name, e) for e in elements[:4])

    def proc():
        first = yield from target.absorb_handoff("coll", adds)
        second = yield from target.absorb_handoff("coll", adds)
        return first, second

    first, second = kernel.run_process(proc())
    assert first == 4 and second == 0          # replay applies nothing
    state = target.collections["coll"]
    assert set(state.members) == {e.name for e in elements[:4]}


def test_freeze_rejects_moving_range_with_retry_hint():
    kernel, net, world, _ = sharded_world(spare=1)
    repo = Repository(world, CLIENT)
    info = world.collections["coll"]
    target_ring = info.shard_map.ring.with_node("x0")
    moving = next(f"k{i}" for i in range(1000)
                  if target_ring.owner(f"k{i}") == "x0")
    source = info.shard_map.ring.owner(moving)
    server = world.server(source)

    def proc():
        yield from server.freeze_range("coll", target_ring)
        element = Element(name=moving, oid=fresh_oid(moving), home=source)
        yield from repo._call(source, "put_object", element.oid, None, 0)
        try:
            yield from repo._call(source, "add_member", "coll", element)
        except ServerBusyFailure as exc:
            frozen = exc.retry_after
        else:
            frozen = None
        yield from server.unfreeze_range("coll")
        yield from repo._call(source, "add_member", "coll", element)
        return frozen

    frozen = kernel.run_process(proc())
    assert frozen is not None                  # busy hint, not an error
    assert moving in world.server(source).collections["coll"].members


def test_drop_range_bumps_epoch_without_tombstones():
    kernel, net, world, _ = sharded_world(spare=1)
    info = world.collections["coll"]
    old_ring = info.shard_map.ring
    target_ring = old_ring.with_node("x0")
    source = "s0"
    # Seed names that provably live on s0 now and move to x0 after.
    moving = [f"k{i}" for i in range(500)
              if old_ring.owner(f"k{i}") == source
              and target_ring.owner(f"k{i}") == "x0"][:3]
    staying = [f"k{i}" for i in range(500)
               if old_ring.owner(f"k{i}") == source
               and target_ring.owner(f"k{i}") == source][:3]
    assert moving and staying
    for name in moving + staying:
        world.seed_member("coll", name, value=name, home=source)
    state = world.server(source).collections["coll"]
    before_epoch = state.epoch

    def proc():
        return (yield from world.server(source).drop_range("coll",
                                                           target_ring))

    kernel.run_process(proc())
    assert state.epoch == before_epoch + 1
    for name in moving:
        assert name not in state.members
        assert name not in state.removed       # dropped, not tombstoned
    for name in staying:
        assert name in state.members           # the kept range is intact


# ---------------------------------------------------------------------------
# Live rebalance end to end
# ---------------------------------------------------------------------------

def _settle(kernel, world, budget=30.0):
    deadline = kernel.now + budget
    problems = world.check_invariants()
    while problems and kernel.now < deadline:
        kernel.run(until=kernel.now + 0.5)
        problems = world.check_invariants()
    return problems


def test_add_shard_preserves_membership():
    kernel, net, world, elements = sharded_world(members=24, spare=1)
    before = world.true_members("coll")

    def proc():
        yield Join(world.add_shard("coll", "x0"))
        yield Sleep(1.0)

    kernel.run_process(proc())
    smap = world.collections["coll"].shard_map
    assert smap.ring.nodes == ("s0", "s1", "s2", "x0")
    assert smap.generation == 1 and smap.migration is None
    assert world.true_members("coll") == before
    assert _settle(kernel, world) == []
    # The new shard actually owns keys.
    x0_members = world.server("x0").collections["coll"].members
    assert all(smap.ring.owner(n) == "x0" for n in x0_members)


def test_remove_shard_preserves_membership():
    kernel, net, world, elements = sharded_world(members=24)
    before = world.true_members("coll")

    def proc():
        yield Join(world.remove_shard("coll", "s2"))
        yield Sleep(1.0)

    kernel.run_process(proc())
    smap = world.collections["coll"].shard_map
    assert smap.ring.nodes == ("s0", "s1")
    assert world.true_members("coll") == before
    assert _settle(kernel, world) == []


def test_remove_shard_refuses_the_coordinator():
    kernel, net, world, _ = sharded_world()
    with pytest.raises(SimulationError):
        world.remove_shard("coll", world.collections["coll"].primary)


def test_concurrent_rebalances_are_refused():
    kernel, net, world, _ = sharded_world(members=40, spare=2)
    world.add_shard("coll", "x0")
    with pytest.raises(SimulationError):
        world.add_shard("coll", "x1")

    def proc():
        yield Sleep(30.0)

    kernel.run_process(proc())
    assert world.collections["coll"].shard_map.migration is None


def test_writes_continue_during_rebalance():
    kernel, net, world, elements = sharded_world(members=16, spare=1)
    repo = Repository(world, CLIENT)
    acked = []

    def writer():
        for i in range(30):
            try:
                e = yield from repo.add("coll", f"live-{i:02d}", value=i,
                                        size=0)
                acked.append(e)
            except FailureException:
                pass
            yield Sleep(0.05)

    def proc():
        from repro.sim.events import Fork
        child = yield Fork(writer(), name="live-writer")
        yield Sleep(0.2)
        yield Join(world.add_shard("coll", "x0"))
        yield Join(child)
        yield Sleep(1.0)

    kernel.run_process(proc())
    truth = {e.name for e in world.true_members("coll")}
    for e in acked:
        assert e.name in truth                 # nothing acked was lost
    assert _settle(kernel, world) == []
