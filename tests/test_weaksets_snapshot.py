"""SnapshotSet (Figure 4): first-state snapshot, loss of mutations."""


from repro.spec import Failed, Returned, Yielded, check_conformance, spec_by_id
from repro.weaksets import SnapshotSet

from helpers import CLIENT, PRIMARY, drain_all, standard_world


def test_yields_exactly_the_snapshot():
    kernel, net, world, elements = standard_world(members=6)
    ws = SnapshotSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert not result.failed
    assert frozenset(result.elements) == frozenset(elements)
    assert isinstance(result.outcome, Returned)


def test_values_are_fetched():
    kernel, net, world, elements = standard_world(members=3)
    ws = SnapshotSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert sorted(result.values) == ["v0", "v1", "v2"]


def test_conforms_to_fig4_on_quiet_world():
    kernel, net, world, elements = standard_world(members=5)
    ws = SnapshotSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    report = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert report.conformant, report.counterexample()


def test_misses_addition_made_after_first_invocation():
    kernel, net, world, elements = standard_world(members=4)
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        assert isinstance(first, Yielded)
        # mutate after the snapshot was taken
        late = yield from ws.repo.add("coll", "late-arrival", value="L")
        rest = yield from iterator.drain()
        return late, [first.element] + rest.elements

    late, got = kernel.run_process(proc())
    assert late not in got                 # the mutation was "lost"
    assert frozenset(got) == frozenset(elements)
    # and the trace still conforms to fig4 (loss is the specified behaviour)
    report = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert report.conformant, report.counterexample()


def test_yields_element_removed_mid_run_with_none_value():
    kernel, net, world, elements = standard_world(members=4)
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        # remove a not-yet-yielded element
        victim = next(e for e in elements if e != first.element)
        yield from ws.repo.remove("coll", victim)
        rest = yield from iterator.drain()
        yielded = {first.element: first.value}
        yielded.update({y.element: y.value for y in rest.yields})
        return victim, yielded

    victim, yielded = kernel.run_process(proc())
    assert victim in yielded               # Fig 4: removed element still yielded
    assert yielded[victim] is None         # but its data is gone
    report = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert report.conformant, report.counterexample()


def test_violates_fig3_constraint_when_set_mutates():
    """Same ensures clause as Fig 3, but the immutability constraint
    distinguishes them: a mutated history breaks fig3, not fig4."""
    kernel, net, world, elements = standard_world(members=3)
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "new", value="N")
        yield from iterator.drain()

    kernel.run_process(proc())
    fig3 = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    fig4 = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert not fig3.conformant
    assert fig3.constraint_violations        # specifically the constraint
    assert fig4.conformant, fig4.counterexample()


def test_fails_when_primary_unreachable_at_first_invocation():
    kernel, net, world, elements = standard_world(members=3)
    net.isolate(PRIMARY)
    ws = SnapshotSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    assert result.elements == []


def test_skips_unreachable_then_fails_when_all_unreachable():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    # members on s0, s1, s2; cut off s1 after the snapshot
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        out = yield from iterator.invoke()   # snapshot + first yield
        net.split([CLIENT])                  # now everything is unreachable
        nxt = yield from iterator.invoke()
        return out, nxt

    out, nxt = kernel.run_process(proc())
    assert isinstance(out, Yielded)
    assert isinstance(nxt, Failed)
    report = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert report.conformant, report.counterexample()


def test_partial_reachability_yields_reachable_subset_first():
    kernel, net, world, elements = standard_world(n_servers=4, members=8)
    # isolate one server holding members m1, m5 (homes s1)
    net.split([CLIENT, "s0", "s2", "s3"], ["s1"])
    ws = SnapshotSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed                      # pessimistic: s1's members unreachable
    reachable = {e for e in elements if e.home != "s1"}
    assert frozenset(result.elements) == reachable
    report = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    assert report.conformant, report.counterexample()


def test_two_runs_can_return_different_sets():
    """'Running the same query twice in a row may return different sets.'"""
    kernel, net, world, elements = standard_world(members=3)
    ws = SnapshotSet(world, CLIENT, "coll")
    r1 = drain_all(kernel, ws)

    def mutate():
        yield from ws.repo.add("coll", "extra", value="E")

    kernel.run_process(mutate())
    r2 = drain_all(kernel, ws)
    assert frozenset(r1.elements) != frozenset(r2.elements)
    assert len(r2.elements) == 4
