"""The batched, pipelined write path: WritePipeline + group commit."""

import pytest

from repro.errors import FailureException, MutationNotAllowed
from repro.net.failures import FaultSchedule
from repro.sim.events import Sleep
from repro.store import AddSpec, Repository
from repro.store.wal import APPLIED, PENDING
from repro.weaksets import DynamicSet

from helpers import CLIENT, PRIMARY, standard_world


def _specs(n, *, home=None, replicas=(), size=0):
    return [AddSpec(name=f"b{i:03d}", value=f"bv{i}", home=home,
                    size=size, replicas=replicas) for i in range(n)]


# ---------------------------------------------------------------------------
# the happy path: batching, coalescing, result order
# ---------------------------------------------------------------------------

def test_add_many_registers_all_members():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    specs = [AddSpec(f"b{i:03d}", value=i, home=f"s{i % 4}")
             for i in range(10)]
    elements = kernel.run_process(
        repo.add_many("coll", specs, window=4, batch_size=4))
    assert [e.name for e in elements] == [s.name for s in specs]
    truth = {e.name for e in world.true_members("coll")}
    assert truth == {s.name for s in specs}
    assert world.check_invariants() == []


def test_add_many_results_follow_submission_order():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    # mixed homes => batches complete out of order; results must not
    elements = kernel.run_process(
        repo.add_many("coll", _specs(9, home="s2"), window=3, batch_size=2))
    assert [e.name for e in elements] == [f"b{i:03d}" for i in range(9)]


def test_add_many_accepts_bare_names():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    elements = kernel.run_process(repo.add_many("coll", ["x", "y"]))
    assert {e.name for e in elements} == {"x", "y"}
    # default home is the collection primary
    assert all(e.home == PRIMARY for e in elements)


def test_same_home_puts_coalesce_into_multiputs():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    kernel.run_process(
        repo.add_many("coll", _specs(8, home="s1"), window=1, batch_size=4))
    metrics = kernel.obs.metrics
    # 8 puts to one destination in batches of 4 → 2 put_objects calls,
    # plus 2 add_members calls; far fewer than the 16 serial RPCs
    assert metrics.value("write.batch.calls") == 4
    assert metrics.value("write.batch.elements") == 16
    assert metrics.value("write.batch.coalesced") > 0
    assert metrics.value("write.batch.acked") == 8


def test_replica_fanout_runs_concurrently():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    start = kernel.now
    kernel.run_process(repo.add_many(
        "coll", _specs(4, home="s1", replicas=("s2", "s3")),
        window=1, batch_size=4))
    fanned = kernel.now - start

    kernel2, net2, world2, _ = standard_world()
    repo2 = Repository(world2, CLIENT)
    start = kernel2.now

    def serial():
        for s in _specs(4, home="s1", replicas=("s2", "s3")):
            yield from repo2.add("coll", s.name, s.value, s.home,
                                 s.size, replicas=s.replicas)

    kernel2.run_process(serial())
    assert fanned < kernel2.now - start
    assert ({e.name for e in world.true_members("coll")}
            == {e.name for e in world2.true_members("coll")})


def test_batched_adds_preserve_copy_implies_member():
    """Every replica listed on a registered element has a live copy —
    membership only ever trails the puts, never leads them."""
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    elements = kernel.run_process(repo.add_many(
        "coll", _specs(6, home="s1", replicas=("s2",)),
        window=2, batch_size=3))
    for element in elements:
        assert world.server(element.home).has_object(element.oid)
        for replica in element.replicas:
            assert world.server(replica).has_object(element.oid)
    assert world.check_invariants() == []


def test_remove_many_unregisters_and_counts():
    kernel, net, world, elements = standard_world(members=7)
    repo = Repository(world, CLIENT)
    victims = elements[:5]
    acked = kernel.run_process(
        repo.remove_many("coll", victims, window=2, batch_size=3))
    assert acked == 5
    truth = {e.name for e in world.true_members("coll")}
    assert truth == {e.name for e in elements[5:]}
    assert world.check_invariants() == []


def test_mixed_add_remove_batches_settle_clean():
    kernel, net, world, elements = standard_world(members=4, replicas=1)
    repo = Repository(world, CLIENT)

    def proc():
        added = yield from repo.add_many(
            "coll", _specs(6, home="s2", replicas=("s3",)),
            window=2, batch_size=2)
        gone = yield from repo.remove_many(
            "coll", elements[:2] + added[:3], window=2, batch_size=4)
        return added, gone

    added, gone = kernel.run_process(proc())
    assert gone == 5
    kernel.run(until=kernel.now + 2.0)      # replica sync settle
    truth = {e.name for e in world.true_members("coll")}
    assert truth == ({e.name for e in elements[2:]}
                     | {e.name for e in added[3:]})
    assert world.check_invariants() == []


def test_weakset_add_many_delegates_to_pipeline():
    kernel, net, world, _ = standard_world()
    ws = DynamicSet(world, CLIENT, "coll")
    elements = kernel.run_process(ws.add_many(["p", "q", "r"]))
    assert {e.name for e in elements} == {"p", "q", "r"}
    assert kernel.obs.metrics.value("write.batch.calls") > 0


# ---------------------------------------------------------------------------
# group commit on the server
# ---------------------------------------------------------------------------

def test_add_members_batch_is_one_intent_one_version_bump():
    kernel, net, world, _ = standard_world()
    state = world.server(PRIMARY).collections["coll"]
    before = state.version
    repo = Repository(world, CLIENT)
    kernel.run_process(
        repo.add_many("coll", _specs(5, home="s1"), window=1, batch_size=5))
    wal = world.server(PRIMARY).wal
    batches = [r for r in wal.records if r.kind == "add-batch"]
    assert len(batches) == 1
    [record] = batches
    assert record.status is APPLIED
    assert len(record.elements) == 5
    # the whole batch lands as ONE sync_delta-visible version jump
    assert state.version == before + 1
    assert all(state.member_versions[f"b{i:03d}"] == state.version
               for i in range(5))


def test_erase_batch_is_one_intent_one_version_bump():
    kernel, net, world, elements = standard_world(members=6)
    state = world.server(PRIMARY).collections["coll"]
    before = state.version
    repo = Repository(world, CLIENT)
    kernel.run_process(
        repo.remove_many("coll", elements[:4], window=1, batch_size=4))
    wal = world.server(PRIMARY).wal
    batches = [r for r in wal.records if r.kind == "erase-batch"]
    assert len(batches) == 1 and batches[0].status is APPLIED
    assert state.version == before + 1


def test_add_members_rejects_conflicts_before_mutating():
    kernel, net, world, elements = standard_world(members=2)
    repo = Repository(world, CLIENT)
    specs = [AddSpec("fresh"), AddSpec(elements[0].name, value="other")]

    def proc():
        try:
            yield from repo.add_many("coll", specs, window=1, batch_size=2)
            return "added"
        except MutationNotAllowed:
            return "rejected"

    assert kernel.run_process(proc()) == "rejected"
    # validation is up front: the conflicting batch mutated NOTHING
    assert "fresh" not in {e.name for e in world.true_members("coll")}
    assert world.check_invariants() == []


def test_add_many_on_sealed_collection_raises_and_cleans_up():
    kernel, net, world, _ = standard_world(policy="immutable")
    world.seal("coll")
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.add_many("coll", _specs(3, home="s1"),
                                     window=1, batch_size=3)
            return "added"
        except MutationNotAllowed:
            return "rejected"

    assert kernel.run_process(proc()) == "rejected"
    kernel.run(until=kernel.now + 1.0)
    # rejected registration => the already-placed copies were deleted
    assert kernel.obs.metrics.value("write.orphan_cleanups") >= 3
    assert world.check_invariants() == []


def test_on_failure_skip_returns_survivors():
    kernel, net, world, _ = standard_world()
    net.isolate("s3")
    repo = Repository(world, CLIENT)
    specs = [AddSpec(f"b{i}", home="s1" if i % 2 else "s3")
             for i in range(6)]
    elements = kernel.run_process(repo.add_many(
        "coll", specs, window=2, batch_size=2, on_failure="skip"))
    assert {e.name for e in elements} == {"b1", "b3", "b5"}
    net.rejoin("s3")
    kernel.run(until=kernel.now + 1.0)
    assert world.check_invariants() == []


def test_on_failure_raise_still_runs_whole_pipeline():
    kernel, net, world, _ = standard_world()
    net.isolate("s3")
    repo = Repository(world, CLIENT)
    specs = [AddSpec("dead", home="s3"), AddSpec("alive", home="s1")]

    def proc():
        try:
            yield from repo.add_many("coll", specs, window=2, batch_size=1)
            return "ok"
        except FailureException:
            return "raised"

    assert kernel.run_process(proc()) == "raised"
    # no partial abandonment: the healthy spec was still added
    assert "alive" in {e.name for e in world.true_members("coll")}


def test_on_failure_rejects_unknown_mode():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)
    with pytest.raises(ValueError):
        kernel.run_process(repo.add_many("coll", ["x"], on_failure="bogus"))


# ---------------------------------------------------------------------------
# orphan cleanup (the Repository.add bugfix + pipeline parity)
# ---------------------------------------------------------------------------

def test_failed_add_cleans_up_landed_copies():
    """The old bug: home put acked, replica put failed, the exception
    propagated — and the home copy stayed forever, invisible to every
    membership view.  Now the failed add deletes what it placed."""
    kernel, net, world, _ = standard_world()
    net.isolate("s2")
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.add("coll", "doomed", value=1, home="s1",
                                replicas=("s2",))
            return "added"
        except FailureException:
            return "failed"

    assert kernel.run_process(proc()) == "failed"
    assert kernel.obs.metrics.value("write.orphan_cleanups") >= 1
    # the landed home copy is gone — no orphan invariant violation
    net.rejoin("s2")
    assert world.check_invariants() == []


def test_failed_batched_add_cleans_up_landed_copies():
    kernel, net, world, _ = standard_world()
    net.isolate("s2")
    repo = Repository(world, CLIENT)
    specs = _specs(4, home="s1", replicas=("s2",))
    elements = kernel.run_process(repo.add_many(
        "coll", specs, window=2, batch_size=2, on_failure="skip"))
    assert elements == []
    assert kernel.obs.metrics.value("write.orphan_cleanups") >= 4
    net.rejoin("s2")
    assert world.check_invariants() == []


def test_orphan_invariant_detects_unreferenced_object():
    kernel, net, world, elements = standard_world(members=2)
    # sabotage: an object nothing references, planted behind the store's
    # back (what a failed add used to leave)
    kernel.run_process(world.server("s1").put_object("ghost-oid", "x", 0))
    problems = world.check_invariants()
    assert any("referenced by no collection" in p for p in problems)


def test_repair_daemon_collects_aged_orphans():
    """Cleanup the client couldn't deliver is reclaimed by the scrub
    daemon's orphan-GC pass once the grace period passes."""
    kernel, net, world, elements = standard_world(scrub_interval=1.0)
    kernel.run_process(world.server("s1").put_object("ghost-oid", "x", 0))
    assert world.check_invariants() != []
    kernel.run(until=kernel.now + 8.0)      # grace = 4 rounds @ 1s, + slack
    assert kernel.obs.metrics.value("repair.objects_gcd") >= 1
    assert world.check_invariants() == []


# ---------------------------------------------------------------------------
# crash-mid-batch recovery (group commit + item-precise replay)
# ---------------------------------------------------------------------------

def test_crash_mid_add_batch_settles_clean():
    kernel, net, world, _ = standard_world(scrub_interval=1.0)
    server = world.server(PRIMARY)
    server.wal.arm_crash("added")           # fires on any item's step
    schedule = FaultSchedule().recover_at(2.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.add_many(
            "coll", _specs(6, home="s1"), window=1, batch_size=6,
            on_failure="skip"))

    kernel.run_process(proc())
    kernel.run(until=kernel.now + 12.0)     # replay + scrub + orphan GC
    assert net.node(PRIMARY).up
    assert server.wal.pending() == []
    assert world.check_invariants() == []


def test_crash_mid_add_batch_replays_item_precisely():
    """Items step-marked before the crash are not double-applied, items
    after it are finished by roll-forward — and the whole batch still
    commits as one version bump."""
    kernel, net, world, _ = standard_world(scrub_interval=1.0,
                                           replica_lag=60.0)
    server = world.server(PRIMARY)
    state = server.collections["coll"]
    before = state.version
    server.wal.arm_crash("b003:added")      # crash after the 4th insert
    # recovery scheduled past the client's RPC timeout so the pending
    # intent is observable after the pipeline gives up
    schedule = FaultSchedule().recover_at(8.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)
    kernel.run_process(repo.add_many(
        "coll", _specs(6, home=PRIMARY), window=1, batch_size=6,
        on_failure="skip"))
    [record] = server.wal.pending()
    assert record.kind == "add-batch"
    assert record.done("b003:added") and not record.done("b004:added")
    kernel.run(until=kernel.now + 10.0)
    assert server.wal.pending() == []
    # roll-forward finished the batch: every item present, one bump past
    # whatever the interleaved cleanup/heal traffic accounts for
    members = set(state.members)
    assert {f"b{i:03d}" for i in range(6)} <= members | set(state.removed)
    assert state.version > before
    assert world.check_invariants() == []


def test_crash_mid_erase_batch_rolls_forward():
    kernel, net, world, elements = standard_world(members=6,
                                                  scrub_interval=1.0)
    server = world.server(PRIMARY)
    server.wal.arm_crash("home-deleted")    # matches any item's erase step
    schedule = FaultSchedule().recover_at(8.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove_many("coll", elements[:4],
                                        window=1, batch_size=4)
        except FailureException:
            pass

    kernel.run_process(proc())
    [record] = server.wal.pending()
    assert record.kind == "erase-batch" and record.status is PENDING
    kernel.run(until=kernel.now + 10.0)
    assert server.wal.pending() == []
    # acked-or-crashed removals are rolled forward, never resurrected
    truth = {e.name for e in world.true_members("coll")}
    assert truth == {e.name for e in elements[4:]}
    assert world.check_invariants() == []


def test_clean_failure_mid_erase_batch_commits_prefix():
    """A *clean* RPC failure (no crash) mid erase-batch commits the
    fully-erased prefix and leaves the rest members — removal is
    idempotent, the caller just retries."""
    kernel, net, world, elements = standard_world(members=4)
    net.isolate("s2")                       # elements[2] homed on s2
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove_many("coll", elements[:4],
                                        window=1, batch_size=4)
            return "ok"
        except FailureException:
            return "failed"

    assert kernel.run_process(proc()) == "failed"
    truth = {e.name for e in world.true_members("coll")}
    assert elements[0].name not in truth    # erased before the failure
    assert elements[2].name in truth        # the unreachable one survives
    net.rejoin("s2")
    retried = kernel.run_process(
        repo.remove_many("coll", elements[2:4], window=1, batch_size=2))
    assert retried == 2
    assert world.true_members("coll") == set()
    assert world.check_invariants() == []


# ---------------------------------------------------------------------------
# Repository.replace (remove-then-add, the paper's item mutation)
# ---------------------------------------------------------------------------

def test_replace_swaps_element_for_fresh_one():
    kernel, net, world, elements = standard_world(members=3)
    old = elements[1]
    repo = Repository(world, CLIENT)
    new = kernel.run_process(
        repo.replace("coll", old, "m001", value="v2"))
    assert new.name == "m001" and new.oid != old.oid
    assert new.home == old.home             # home carries over by default
    truth = world.true_members("coll")
    assert new in truth and old not in truth
    assert world.check_invariants() == []


def test_replace_carries_replicas_over():
    kernel, net, world, _ = standard_world()
    repo = Repository(world, CLIENT)

    def proc():
        old = yield from repo.add("coll", "r", value=1, home="s1",
                                  replicas=("s2", "s3"))
        new = yield from repo.replace("coll", old, "r2", value=2)
        return old, new

    old, new = kernel.run_process(proc())
    assert new.replicas == old.replicas == ("s2", "s3")
    for holder in ("s1", "s2", "s3"):
        assert world.server(holder).has_object(new.oid)
        assert not world.server(holder).has_object(old.oid)
    assert world.check_invariants() == []


def test_replace_failure_between_remove_and_add():
    """replace is remove-then-add, not a transaction: if the add's home
    is unreachable the remove has already happened and sticks — and the
    failed add leaves no orphan behind."""
    kernel, net, world, elements = standard_world(members=3)
    old = elements[0]
    net.isolate("s3")
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.replace("coll", old, "swapped", home="s3")
            return "replaced"
        except FailureException:
            return "failed"

    assert kernel.run_process(proc()) == "failed"
    truth = {e.name for e in world.true_members("coll")}
    assert old.name not in truth            # the remove half committed
    assert "swapped" not in truth           # the add half never landed
    net.rejoin("s3")
    kernel.run(until=kernel.now + 1.0)
    assert world.check_invariants() == []


# ---------------------------------------------------------------------------
# rank_hosts memoization (the fetch-side satellite)
# ---------------------------------------------------------------------------

def test_rank_hosts_memoized_per_topology_generation():
    from repro.store.fetchplan import rank_hosts
    kernel, net, world, _ = standard_world()
    hosts = ("s1", "s2", "s3")
    first = rank_hosts(net, CLIENT, hosts)
    assert kernel.obs.metrics.value("fetch.rank_cache_hits") == 0
    again = rank_hosts(net, CLIENT, hosts)
    assert again == first
    assert kernel.obs.metrics.value("fetch.rank_cache_hits") == 1
    # any connectivity mutation bumps the generation and drops the cache
    net.isolate("s1")
    after = rank_hosts(net, CLIENT, hosts)
    assert kernel.obs.metrics.value("fetch.rank_cache_hits") == 1
    assert "s1" not in after
    net.rejoin("s1")
    assert rank_hosts(net, CLIENT, hosts) == first
    assert kernel.obs.metrics.value("fetch.rank_cache_hits") == 1
