"""The wire codecs: lossless round-trips and honest size accounting.

Satellite of E25: every RPC payload shape and every failure type must
encode -> decode losslessly under the compact codec — varint
boundaries, empty deltas, unicode names, tombstoned members and all —
and the naive baseline must measure what it would really pickle.
"""

import pytest

import repro.errors as errors
from repro.errors import (
    ServerBusyFailure,
    SpecViolation,
    TimeoutFailure,
    WrongShardFailure,
)
from repro.net.address import Address
from repro.net.message import Message
from repro.net.wire import (
    DELTA_SCHEMA,
    EXCEPTION_TYPES,
    METHODS,
    Blob,
    CompactCodec,
    NaiveCodec,
    codec_by_name,
    decode_uvarint,
    encode_uvarint,
    method_family,
    unwrap,
)
from repro.store.elements import Element

COMPACT = CompactCodec()
NAIVE = NaiveCodec()
SRC = Address("client", "app")
DST = Address("n0.0", "store")


class Odd:
    """A schema-less value only the pickle fallback can carry."""

    def __init__(self, x):
        self.x = x

    def __eq__(self, other):
        return isinstance(other, Odd) and other.x == self.x


def call(payload, method="get_objects"):
    return Message(src=SRC, dst=DST, method=method, payload=payload)


def roundtrip(msg: Message) -> Message:
    return COMPACT.decode_message(COMPACT.encode_message(msg))


def assert_roundtrip(payload, method="get_objects"):
    msg = call(payload, method)
    back = roundtrip(msg)
    assert back.payload == payload
    assert back.method == msg.method
    assert back.msg_id == msg.msg_id
    assert (back.src, back.dst) == (msg.src, msg.dst)
    return back


# -- varints ----------------------------------------------------------------

@pytest.mark.parametrize("n", [0, 1, 2**7 - 1, 2**7, 2**14 - 1, 2**14,
                               2**21, 2**32 - 1, 2**32, 2**63])
def test_uvarint_boundaries(n):
    out = bytearray()
    encode_uvarint(n, out)
    back, pos = decode_uvarint(bytes(out), 0)
    assert back == n and pos == len(out)


@pytest.mark.parametrize("n", [0, -1, 1, 127, -128, 2**14, -2**14,
                               2**32, -2**32, 2**40, -2**40])
def test_signed_ints_roundtrip(n):
    assert_roundtrip(((n,), {}))


# -- payload leaves and containers ------------------------------------------

@pytest.mark.parametrize("value", [
    None, True, False, 0.0, -1.5, 3.141592653589793,
    "", "plain", "名前-ünïcode-☃", b"", b"\x00\xff raw",
    (), [], {}, set(), frozenset(),
    ("a", 1, None), ["nested", ["deep", {"k": (1, 2)}]],
    {"key": "value", 7: (True, False)},
    {"x", "y", "z"}, frozenset({1, 2, 3}),
])
def test_values_roundtrip(value):
    assert_roundtrip(((value,), {"kw": value}))


def test_set_encoding_is_deterministic():
    msg1 = call((({"c", "a", "b"},), {}))
    msg2 = Message(src=SRC, dst=DST, method="get_objects",
                   payload=(({"b", "c", "a"},), {}), msg_id=msg1.msg_id)
    assert COMPACT.encode_message(msg1) == COMPACT.encode_message(msg2)


def test_string_interning_pays():
    # the same long string repeated should cost far less than twice
    one = COMPACT.payload_size(("collection-name-aaaaaaaa",))
    two = COMPACT.payload_size(("collection-name-aaaaaaaa",) * 2)
    assert two < one + 8


# -- domain shapes ----------------------------------------------------------

def test_elements_roundtrip():
    fresh = Element("member-0", "member-0-17", "n1.2")
    weird = Element("名前", "oid:not/derived", "n0.0",
                    replicas=("n2.0", "n3.1"))
    back = assert_roundtrip(((fresh, weird), {}), method="add_members")
    got_fresh, got_weird = back.payload[0]
    assert got_fresh == fresh and got_fresh.oid == fresh.oid
    assert got_weird == weird and got_weird.replicas == weird.replicas


def test_tombstoned_member_in_delta_roundtrips():
    # the real sync_delta reply shape: ghosts are member names,
    # adds are (name, element, version), removes (name, version,
    # element) — the tombstone keeps the element for later purging
    member = Element("tombstoned", "tombstoned-3", "n1.0")
    fresh = Element("名前", "名前-4", "n2.1")
    delta = {"version": 9, "sealed": True, "ghosts": ("tombstoned",),
             "adds": (("名前", fresh, 8),),
             "removes": (("tombstoned", 9, member),), "epoch": 2,
             "active_iterations": (41,)}
    back = assert_roundtrip(delta, method="sync_delta!ok")
    assert back.payload == delta
    assert back.payload["removes"][0][2] == member


def test_delta_keyed_dict_with_foreign_shape_still_roundtrips():
    # a payload dict that merely shares the seven delta key names must
    # not crash the field-diff fast path — it takes the generic encoding
    impostor = {"version": "not-an-int", "sealed": 3, "ghosts": 7,
                "adds": None, "removes": "x", "epoch": (),
                "active_iterations": {}}
    back = assert_roundtrip(impostor)
    assert back.payload == impostor


def test_empty_delta_is_tiny():
    empty = {name: default for name, default in DELTA_SCHEMA}
    back = assert_roundtrip(empty, method="sync_delta!ok")
    assert back.payload == empty
    # all fields at schema defaults => presence bitfield only
    assert COMPACT.payload_size(empty) <= 3


def test_blob_roundtrips_and_declares_size():
    blob = Blob("stand-in", 2048)
    back = assert_roundtrip(((blob,), {}), method="put_object")
    assert back.payload[0][0] == blob
    assert unwrap(back.payload[0][0]) == "stand-in"
    # the declared size is what lands on the wire, not the stand-in's
    assert COMPACT.payload_size(blob) >= 2048
    assert NAIVE.message_size(call(blob)) >= 2048


@pytest.mark.parametrize("exc_type", EXCEPTION_TYPES)
def test_every_failure_type_roundtrips(exc_type):
    msg = call(exc_type("boom: ☃"), method="get_object!error")
    back = roundtrip(msg)
    assert type(back.payload) is exc_type
    assert str(back.payload) == "boom: ☃"


def test_failure_extras_roundtrip():
    for exc in (ServerBusyFailure("busy", retry_after=0.125),
                WrongShardFailure("moved", owner="n2.0"),
                SpecViolation("bad", invocation_index=7),
                TimeoutFailure("slow")):
        back = roundtrip(call(exc, method="get_object!error"))
        assert type(back.payload) is type(exc)
        for attr in ("retry_after", "owner", "invocation_index"):
            assert getattr(back.payload, attr, None) == \
                getattr(exc, attr, None)


def test_exception_types_covers_errors_module():
    # every exception the system can answer over the wire must have a
    # stable tag; this catches additions to errors.py that forget to
    # extend EXCEPTION_TYPES.  ProcessKilled is kernel-internal (it is
    # delivered into a killed process, never sent as a reply).
    wired = set(EXCEPTION_TYPES)
    internal = {errors.ProcessKilled}
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception) \
                and obj.__module__ == "repro.errors" \
                and obj not in internal:
            assert obj in wired, name


# -- envelopes --------------------------------------------------------------

def test_reply_envelopes_roundtrip():
    request = call((("coll",), {}), method="list_members")
    for error in (False, True):
        reply = request.reply("payload" if not error
                              else TimeoutFailure("late"), error=error)
        back = roundtrip(reply)
        assert back.is_reply and back.reply_to == request.msg_id
        assert back.method == reply.method


def test_unknown_method_falls_back_to_string():
    assert "frobnicate" not in METHODS
    back = assert_roundtrip(((1,), {}), method="frobnicate")
    assert back.method == "frobnicate"
    assert method_family("frobnicate") == "other"


def test_pickle_fallback_for_schema_less_values():
    back = assert_roundtrip(((Odd(5),), {}))
    assert back.payload[0][0] == Odd(5)


# -- size accounting --------------------------------------------------------

def test_compact_message_size_is_encoded_length():
    msg = call((("coll", Element("m", "m-1", "n1.0")), {}),
               method="add_member")
    assert COMPACT.message_size(msg) == len(COMPACT.encode_message(msg))


def test_compact_beats_naive_on_metadata():
    members = tuple(Element(f"member-{i:04d}", f"member-{i:04d}-{i}",
                            f"n{i % 4}.{i % 3}") for i in range(40))
    reply = call(members, method="list_members!ok")
    request = call((("collection",), {}), method="list_members")
    for msg in (reply, request):
        assert NAIVE.message_size(msg) >= 3 * COMPACT.message_size(msg)


def test_naive_roundtrips_too():
    msg = call((("coll", Element("m", "m-1", "n1.0")), {}),
               method="add_member")
    back = NAIVE.decode_message(NAIVE.encode_message(msg))
    assert back.payload == msg.payload and back.method == msg.method


def test_codec_by_name():
    assert codec_by_name("compact").name == "compact"
    assert codec_by_name("naive").name == "naive"
    with pytest.raises(ValueError):
        codec_by_name("gzip")


def test_method_families():
    assert method_family("get_objects") == "object"
    assert method_family("get_objects!ok") == "object"
    assert method_family("list_members!error") == "membership"
    assert method_family("sync_delta") == "sync"
    assert method_family("freeze_range") == "shard"
    assert method_family("acquire") == "lock"
    assert method_family("ping") == "control"
