"""World invariants under randomized operation sequences."""

from hypothesis import given, settings, strategies as st

from repro.errors import FailureException, StoreError
from repro.store import Repository
from repro.wan import Mutator, ScenarioSpec, build_scenario

from helpers import CLIENT, standard_world


def test_invariants_hold_on_fresh_world():
    kernel, net, world, elements = standard_world(members=5, replicas=2)
    assert world.check_invariants() == []


def test_invariants_hold_after_scripted_ops():
    kernel, net, world, elements = standard_world(members=3, replicas=1)
    repo = Repository(world, CLIENT)

    def proc():
        e = yield from repo.add("coll", "fresh", value=1, home="s2")
        yield from repo.remove("coll", elements[0])
        yield from repo.remove("coll", e)
        yield from repo.add("coll", "another", value=2)

    kernel.run_process(proc())
    kernel.run(until=kernel.now + 2.0)    # let anti-entropy settle
    assert world.check_invariants() == []


def test_invariants_detect_sabotage():
    kernel, net, world, elements = standard_world(members=2)
    # sabotage: tombstone a member's object behind the store's back
    world.server(elements[0].home).objects[elements[0].oid].deleted = True
    problems = world.check_invariants()
    assert any("no live object" in p for p in problems)


def test_invariants_detect_ahead_replica():
    kernel, net, world, elements = standard_world(members=2, replicas=1)
    replica_state = world.server("s1").collections["coll"]
    replica_state.version = 999
    problems = world.check_invariants()
    assert any("ahead of primary" in p for p in problems)


@given(st.integers(min_value=0, max_value=9999),
       st.lists(st.sampled_from(["add", "remove"]), min_size=1, max_size=12))
@settings(max_examples=15, deadline=None)
def test_invariants_hold_under_random_op_sequences(seed, ops):
    kernel, net, world, elements = standard_world(members=3, replicas=1,
                                                  seed=seed)
    repo = Repository(world, CLIENT)

    def proc():
        counter = 0
        current = list(elements)
        for op in ops:
            try:
                if op == "add":
                    counter += 1
                    e = yield from repo.add("coll", f"r{counter}",
                                            value=counter,
                                            home=f"s{counter % 4}")
                    current.append(e)
                elif current:
                    victim = current.pop(0)
                    yield from repo.remove("coll", victim)
            except (FailureException, StoreError):
                pass

    kernel.run_process(proc())
    kernel.run(until=kernel.now + 2.0)
    assert world.check_invariants() == []


def test_invariants_hold_after_churn_with_faults():
    from repro.net import FaultPlan
    plan = FaultPlan(isolate_rate=0.05, mean_downtime=0.5,
                     protected=frozenset({"client", "n0.0"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=10,
                        replicas=1, fault_plan=plan)
    scenario = build_scenario(spec, seed=3)
    mutator = Mutator(scenario, add_rate=1.0, remove_rate=0.5)
    mutator.start()
    scenario.kernel.run(until=60.0)
    scenario.injector.stop()
    # quiesce: stop mutation, heal, settle replication — long enough for
    # the repair daemon's orphan-GC grace period (ORPHAN_GRACE_ROUNDS
    # scrub rounds) to elapse and a further round to collect, so a failed
    # add whose cleanup could not reach an isolated home is reclaimed
    for proc in scenario.kernel.processes():
        if proc.name == "mutator":
            proc._kill()
    scenario.net.heal()
    scenario.kernel.run(until=scenario.kernel.now + 12.0)
    assert scenario.world.check_invariants() == []
