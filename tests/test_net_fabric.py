"""Integration tests for the Network facade: RPC, crashes, partitions."""

import pytest

from repro.errors import (
    FailureException,
    NodeCrashFailure,
    PartitionFailure,
    SimulationError,
    TimeoutFailure,
)
from repro.net import FixedLatency, Network, full_mesh, line
from repro.sim import Kernel, Sleep


class EchoService:
    def __init__(self):
        self.calls = 0

    def echo(self, value):
        self.calls += 1
        return value

    def add(self, a, b=0):
        return a + b

    def boom(self):
        raise ValueError("service exploded")

    def slow_echo(self, value, delay):
        yield Sleep(delay)
        return value


def make_net(seed=0, nodes=("client", "server"), latency=0.01, **kwargs):
    kernel = Kernel(seed=seed)
    topo = full_mesh(nodes, FixedLatency(latency))
    net = Network(kernel, topo, **kwargs)
    return kernel, net


def test_rpc_round_trip():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        result = yield from net.call("client", "server", "echo", "echo", "hi")
        return result

    assert kernel.run_process(client()) == "hi"
    assert kernel.now == pytest.approx(0.02)  # one RTT


def test_rpc_kwargs():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        return (yield from net.call("client", "server", "echo", "add", 40, b=2))

    assert kernel.run_process(client()) == 42


def test_rpc_remote_exception_propagates():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        try:
            yield from net.call("client", "server", "echo", "boom")
        except ValueError as exc:
            return str(exc)

    assert kernel.run_process(client()) == "service exploded"


def test_rpc_generator_handler_takes_simulated_time():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        return (yield from net.call("client", "server", "echo", "slow_echo", "x", 1.0))

    assert kernel.run_process(client()) == "x"
    assert kernel.now == pytest.approx(1.02)


def test_rpc_to_crashed_node_fails_fast():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())
    net.crash("server")

    def client():
        try:
            yield from net.call("client", "server", "echo", "echo", "hi")
        except NodeCrashFailure:
            t = kernel.now
            return ("crash-detected", t)

    kind, t = kernel.run_process(client())
    assert kind == "crash-detected"
    assert t < 1.0  # detection delay, not the full timeout


def test_rpc_across_partition_fails_with_partition_failure():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())
    net.split(["client"], ["server"])

    def client():
        try:
            yield from net.call("client", "server", "echo", "echo", "hi")
        except PartitionFailure:
            return "partitioned"

    assert kernel.run_process(client()) == "partitioned"


def test_rpc_after_heal_succeeds():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())
    net.isolate("server")

    def client():
        try:
            yield from net.call("client", "server", "echo", "echo", 1)
        except FailureException:
            pass
        net.heal()
        return (yield from net.call("client", "server", "echo", "echo", 2))

    assert kernel.run_process(client()) == 2


def test_crash_during_handling_means_timeout():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def crasher():
        yield Sleep(0.5)
        net.crash("server")

    def client():
        try:
            yield from net.call(
                "client", "server", "echo", "slow_echo", "x", 2.0, timeout=3.0
            )
        except FailureException as exc:
            return type(exc).__name__

    kernel.spawn(crasher())
    # crash is detected when the reply never comes; by then the transport
    # knows the cause, so the failure is classified as a crash
    assert kernel.run_process(client()) in {"NodeCrashFailure", "TimeoutFailure"}


def test_no_fail_fast_burns_full_timeout():
    kernel, net = make_net(fail_fast=False)
    net.register_service("server", "echo", EchoService())
    net.crash("server")

    def client():
        try:
            yield from net.call("client", "server", "echo", "echo", 1, timeout=2.0)
        except FailureException:
            return kernel.now

    assert kernel.run_process(client()) == pytest.approx(2.0)


def test_unknown_rpc_method_is_error():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        try:
            yield from net.call("client", "server", "echo", "nope")
        except SimulationError as exc:
            return "no method" if "no RPC method" in str(exc) else "other"

    assert kernel.run_process(client()) == "no method"


def test_private_method_not_callable():
    kernel, net = make_net()
    net.register_service("server", "echo", EchoService())

    def client():
        try:
            yield from net.call("client", "server", "echo", "_private")
        except SimulationError:
            return "denied"

    assert kernel.run_process(client()) == "denied"


def test_reachable_from():
    kernel = Kernel()
    topo = line(["a", "b", "c"], FixedLatency(0.01))
    net = Network(kernel, topo)
    assert net.reachable_from("a") == {"a", "b", "c"}
    net.cut_link("b", "c")
    assert net.reachable_from("a") == {"a", "b"}
    net.restore_link("b", "c")
    net.crash("b")
    # b down cuts the only path to c
    assert net.reachable_from("a") == {"a"}
    assert net.reachable_from("b") == set()


def test_multihop_rpc_latency_adds_up():
    kernel = Kernel()
    topo = line(["a", "b", "c"], FixedLatency(0.05))
    net = Network(kernel, topo)
    net.register_service("c", "echo", EchoService())

    def client():
        return (yield from net.call("a", "c", "echo", "echo", "hi"))

    assert kernel.run_process(client()) == "hi"
    assert kernel.now == pytest.approx(0.2)  # 2 hops x 2 directions x 50ms


def test_expected_latency_none_when_unreachable():
    kernel, net = make_net()
    net.isolate("server")
    assert net.expected_latency("client", "server") is None
    net.heal()
    assert net.expected_latency("client", "server") == pytest.approx(0.01)


def test_crashed_caller_raises():
    kernel, net = make_net()
    net.crash("client")

    def client():
        yield from net.call("client", "server", "echo", "echo", 1)

    proc = kernel.spawn(client())
    kernel.run()
    assert isinstance(proc.error, SimulationError)
