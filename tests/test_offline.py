"""Disconnected operation: offline reads, the outbox, and reconciliation.

Unit coverage for ``repro.store.offline``: DISCONNECTED state gating,
stale-while-offline serving, read-your-writes overlays, fail-fast
iterators (the ``DisconnectedError`` satellite), and the reconcile
classification — replay, tombstone drops, add/remove conflicts, and
local pair cancellation.
"""

import pytest

from repro.errors import DisconnectedError
from repro.spec import Failed, Returned, check_conformance, spec_by_id
from repro.store import ClientCache, OfflineClient, Repository
from repro.weaksets import DynamicSet, Figure1Set

from helpers import CLIENT, PRIMARY, standard_world, drain_all


def offline_world(members=6, policy="any", ttl=60.0, durable=True, **kwargs):
    kernel, net, world, elements = standard_world(
        members=members, policy=policy, **kwargs)
    cache = ClientCache(ttl=ttl)
    offline = OfflineClient(world, CLIENT, "coll", cache=cache,
                            durable_outbox=durable)
    return kernel, net, world, elements, offline


def warm(kernel, offline):
    """Populate the client cache with the current membership view."""
    return kernel.run_process(
        offline.repo.read_membership("coll", source="primary"))


# ---------------------------------------------------------------------------
# state gating + stale reads
# ---------------------------------------------------------------------------

def test_disconnect_gates_rpc_and_serves_stale_membership():
    kernel, net, world, elements, offline = offline_world()
    view = warm(kernel, offline)
    kernel.run(until=kernel.now + 1.0)      # let the cached view age
    offline.disconnect()
    assert offline.disconnected and offline.repo.disconnected
    assert not net.can_reach(CLIENT, PRIMARY)
    # Membership reads serve the stale cached view, TTL or not.
    served = kernel.run_process(
        offline.repo.read_membership("coll", source="primary"))
    assert served.members == view.members
    members = offline.read_members()
    assert members == view.members
    age = kernel.obs.metrics.histogram("offline.read_age")
    assert age.count >= 1 and age.vmax >= 1.0


def test_cold_cache_offline_read_raises_disconnected_error():
    kernel, net, world, elements, offline = offline_world()
    offline.disconnect()                     # nothing was ever cached
    with pytest.raises(DisconnectedError):
        offline.read_members()
    with pytest.raises(DisconnectedError):
        kernel.run_process(
            offline.repo.read_membership("coll", source="primary"))


def test_outbox_overlay_gives_read_your_writes():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    added = offline.queue_add("offline-add", value="ov")
    offline.queue_remove(elements[0])
    members = offline.read_members()
    assert added in members
    assert elements[0] not in members
    assert offline.outbox.depth() == 2
    # Nothing touched the wire: ground truth is unchanged.
    assert added not in world.true_members("coll")
    assert elements[0] in world.true_members("coll")


# ---------------------------------------------------------------------------
# satellite: fail-fast iterators while DISCONNECTED
# ---------------------------------------------------------------------------

def test_dynamic_iterator_fails_fast_offline_instead_of_retrying():
    kernel, net, world, elements, offline = offline_world()
    ws = DynamicSet(world, CLIENT, "coll", cache=offline.cache,
                    retry_interval=0.25, give_up_after=30.0)
    offline.attach(ws.repo)
    offline.disconnect()
    started = kernel.now
    result = drain_all(kernel, ws)
    assert isinstance(result.outcome, Failed)
    assert "disconnected" in result.outcome.reason
    # Fail-fast: nowhere near give_up_after, not even one retry sleep.
    assert kernel.now - started < 0.25


def test_dynamic_iterator_fails_fast_even_with_warm_membership():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    ws = DynamicSet(world, CLIENT, "coll", cache=offline.cache,
                    retry_interval=0.25, give_up_after=30.0, use_cache=True)
    offline.attach(ws.repo)
    offline.disconnect()
    started = kernel.now
    result = drain_all(kernel, ws)
    # The stale view names members, but no value was ever cached: the
    # fetches fail DisconnectedError and the iterator gives up at once.
    assert isinstance(result.outcome, Failed)
    assert kernel.now - started < 0.25


def test_figure1_drains_offline_from_warm_cache_and_conforms():
    kernel, net, world, elements, offline = offline_world(policy="immutable")
    kernel.run_process(Repository(world, PRIMARY).seal("coll"))
    ws = Figure1Set(world, CLIENT, "coll", cache=offline.cache)
    offline.attach(ws.repo)
    warm(kernel, offline)
    offline.disconnect()
    result = drain_all(kernel, ws)
    # Figure 1's ensures clause has no reachability requirement on
    # yields: the cached snapshot is enough to finish the run offline.
    assert isinstance(result.outcome, Returned)
    assert len(result.yields) == len(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig1"), world)
    assert report.conformant, report.violations


# ---------------------------------------------------------------------------
# reconciliation
# ---------------------------------------------------------------------------

def test_reconcile_replays_queued_adds_and_removes():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    added = offline.queue_add("offline-add", value="ov")
    offline.queue_remove(elements[0])
    report = kernel.run_process(offline.reconnect())
    assert report.replayed == 2
    assert report.conflicts == report.dropped == report.failed == 0
    truth = world.true_members("coll")
    assert added in truth and elements[0] not in truth
    assert offline.outbox.depth() == 0
    assert offline.state == "connected"
    assert world.check_invariants() == []


def test_reconcile_drops_remove_of_tombstoned_member():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    victim = elements[0]
    offline.queue_remove(victim)
    # The same member is removed remotely while we are away: on
    # reconnect the tombstone wins and the local intent is a no-op.
    kernel.run_process(Repository(world, "s1").remove("coll", victim))
    assert victim not in world.true_members("coll")
    report = kernel.run_process(offline.reconnect())
    assert report.dropped == 1 and report.replayed == 0
    assert world.check_invariants() == []


def test_reconcile_conflicts_on_superseding_readd():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    victim = elements[0]
    offline.queue_remove(victim)
    # Remote remove-then-re-add under the same name: the current member
    # is a different element, and our stale remove must not kill it.
    remote = Repository(world, "s1")
    kernel.run_process(remote.remove("coll", victim))
    readded = kernel.run_process(
        remote.add("coll", victim.name, value="new", home=victim.home))
    report = kernel.run_process(offline.reconnect())
    assert report.conflicts == 1 and report.replayed == 0
    assert readded in world.true_members("coll")
    assert world.check_invariants() == []


def test_reconcile_conflicts_on_remote_add_of_same_name():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    offline.queue_add("contested", value="mine")
    remote_add = kernel.run_process(
        Repository(world, "s1").add("coll", "contested", value="theirs"))
    report = kernel.run_process(offline.reconnect())
    # Remote wins; replaying the local add would fail the whole batch.
    assert report.conflicts == 1 and report.replayed == 0
    truth = world.true_members("coll")
    assert remote_add in truth
    assert world.check_invariants() == []


def test_offline_add_remove_pair_cancels_locally():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    ephemeral = offline.queue_add("ephemeral", value="tmp")
    offline.queue_remove(ephemeral)
    sent_before = net.transport.stats.total_sent
    report = kernel.run_process(offline.reconnect())
    assert report.cancelled == 2 and report.replayed == 0
    assert ephemeral not in world.true_members("coll")
    # The pair never touched the wire (no RPC beyond the delta pull).
    assert net.transport.stats.total_sent - sent_before <= 2


def test_reconcile_failure_keeps_entries_queued_for_retry():
    kernel, net, world, elements, offline = offline_world()
    warm(kernel, offline)
    offline.disconnect()
    offline.queue_add("patient", value="v")
    net.crash(PRIMARY)
    with pytest.raises(Exception):
        kernel.run_process(offline.reconnect())
    assert offline.outbox.depth() == 1        # nothing lost
    net.recover(PRIMARY)
    report = kernel.run_process(offline.reconcile())
    assert report.replayed == 1
    assert offline.outbox.depth() == 0
    assert world.check_invariants() == []
