"""Unit tests for the population-scale load engine (repro.wan.population).

These run *small* populations (hundreds of arrivals, seconds of virtual
time) so the schedule logic — ramps, weighted mixes, SLO verdicts,
audits, failure accounting — is exercised quickly; the 10⁵-client gate
lives in benchmarks/bench_population.py and the cross-seed soak in
tests/test_population_soak.py.
"""

import math

import pytest

from repro.errors import SimulationError, TimeoutFailure
from repro.sim import Kernel, Sleep
from repro.wan import (
    Behavior,
    PopulationEngine,
    PopulationSpec,
    Stage,
    default_behaviors,
)
from repro.wan.workload import ScenarioSpec, build_scenario


def small_scenario(seed=7):
    return build_scenario(
        ScenarioSpec(n_clusters=2, cluster_size=2, n_members=8), seed=seed)


def napper(duration=0.01):
    """A synthetic behaviour: sleep, touch nothing."""

    def session(scenario, stream):
        yield Sleep(duration)

    return session


def run_engine(scenario, spec):
    engine = PopulationEngine(scenario, spec)
    return engine, engine.run()


# -- spec validation ---------------------------------------------------

def _stage():
    return Stage(duration=1.0, arrival_rate=10.0)


def _behavior():
    return Behavior("nap", 1.0, napper())


@pytest.mark.parametrize("kwargs", [
    dict(behaviors=(), stages=(_stage(),)),
    dict(behaviors=(_behavior(),), stages=()),
    dict(behaviors=(Behavior("bad", 0.0, napper()),), stages=(_stage(),)),
    dict(behaviors=(_behavior(),), stages=(_stage(),), arrival="uniform"),
    dict(behaviors=(_behavior(),), stages=(_stage(),), arrival="pareto",
         pareto_alpha=1.0),
])
def test_spec_validation_rejects_bad_dials(kwargs):
    with pytest.raises(SimulationError):
        PopulationSpec(**kwargs)


def test_total_duration_sums_stages():
    spec = PopulationSpec(
        behaviors=(_behavior(),),
        stages=(Stage(duration=2.0, arrival_rate=5.0),
                Stage(duration=3.0, arrival_rate=1.0)))
    assert spec.total_duration == 5.0


# -- the lognormal gap helper -----------------------------------------

def test_stream_lognormal_mean_and_degenerate_cases():
    stream = Kernel(seed=11).stream("gaps")
    draws = [stream.lognormal(0.5, sigma=1.0) for _ in range(4000)]
    assert all(d > 0 for d in draws)
    # Parameterised by the arithmetic mean, not exp(mu).
    assert sum(draws) / len(draws) == pytest.approx(0.5, rel=0.1)
    assert stream.lognormal(0.0) == 0.0
    assert stream.lognormal(-1.0) == 0.0
    # sigma=0 degenerates to the constant mean.
    assert stream.lognormal(0.25, sigma=0.0) == pytest.approx(0.25)


# -- arrival accounting ------------------------------------------------

@pytest.mark.parametrize("arrival", ["lognormal", "pareto", "exponential"])
def test_constant_stage_offers_roughly_rate_times_duration(arrival):
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(_behavior(),),
        stages=(Stage(duration=20.0, arrival_rate=25.0, start_rate=25.0,
                      name="flat"),),
        arrival=arrival,
    )
    engine, results = run_engine(scenario, spec)
    (flat,) = results
    # Open loop at a constant 25/s for 20s: ~500 arrivals.  Heavy tails
    # widen the spread, hence the loose band.
    assert 300 <= flat.arrivals <= 700
    assert flat.completions == flat.arrivals
    assert flat.failures == 0
    assert flat.slo_ok
    metrics = scenario.kernel.obs.metrics
    assert metrics.value("population.arrivals") == flat.arrivals
    assert metrics.value("population.completions") == flat.completions
    assert metrics.value("population.peak_active") == engine.peak_active > 0


def test_ramp_offers_fewer_arrivals_than_flat_and_attributes_stages():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(_behavior(),),
        stages=(
            Stage(duration=10.0, arrival_rate=40.0, name="ramp"),
            Stage(duration=10.0, arrival_rate=40.0, name="hold"),
        ),
    )
    _, results = run_engine(scenario, spec)
    ramp, hold = results
    # The ramp stage averages ~half the hold stage's rate (0 → 40 linear).
    assert 0 < ramp.arrivals < hold.arrivals
    assert ramp.arrivals == pytest.approx(hold.arrivals / 2, rel=0.5)
    # Sessions arriving in a stage are credited to it even if they
    # complete later; everything drains within the grace window.
    assert ramp.completions == ramp.arrivals
    assert hold.completions == hold.arrivals


def test_weighted_mix_follows_behavior_weights():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(Behavior("common", 9.0, napper()),
                   Behavior("rare", 1.0, napper())),
        stages=(Stage(duration=20.0, arrival_rate=30.0, start_rate=30.0),),
    )
    _, results = run_engine(scenario, spec)
    metrics = scenario.kernel.obs.metrics
    common = metrics.value("population.sessions.common")
    rare = metrics.value("population.sessions.rare")
    assert common + rare == results[0].completions
    assert common / (common + rare) == pytest.approx(0.9, abs=0.06)


def test_engine_runs_are_deterministic_per_seed():
    def observe(seed):
        scenario = small_scenario(seed=seed)
        spec = PopulationSpec(
            behaviors=default_behaviors(scenario),
            stages=(Stage(duration=5.0, arrival_rate=20.0),),
        )
        _, results = run_engine(scenario, spec)
        r = results[0]
        return (r.arrivals, r.completions, r.failures,
                round(r.p95_latency, 9), scenario.kernel.now)

    assert observe(3) == observe(3)
    assert observe(3) != observe(4)


# -- SLO verdicts ------------------------------------------------------

def test_latency_slo_violation_is_detected():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(Behavior("slow", 1.0, napper(duration=0.5)),),
        stages=(Stage(duration=5.0, arrival_rate=10.0, start_rate=10.0,
                      name="strict", max_p95_latency=0.1),),
    )
    _, results = run_engine(scenario, spec)
    (strict,) = results
    assert strict.p95_latency >= 0.5
    assert not strict.slo_ok
    assert any("p95 latency" in v for v in strict.violations)


def test_failure_slo_violation_is_detected_and_counted():
    def flaky(scenario, stream):
        yield Sleep(0.01)
        if stream.bernoulli(0.5):
            raise TimeoutFailure("session timed out")

    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(Behavior("flaky", 1.0, flaky),),
        stages=(Stage(duration=10.0, arrival_rate=20.0, start_rate=20.0,
                      name="strict", max_failure_rate=0.05),),
    )
    _, results = run_engine(scenario, spec)
    (strict,) = results
    # Failures complete (they are SLO events, not lost sessions).
    assert strict.completions == strict.arrivals
    assert strict.failures > 0
    assert strict.failure_rate == pytest.approx(0.5, abs=0.15)
    assert not strict.slo_ok
    assert any("failure rate" in v for v in strict.violations)
    metrics = scenario.kernel.obs.metrics
    assert metrics.value("population.failures") == strict.failures
    assert metrics.value("population.failures.flaky") == strict.failures


def test_unbounded_slos_never_violate():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=(Behavior("slow", 1.0, napper(duration=1.0)),),
        stages=(Stage(duration=3.0, arrival_rate=5.0, start_rate=5.0),),
    )
    _, results = run_engine(scenario, spec)
    assert results[0].slo_ok
    assert results[0].violations == ()


# -- audits ------------------------------------------------------------

def test_audited_sessions_check_conformance_inline():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=default_behaviors(scenario),
        stages=(Stage(duration=5.0, arrival_rate=20.0, start_rate=20.0),),
        audit_fraction=1.0,            # every session is an audit
    )
    _, results = run_engine(scenario, spec)
    metrics = scenario.kernel.obs.metrics
    audits = metrics.value("population.audits")
    assert audits == results[0].completions > 0
    assert metrics.value("population.audit_violations") == 0
    assert results[0].audit_violations == 0
    assert results[0].slo_ok


def test_default_behavior_mix_runs_clean_against_real_scenario():
    scenario = small_scenario()
    spec = PopulationSpec(
        behaviors=default_behaviors(scenario),
        stages=(Stage(duration=10.0, arrival_rate=25.0, name="mixed",
                      max_failure_rate=0.1, max_p95_latency=2.0),),
        audit_fraction=0.02,
    )
    _, results = run_engine(scenario, spec)
    (mixed,) = results
    assert mixed.completions == mixed.arrivals > 0
    assert mixed.slo_ok, mixed.violations
    metrics = scenario.kernel.obs.metrics
    # All three stock behaviours actually ran.
    for name in ("reader", "scanner", "writer"):
        assert metrics.value(f"population.sessions.{name}") > 0


def test_p95_is_ceil_rank_of_sorted_latencies():
    # 20 sessions with known distinct latencies: p95 is the 19th value.
    scenario = small_scenario()
    durations = iter([0.01 * (i + 1) for i in range(200)])

    def stepped(sc, stream):
        yield Sleep(next(durations))

    spec = PopulationSpec(
        behaviors=(Behavior("stepped", 1.0, stepped),),
        stages=(Stage(duration=2.0, arrival_rate=10.0, start_rate=10.0),),
        drain_grace=30.0,
    )
    _, results = run_engine(scenario, spec)
    (stage,) = results
    lat = sorted(stage._latencies)
    rank = max(0, math.ceil(0.95 * len(lat)) - 1)
    assert stage.p95_latency == lat[rank]
