"""The `python -m repro.bench` CLI."""


from repro.bench.__main__ import main


def test_cli_runs_selected_experiments(capsys):
    assert main(["E8"]) == 0
    out = capsys.readouterr().out
    assert "[E8]" in out
    assert "Garcia-Molina" in out
    assert "wall clock" in out


def test_cli_accepts_lowercase_ids(capsys):
    assert main(["e9"]) == 0
    assert "[E9]" in capsys.readouterr().out


def test_cli_runs_multiple(capsys):
    assert main(["E8", "E9"]) == 0
    out = capsys.readouterr().out
    assert "[E8]" in out and "[E9]" in out


def test_cli_rejects_unknown_ids(capsys):
    assert main(["E99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_registry_covers_all_documented_experiments():
    from repro.bench import ALL_EXPERIMENTS
    for eid in ["E1", "E2", "E2a", "E3", "E4", "E4a", "E5", "E5a",
                "E6", "E6b", "E7", "E8", "E9", "E10", "E11",
                "E12", "E13", "E14", "E15"]:
        assert eid in ALL_EXPERIMENTS


def test_cli_markdown_mode(capsys):
    assert main(["--markdown", "E8"]) == 0
    out = capsys.readouterr().out
    assert "### E8" in out
    assert "| spec |" in out or "| spec " in out
    assert "|---|" in out


def test_cli_help(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    assert "experiments:" in out


def test_markdown_formatting_unit():
    from repro.bench.report import format_markdown
    rows = [{"a": 1, "b": True}, {"a": 2.5, "b": None}]
    text = format_markdown(rows)
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "| 1 | yes |" in text
    assert "| 2.5000 | - |" in text
    assert format_markdown([]) == "*(empty)*"


# ---------------------------------------------------------------------------
# --obs artifact emission
# ---------------------------------------------------------------------------

def test_cli_obs_writes_schema_versioned_artifact(tmp_path, capsys):
    from repro.bench.artifact import SCHEMA, load_artifact
    path = tmp_path / "BENCH_obs.json"
    assert main(["--obs", str(path), "E8"]) == 0
    artifact = load_artifact(path)
    assert artifact["schema"] == SCHEMA
    (exp,) = artifact["experiments"]
    assert exp["id"] == "E8"
    assert exp["rows"] and exp["columns"]
    assert exp["elapsed_wall_s"] > 0
    assert "wrote" in capsys.readouterr().out


def test_cli_obs_flag_requires_path(capsys):
    assert main(["--obs"]) == 2


# ---------------------------------------------------------------------------
# the compare regression gate
# ---------------------------------------------------------------------------

def write_fake_artifact(path, latency=1.0, spec="fig3", elapsed=0.5,
                        extra_experiment=False, drop_row=False):
    from repro.bench.artifact import write_artifact
    rows = [{"impl": "DynamicSet", "latency": latency, "spec": spec},
            {"impl": "StrongSet", "latency": 2.0, "spec": "fig4"}]
    if drop_row:
        rows = rows[:1]
    records = [{"id": "E98", "title": "fake", "columns": ["impl", "latency", "spec"],
                "rows": rows, "notes": "", "elapsed_wall_s": elapsed}]
    if extra_experiment:
        records.append({"id": "E99", "title": "new", "columns": ["x"],
                        "rows": [{"x": 1}], "notes": ""})
    write_artifact(path, records)
    return str(path)


def test_compare_identical_inputs_exit_zero(tmp_path, capsys):
    a = write_fake_artifact(tmp_path / "a.json")
    assert main(["compare", a, a]) == 0
    assert "OK" in capsys.readouterr().out


def test_compare_ignores_wall_clock_noise(tmp_path, capsys):
    old = write_fake_artifact(tmp_path / "old.json", elapsed=0.5)
    new = write_fake_artifact(tmp_path / "new.json", elapsed=50.0)
    assert main(["compare", old, new, "--tolerance", "0.01"]) == 0


def test_compare_flags_injected_latency_regression(tmp_path, capsys):
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0)
    new = write_fake_artifact(tmp_path / "new.json", latency=1.5)
    assert main(["compare", old, new, "--tolerance", "0.1"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "latency" in out


def test_compare_within_tolerance_passes(tmp_path):
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0)
    new = write_fake_artifact(tmp_path / "new.json", latency=1.05)
    assert main(["compare", old, new, "--tolerance", "0.1"]) == 0


def test_compare_warn_only_downgrades_exit(tmp_path, capsys):
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0)
    new = write_fake_artifact(tmp_path / "new.json", latency=9.0)
    assert main(["compare", old, new, "--tolerance", "0.1", "--warn-only"]) == 0
    assert "WARN" in capsys.readouterr().out


def test_compare_non_numeric_mismatch_fails_at_any_tolerance(tmp_path, capsys):
    old = write_fake_artifact(tmp_path / "old.json", spec="fig3")
    new = write_fake_artifact(tmp_path / "new.json", spec="fig4")
    assert main(["compare", old, new, "--tolerance", "99"]) == 1


def test_compare_missing_experiment_is_a_regression(tmp_path):
    old = write_fake_artifact(tmp_path / "old.json", extra_experiment=True)
    new = write_fake_artifact(tmp_path / "new.json")
    assert main(["compare", old, new]) == 1


def test_compare_new_experiment_is_informational(tmp_path):
    old = write_fake_artifact(tmp_path / "old.json")
    new = write_fake_artifact(tmp_path / "new.json", extra_experiment=True)
    assert main(["compare", old, new]) == 0


def test_compare_row_count_mismatch_is_a_regression(tmp_path):
    old = write_fake_artifact(tmp_path / "old.json")
    new = write_fake_artifact(tmp_path / "new.json", drop_row=True)
    assert main(["compare", old, new]) == 1


def test_compare_extra_ignore_keys(tmp_path):
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0)
    new = write_fake_artifact(tmp_path / "new.json", latency=9.0)
    assert main(["compare", old, new, "--ignore", "latency"]) == 0


def test_compare_unreadable_file_exits_two(tmp_path, capsys):
    a = write_fake_artifact(tmp_path / "a.json")
    assert main(["compare", a, str(tmp_path / "missing.json")]) == 2


def test_compare_bad_schema_exits_two(tmp_path):
    import json
    a = write_fake_artifact(tmp_path / "a.json")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other/9", "experiments": []}))
    assert main(["compare", a, str(bad)]) == 2


def test_compare_improvement_passes_but_is_flagged(tmp_path, capsys):
    """A latency that *shrank* beyond tolerance is baseline rot, not a
    regression: exit 0, but the gate says to regenerate the baseline."""
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0)
    new = write_fake_artifact(tmp_path / "new.json", latency=0.4)
    assert main(["compare", old, new, "--tolerance", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "IMPROVED" in out
    assert "regenerate the baseline" in out
    assert "FAIL" not in out


def test_compare_improvement_does_not_mask_regressions(tmp_path, capsys):
    """One metric improving while another regresses still fails."""
    old = write_fake_artifact(tmp_path / "old.json", latency=1.0, spec="fig3")
    new = write_fake_artifact(tmp_path / "new.json", latency=0.4, spec="fig4")
    assert main(["compare", old, new, "--tolerance", "0.1"]) == 1
    out = capsys.readouterr().out
    assert "IMPROVED" in out and "FAIL" in out


def test_metric_direction_heuristic():
    from repro.bench.compare import metric_direction
    assert metric_direction("total_time") == "lower"
    assert metric_direction("p99_latency") == "lower"
    assert metric_direction("fig4_viol") == "lower"
    assert metric_direction("speedup_vs_serial") == "higher"
    # ambiguous names resolve lower-better first — a cost-ish marker must
    # never be read as good just because 'yield' also appears
    assert metric_direction("bytes_yielded") == "lower"
    assert metric_direction("cache_hits") == "higher"
    assert metric_direction("version") == "neutral"
    # bare percentile columns are latencies by table convention, and the
    # 'ok' in a successes-only percentile must not read as higher-better
    assert metric_direction("p95_s") == "lower"
    assert metric_direction("p95_ok_s") == "lower"


def test_compare_neutral_field_moves_are_regressions_both_ways(tmp_path):
    """A direction-less numeric field failing tolerance regresses no
    matter which way it moved."""
    from repro.bench.artifact import write_artifact
    from repro.bench.compare import compare_artifacts, load_artifact

    def art(path, version):
        records = [{"id": "E98", "title": "fake", "columns": ["version"],
                    "rows": [{"version": version}], "notes": ""}]
        write_artifact(path, records)
        return load_artifact(path)

    old = art(tmp_path / "old.json", 10)
    for new_value in (3, 30):
        new = art(tmp_path / f"new{new_value}.json", new_value)
        regressions, improvements, _ = compare_artifacts(old, new,
                                                         tolerance=0.1)
        assert regressions and not improvements


def test_compare_baseline_against_current_e17_schema(tmp_path):
    """The committed CI baseline stays loadable and self-consistent."""
    from pathlib import Path
    from repro.bench.artifact import load_artifact
    baseline = Path(__file__).resolve().parent.parent / "ci" / "bench_baseline.json"
    artifact = load_artifact(baseline)
    ids = {e["id"] for e in artifact["experiments"]}
    assert "E17" in ids
    assert main(["compare", str(baseline), str(baseline)]) == 0
