"""The `python -m repro.bench` CLI."""

import pytest

from repro.bench.__main__ import main


def test_cli_runs_selected_experiments(capsys):
    assert main(["E8"]) == 0
    out = capsys.readouterr().out
    assert "[E8]" in out
    assert "Garcia-Molina" in out
    assert "wall clock" in out


def test_cli_accepts_lowercase_ids(capsys):
    assert main(["e9"]) == 0
    assert "[E9]" in capsys.readouterr().out


def test_cli_runs_multiple(capsys):
    assert main(["E8", "E9"]) == 0
    out = capsys.readouterr().out
    assert "[E8]" in out and "[E9]" in out


def test_cli_rejects_unknown_ids(capsys):
    assert main(["E99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_registry_covers_all_documented_experiments():
    from repro.bench import ALL_EXPERIMENTS
    for eid in ["E1", "E2", "E2a", "E3", "E4", "E4a", "E5", "E5a",
                "E6", "E6b", "E7", "E8", "E9", "E10", "E11",
                "E12", "E13", "E14", "E15"]:
        assert eid in ALL_EXPERIMENTS


def test_cli_markdown_mode(capsys):
    assert main(["--markdown", "E8"]) == 0
    out = capsys.readouterr().out
    assert "### E8" in out
    assert "| spec |" in out or "| spec " in out
    assert "|---|" in out


def test_cli_help(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    assert "experiments:" in out


def test_markdown_formatting_unit():
    from repro.bench.report import format_markdown
    rows = [{"a": 1, "b": True}, {"a": 2.5, "b": None}]
    text = format_markdown(rows)
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "| 1 | yes |" in text
    assert "| 2.5000 | - |" in text
    assert format_markdown([]) == "*(empty)*"
