"""NetworkStats accounting."""


from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel


class Echo:
    def echo(self, x):
        return x


def test_counts_per_node_and_aggregate():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b", "c"], FixedLatency(0.01)))
    net.register_service("b", "echo", Echo())
    net.register_service("c", "echo", Echo())

    def proc():
        for _ in range(3):
            yield from net.call("a", "b", "echo", "echo", 1)
        yield from net.call("a", "c", "echo", "echo", 1)

    kernel.run_process(proc())
    stats = net.transport.stats
    assert stats.total_sent == 8              # 4 requests + 4 replies
    assert stats.total_delivered == 8
    assert stats.total_dropped == 0
    assert stats.delivery_rate == 1.0
    assert stats.node("a").sent == 4
    assert stats.node("b").requests_handled == 3
    assert stats.node("c").requests_handled == 1
    assert stats.node("a").requests_handled == 0   # replies aren't requests


def test_drops_counted():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)),
                  fail_fast=False)
    net.register_service("b", "echo", Echo())
    net.crash("b")

    def proc():
        from repro.errors import FailureException
        try:
            yield from net.call("a", "b", "echo", "echo", 1, timeout=0.2)
        except FailureException:
            pass

    kernel.run_process(proc())
    stats = net.transport.stats
    assert stats.total_dropped == 1
    assert stats.delivery_rate == 0.0


def test_busiest_nodes_ranking():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b", "c"], FixedLatency(0.01)))
    net.register_service("b", "echo", Echo())
    net.register_service("c", "echo", Echo())

    def proc():
        for _ in range(5):
            yield from net.call("a", "b", "echo", "echo", 1)
        yield from net.call("a", "c", "echo", "echo", 1)

    kernel.run_process(proc())
    ranking = net.transport.stats.busiest_nodes(k=2)
    assert ranking[0] == ("b", 5)
    assert ranking[1] == ("c", 1)


def test_str_representations():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    stats = net.transport.stats
    assert "sent=0" in str(stats)
    assert "handled=0" in str(stats.node("a"))
