"""GrowOnlySet (Figure 5) and the §3.3 per-run ghost protocol."""


from repro.errors import MutationNotAllowed
from repro.spec import Failed, Returned, check_conformance, per_run_grow_only, spec_by_id
from repro.weaksets import GrowOnlySet, PerRunGrowOnlySet

from helpers import CLIENT, PRIMARY, drain_all, standard_world


def test_yields_everything_on_quiet_world():
    kernel, net, world, elements = standard_world(members=6, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert frozenset(result.elements) == frozenset(elements)
    assert isinstance(result.outcome, Returned)
    report = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert report.conformant, report.counterexample()


def test_sees_additions_made_during_the_run():
    """Pre-state basis: unlike Fig 4, growth during the run is yielded."""
    kernel, net, world, elements = standard_world(members=3, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        late = yield from ws.repo.add("coll", "zz-late", value="L")
        rest = yield from iterator.drain()
        return late, [first.element] + rest.elements

    late, got = kernel.run_process(proc())
    assert late in got                         # the addition was seen
    assert len(got) == 4
    report = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert report.conformant, report.counterexample()


def test_fails_pessimistically_when_member_unreachable():
    kernel, net, world, elements = standard_world(
        n_servers=4, members=8, policy="grow-only")
    net.split([CLIENT, "s0", "s2", "s3"], ["s1"])
    ws = GrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    # everything reachable was yielded before failing
    reachable = {e for e in elements if e.home != "s1"}
    assert frozenset(result.elements) == reachable
    report = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert report.conformant, report.counterexample()


def test_fails_when_primary_unreachable_mid_run():
    kernel, net, world, elements = standard_world(members=4, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        net.isolate(PRIMARY)                 # s_pre read now impossible
        return (yield from iterator.invoke())

    outcome = kernel.run_process(proc())
    assert isinstance(outcome, Failed)


def test_remove_rejected_by_policy():
    kernel, net, world, elements = standard_world(members=2, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")

    def proc():
        try:
            yield from ws.remove(elements[0])
        except MutationNotAllowed:
            return "rejected"

    assert kernel.run_process(proc()) == "rejected"


def test_grow_only_constraint_holds_on_history():
    kernel, net, world, elements = standard_world(members=2, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")

    def proc():
        yield from ws.add("new1", value=1)
        yield from ws.add("new2", value=2)

    kernel.run_process(proc())
    history = world.membership_history("coll")
    assert spec_by_id("fig5").constraint.check(history) == []


# ---------------------------------------------------------------------------
# §3.3 ghost protocol (grow-during-run)
# ---------------------------------------------------------------------------

def test_ghost_protocol_defers_removal_during_run():
    kernel, net, world, elements = standard_world(
        members=4, policy="grow-during-run")
    ws = PerRunGrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()      # registers the run
        victim = next(e for e in elements if e != first.element)
        yield from ws.repo.remove("coll", victim)  # becomes a ghost
        assert victim in world.true_members("coll")
        rest = yield from iterator.drain()
        return victim, [first.element] + rest.elements

    victim, got = kernel.run_process(proc())
    # the removed member was still yielded (the run only saw growth)...
    assert victim in got
    # ...and was purged once the run ended
    assert victim not in world.true_members("coll")


def test_ghost_purge_waits_for_last_iteration():
    kernel, net, world, elements = standard_world(
        members=3, policy="grow-during-run")
    ws1 = PerRunGrowOnlySet(world, CLIENT, "coll")
    ws2 = PerRunGrowOnlySet(world, "s2", "coll")
    it1, it2 = ws1.elements(), ws2.elements()

    def proc():
        yield from it1.invoke()
        yield from it2.invoke()
        yield from ws1.repo.remove("coll", elements[0])   # ghost now
        r1 = yield from it1.drain()                       # first run ends
        assert elements[0] in world.true_members("coll")  # it2 still active
        r2 = yield from it2.drain()                       # last run ends
        return r1, r2

    kernel.run_process(proc())
    assert elements[0] not in world.true_members("coll")  # purged


def test_per_run_grow_only_constraint_holds_during_runs():
    kernel, net, world, elements = standard_world(
        members=4, policy="grow-during-run")
    ws = PerRunGrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.remove("coll", elements[2])
        yield from ws.add("fresh", value="F")
        yield from iterator.drain()

    kernel.run_process(proc())
    history = world.membership_history("coll")
    window = ws.last_trace.window()
    assert per_run_grow_only().check_windows(history, [window]) == []


def test_removal_between_runs_is_immediate():
    kernel, net, world, elements = standard_world(
        members=3, policy="grow-during-run")
    ws = PerRunGrowOnlySet(world, CLIENT, "coll")
    drain_all(kernel, ws)  # a full run with no active mutations

    def proc():
        yield from ws.repo.remove("coll", elements[0])

    kernel.run_process(proc())
    assert elements[0] not in world.true_members("coll")  # no ghost needed
