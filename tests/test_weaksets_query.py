"""Predicate queries over weak sets."""


from repro.spec import Returned
from repro.weaksets import DynamicSet, select

from helpers import CLIENT, standard_world


def test_select_filters_by_value():
    kernel, net, world, elements = standard_world(members=6)
    ws = DynamicSet(world, CLIENT, "coll")
    q = select(ws, lambda e, v: v in {"v0", "v2", "v4"})

    def proc():
        return (yield from q.drain())

    result = kernel.run_process(proc())
    assert sorted(v for v in result.values) == ["v0", "v2", "v4"]
    assert q.examined == 6
    assert q.matched == 3


def test_select_filters_by_element_name():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")
    q = select(ws, lambda e, v: e.name.endswith("3"))

    def proc():
        return (yield from q.drain())

    result = kernel.run_process(proc())
    assert [e.name for e in result.elements] == ["m003"]


def test_select_nothing_matches():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")
    q = select(ws, lambda e, v: False)

    def proc():
        return (yield from q.drain())

    result = kernel.run_process(proc())
    assert result.elements == []
    assert isinstance(result.outcome, Returned)
    assert q.terminated


def test_select_with_max_yields_stops_early():
    kernel, net, world, elements = standard_world(members=8)
    ws = DynamicSet(world, CLIENT, "coll")
    q = select(ws, lambda e, v: True)

    def proc():
        return (yield from q.drain(max_yields=3))

    result = kernel.run_process(proc())
    assert len(result.elements) == 3
    assert not q.terminated            # still resumable


def test_query_inherits_underlying_semantics():
    """A query over a weak iterator sees mutations exactly as it does."""
    kernel, net, world, elements = standard_world(members=3)
    ws = DynamicSet(world, CLIENT, "coll")
    q = select(ws, lambda e, v: True)

    def proc():
        first = yield from q.invoke()
        yield from ws.repo.add("coll", "zz-new", value="vN")
        rest = yield from q.drain()
        return [first.element] + rest.elements

    got = kernel.run_process(proc())
    assert "zz-new" in {e.name for e in got}
