"""The LSL Set trait: axioms over random terms (hypothesis) + rendering."""

import pytest
from hypothesis import given, strategies as st

from repro.spec import FunctionalSet, render_all, render_spec, spec_by_id
from repro.spec.lsl import (
    AXIOMS,
    Delete,
    DifferenceOf,
    Empty,
    Insert,
    IntersectionOf,
    UnionOf,
    evaluate,
    is_subset,
    member,
    size,
    terms_equal,
)

elements = st.integers(min_value=0, max_value=5)


@st.composite
def terms(draw, max_depth=4):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return Empty()
    kind = draw(st.sampled_from(["insert", "delete", "union", "diff", "inter"]))
    if kind == "insert":
        return Insert(draw(terms(max_depth=depth - 1)), draw(elements))
    if kind == "delete":
        return Delete(draw(terms(max_depth=depth - 1)), draw(elements))
    left = draw(terms(max_depth=depth - 1))
    right = draw(terms(max_depth=depth - 1))
    ctor = {"union": UnionOf, "diff": DifferenceOf, "inter": IntersectionOf}[kind]
    return ctor(left, right)


# ---------------------------------------------------------------------------
# evaluation and structural operations agree with the standard model
# ---------------------------------------------------------------------------

def test_basic_evaluation():
    t = Empty().insert(1).insert(2).delete(1)
    assert evaluate(t) == frozenset({2})
    assert member(2, t) and not member(1, t)
    assert size(t) == 1
    assert "insert" in str(Empty().insert(1))


def test_operators():
    a = Empty().insert(1).insert(2)
    b = Empty().insert(2).insert(3)
    assert evaluate(a.union(b)) == frozenset({1, 2, 3})
    assert evaluate(a.difference(b)) == frozenset({1})
    assert evaluate(a.intersection(b)) == frozenset({2})
    assert is_subset(a.intersection(b), a)


@given(terms(), elements)
def test_member_agrees_with_model(t, e):
    assert member(e, t) == (e in evaluate(t))


@given(terms())
def test_size_agrees_with_model(t):
    assert size(t) == len(evaluate(t))


@given(terms(), terms())
def test_terms_equal_is_model_equality(a, b):
    assert terms_equal(a, b) == (evaluate(a) == evaluate(b))


# ---------------------------------------------------------------------------
# the trait's axioms hold over random terms
# ---------------------------------------------------------------------------

@given(terms(), elements)
def test_axiom_insert_idempotent(s, e):
    assert AXIOMS["insert-idempotent"](s, e)


@given(terms(), elements, elements)
def test_axiom_insert_commutative(s, e1, e2):
    assert AXIOMS["insert-commutative"](s, e1, e2)


@given(elements)
def test_axiom_member_empty(e):
    assert AXIOMS["member-empty"](e)


@given(terms(), elements, elements)
def test_axiom_member_insert(s, e1, e2):
    assert AXIOMS["member-insert"](s, e1, e2)


@given(elements)
def test_axiom_delete_empty(e):
    assert AXIOMS["delete-empty"](e)


@given(terms(), elements, elements)
def test_axiom_delete_insert(s, e1, e2):
    assert AXIOMS["delete-insert"](s, e1, e2)


@given(terms())
def test_axiom_union_empty(s):
    assert AXIOMS["union-empty"](s)


@given(terms(), terms(), elements)
def test_axiom_union_insert(s1, s2, e):
    assert AXIOMS["union-insert"](s1, s2, e)


@given(terms())
def test_axiom_difference_empty(s):
    assert AXIOMS["difference-empty"](s)


def test_axiom_size_empty():
    assert AXIOMS["size-empty"]()


@given(terms(), elements)
def test_axiom_size_insert(s, e):
    assert AXIOMS["size-insert"](s, e)


def test_evaluate_rejects_non_terms():
    with pytest.raises(TypeError):
        evaluate("not a term")
    with pytest.raises(TypeError):
        member(1, 42)


# ---------------------------------------------------------------------------
# rendering (the round-trip sanity check)
# ---------------------------------------------------------------------------

def test_render_fig3_mentions_reachable_and_failure():
    text = render_spec(spec_by_id("fig3"))
    assert "constraint s_i = s_j" in text
    assert "signals (failure)" in text
    assert "reachable(s_first)" in text
    assert "fails" in text


def test_render_fig6_has_no_failure_signal():
    text = render_spec(spec_by_id("fig6"))
    assert "signals" not in text
    assert "∃ e ∈ s_pre" in text
    assert "fails" not in text


def test_render_fig1_ignores_reachability():
    text = render_spec(spec_by_id("fig1"))
    assert "reachable" not in text


def test_render_all_covers_five_figures():
    text = render_all()
    for fig in ["Figure 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6"]:
        assert fig in text


# ---------------------------------------------------------------------------
# the two tiers agree: LSL terms vs FunctionalSet (Figure 1's value space)
# ---------------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["insert", "delete"]), elements),
                max_size=20))
def test_lsl_terms_agree_with_functional_set(ops):
    term = Empty()
    fset = FunctionalSet.create()
    for op, e in ops:
        if op == "insert":
            term = term.insert(e)
            fset = fset.add(e)
        else:
            term = term.delete(e)
            fset = fset.remove(e)
    assert evaluate(term) == fset.members()
    assert size(term) == fset.size()
