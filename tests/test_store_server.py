"""ObjectServer edge cases: updates, tombstones, transfer time, ghosts."""

import pytest

from repro.errors import (
    MutationNotAllowed,
    NoSuchCollectionError,
    NoSuchObjectError,
    SimulationError,
)
from repro.net.wire import unwrap
from repro.store import Repository

from helpers import CLIENT, PRIMARY, standard_world


def test_put_object_update_bumps_version():
    kernel, net, world, _ = standard_world()
    server = world.server("s1")

    def proc():
        v1 = yield from server.put_object("oid-1", "first")
        v2 = yield from server.put_object("oid-1", "second")
        value = yield from server.get_object("oid-1")
        return v1, v2, value

    v1, v2, value = kernel.run_process(proc())
    assert (v1, v2) == (1, 2)
    assert unwrap(value) == "second"   # reads ship as wire Blobs


def test_put_after_delete_recreates():
    kernel, net, world, _ = standard_world()
    server = world.server("s1")

    def proc():
        yield from server.put_object("oid-x", "v")
        yield from server.put_object("oid-x", "v2")      # version 2
        yield from server.delete_object("oid-x")
        redeleted = yield from server.delete_object("oid-x")
        v = yield from server.put_object("oid-x", "reborn")
        value = yield from server.get_object("oid-x")
        return redeleted, v, value

    redeleted, v, value = kernel.run_process(proc())
    assert redeleted is False          # deleting twice is a no-op
    assert v == 3                      # resumes past the tombstone's version
    assert unwrap(value) == "reborn"


def test_get_missing_object_raises():
    kernel, net, world, _ = standard_world()
    server = world.server("s1")

    def proc():
        try:
            yield from server.get_object("never-existed")
        except NoSuchObjectError:
            return "missing"

    assert kernel.run_process(proc()) == "missing"


def test_transfer_time_scales_with_size():
    from repro.store import Element

    kernel, net, world, _ = standard_world(bandwidth=1_000_000.0)
    big = Element("big", "oid-big", "s1")
    world.server("s1").store_direct(big, value="x" * 10, size=2_000_000)
    repo = Repository(world, CLIENT)

    def proc():
        t0 = kernel.now
        yield from repo.fetch(big)
        return kernel.now - t0

    elapsed = kernel.run_process(proc())
    assert elapsed >= 2.0              # 2 MB over 1 MB/s


def test_mutation_via_replica_is_rejected():
    kernel, net, world, _ = standard_world(replicas=1)
    from repro.store import Element, fresh_oid
    e = Element("x", fresh_oid("x"), "s2")

    def proc():
        try:
            yield from net.call(CLIENT, "s1", "store", "add_member", "coll", e)
        except SimulationError as exc:
            return "replica" in str(exc)

    assert kernel.run_process(proc())


def test_add_member_idempotent_and_name_conflicts():
    kernel, net, world, elements = standard_world(members=1)
    from repro.store import Element
    same = elements[0]
    conflicting = Element(same.name, "different-oid", "s2")

    def proc():
        server = world.server(PRIMARY)
        v1 = yield from server.add_member("coll", same)       # idempotent
        try:
            yield from server.add_member("coll", conflicting)
        except MutationNotAllowed:
            return v1, "conflict rejected"

    v1, verdict = kernel.run_process(proc())
    assert verdict == "conflict rejected"


def test_list_members_on_non_host_raises():
    kernel, net, world, _ = standard_world()

    def proc():
        try:
            yield from net.call(CLIENT, "s2", "store", "list_members", "coll")
        except NoSuchCollectionError:
            return "not hosted"

    assert kernel.run_process(proc()) == "not hosted"


def test_duplicate_host_collection_rejected():
    kernel, net, world, _ = standard_world()
    with pytest.raises(SimulationError):
        world.server(PRIMARY).host_collection("coll", "any", is_primary=True)


def test_unknown_policy_rejected():
    kernel, net, world, _ = standard_world()
    with pytest.raises(SimulationError):
        world.server("s2").host_collection("c2", "bogus-policy", is_primary=True)


def test_ghost_purge_retries_after_failure():
    """A ghost whose home is unreachable at purge time survives and is
    purged by a later end_iteration."""
    kernel, net, world, _ = standard_world(policy="grow-during-run")
    victim = world.seed_member("coll", "victim", home="s2")
    repo = Repository(world, CLIENT)

    def proc():
        token1 = yield from repo.begin_iteration("coll")
        yield from repo.remove("coll", victim)           # ghost now
        net.isolate("s2")                                # purge will fail
        purged1 = yield from repo.end_iteration("coll", token1)
        assert victim in world.true_members("coll")      # still pending
        net.rejoin("s2")
        token2 = yield from repo.begin_iteration("coll")
        purged2 = yield from repo.end_iteration("coll", token2)
        return purged1, purged2

    purged1, purged2 = kernel.run_process(proc())
    assert purged1 == 0
    assert purged2 == 1
    assert victim not in world.true_members("coll")


def test_ghost_purge_retries_after_home_crash():
    """Same retry path as above, but via the NodeCrashFailure branch:
    the ghost's home is *crashed* (not partitioned) at purge time."""
    kernel, net, world, _ = standard_world(policy="grow-during-run")
    victim = world.seed_member("coll", "victim", home="s2")
    repo = Repository(world, CLIENT)

    def proc():
        token1 = yield from repo.begin_iteration("coll")
        yield from repo.remove("coll", victim)           # ghost now
        net.crash("s2")                                  # purge will fail
        purged1 = yield from repo.end_iteration("coll", token1)
        assert victim in world.true_members("coll")      # still pending
        net.recover("s2")
        token2 = yield from repo.begin_iteration("coll")
        purged2 = yield from repo.end_iteration("coll", token2)
        return purged1, purged2

    purged1, purged2 = kernel.run_process(proc())
    assert purged1 == 0
    assert purged2 == 1
    assert victim not in world.true_members("coll")
    assert world.check_invariants() == []


def test_failed_ghost_purge_aborts_its_intent():
    """A purge that dies against an unreachable home leaves an aborted
    WAL intent (not a pending one) and an intact member — deviation #3
    semantics, now with bookkeeping."""
    kernel, net, world, _ = standard_world(policy="grow-during-run")
    victim = world.seed_member("coll", "victim", home="s2")
    repo = Repository(world, CLIENT)
    server = world.server(PRIMARY)

    def proc():
        token = yield from repo.begin_iteration("coll")
        yield from repo.remove("coll", victim)
        net.isolate("s2")
        purged = yield from repo.end_iteration("coll", token)
        return purged

    assert kernel.run_process(proc()) == 0
    aborted = [r for r in server.wal.records if r.origin == "purge"]
    assert len(aborted) == 1
    from repro.store.wal import ABORTED
    assert aborted[0].status is ABORTED
    assert server.wal.pending() == []                    # clean failure, not a crash
    assert kernel.obs.metrics.value("wal.aborts") >= 1
    net.rejoin("s2")
    assert world.check_invariants() == []


def test_partial_ghost_purge_completes_later():
    """A purge that deleted an object replica but could not reach the
    home aborts whole; the next end_iteration finishes the job
    idempotently (re-deleting the already-dead replica is a no-op)."""
    kernel, net, world, _ = standard_world(policy="grow-during-run")
    victim = world.seed_member("coll", "victim", home="s2", replicas=("s3",))
    repo = Repository(world, CLIENT)

    def proc():
        token1 = yield from repo.begin_iteration("coll")
        yield from repo.remove("coll", victim)
        net.isolate("s2")                                # replica s3 still up
        purged1 = yield from repo.end_iteration("coll", token1)
        replica_dead = not world.server("s3").has_object(victim.oid)
        net.rejoin("s2")
        token2 = yield from repo.begin_iteration("coll")
        purged2 = yield from repo.end_iteration("coll", token2)
        return purged1, replica_dead, purged2

    purged1, replica_dead, purged2 = kernel.run_process(proc())
    assert purged1 == 0
    assert replica_dead                                  # partial progress happened
    assert victim not in world.true_members("coll") and purged2 == 1
    assert world.check_invariants() == []


def test_crash_preserves_objects_and_membership():
    kernel, net, world, elements = standard_world(members=3)
    server = world.server(PRIMARY)
    objects_before = dict(server.objects)
    net.crash(PRIMARY)
    net.recover(PRIMARY)
    assert server.objects == objects_before
    assert world.true_members("coll") == frozenset(elements)
