"""Tests for seed-derived random streams."""

from hypothesis import given, strategies as st

from repro.sim.rng import RandomRouter


def test_same_seed_same_sequence():
    a = RandomRouter(7).stream("x")
    b = RandomRouter(7).stream("x")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_names_different_sequences():
    r = RandomRouter(7)
    xs = [r.stream("x").random() for _ in range(10)]
    ys = [r.stream("y").random() for _ in range(10)]
    assert xs != ys


def test_stream_is_cached_and_continues():
    r = RandomRouter(7)
    first = r.stream("x").random()
    second = r.stream("x").random()
    fresh = RandomRouter(7).stream("x")
    assert [first, second] == [fresh.random(), fresh.random()]


def test_adding_a_stream_does_not_perturb_others():
    r1 = RandomRouter(3)
    s1 = r1.stream("net")
    seq1 = [s1.random() for _ in range(5)]

    r2 = RandomRouter(3)
    r2.stream("completely-new-consumer").random()
    s2 = r2.stream("net")
    seq2 = [s2.random() for _ in range(5)]
    assert seq1 == seq2


@given(st.integers(min_value=1, max_value=200), st.floats(min_value=0.0, max_value=3.0))
def test_zipf_index_in_range(n, skew):
    s = RandomRouter(1).stream("zipf")
    for _ in range(20):
        assert 0 <= s.zipf_index(n, skew) < n


def test_zipf_skew_prefers_low_indices():
    s = RandomRouter(5).stream("zipf")
    draws = [s.zipf_index(100, skew=1.5) for _ in range(2000)]
    low = sum(1 for d in draws if d < 10)
    assert low > len(draws) * 0.4  # heavily concentrated at the head


@given(st.floats(min_value=0.001, max_value=100.0))
def test_exponential_nonnegative(mean):
    s = RandomRouter(2).stream("exp")
    assert s.exponential(mean) >= 0.0


def test_exponential_zero_mean_is_zero():
    assert RandomRouter(0).stream("e").exponential(0.0) == 0.0


def test_bernoulli_extremes():
    s = RandomRouter(9).stream("b")
    assert not any(s.bernoulli(0.0) for _ in range(100))
    assert all(s.bernoulli(1.0) for _ in range(100))


def test_pareto_latency_at_least_floor():
    s = RandomRouter(4).stream("p")
    for _ in range(100):
        assert s.pareto_latency(0.05) >= 0.05
