"""The obs layer wired through the stack: registry agreement and nesting."""

from repro.net import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.stats import NetworkStats
from repro.obs import export_jsonl, read_jsonl, spans_from_records
from repro.spec import Returned

from helpers import CLIENT, drain_all, standard_world


def resilient_drain(crash=None, members=6, give_up_after=3.0):
    kernel, net, world, elements = standard_world(
        n_servers=3, members=members, replicas=1)
    resilience = ResilientClient(
        net,
        policy=RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                           max_delay=0.5, jitter=0.5),
        breaker=BreakerPolicy(failure_threshold=3, cooldown=1.0))
    from repro.weaksets import DynamicSet
    ws = DynamicSet(world, CLIENT, "coll", resilience=resilience,
                    rpc_timeout=0.5, retry_interval=0.25,
                    give_up_after=give_up_after, failover=True)
    if crash:
        net.crash(crash)
    result = drain_all(kernel, ws)
    return kernel, net, result


# ---------------------------------------------------------------------------
# facade agreement: NetworkStats-era counters == registry metrics
# ---------------------------------------------------------------------------

def test_network_stats_facade_reads_registry_counters():
    kernel, net, result = resilient_drain()
    registry = kernel.obs.metrics
    stats = net.transport.stats
    for attr, metric in NetworkStats.METRIC_NAMES.items():
        assert getattr(stats, attr) == registry.value(metric), (attr, metric)
    assert stats.total_sent > 0
    assert isinstance(result.outcome, Returned)


def test_facade_agreement_survives_faults_and_retries():
    kernel, net, result = resilient_drain(crash="s2")
    registry = kernel.obs.metrics
    stats = net.transport.stats
    # the crash engaged the retry machinery; both views saw it
    assert stats.retries > 0
    assert stats.retries == registry.value("rpc.retries")
    assert stats.total_dropped == registry.value("net.messages_dropped")
    for attr, metric in NetworkStats.METRIC_NAMES.items():
        assert getattr(stats, attr) == registry.value(metric), (attr, metric)


def test_facade_writes_reach_the_registry():
    kernel, net, _ = resilient_drain()
    registry = kernel.obs.metrics
    before = registry.value("rpc.retries")
    net.transport.stats.retries += 3                      # legacy-style write
    assert registry.value("rpc.retries") == before + 3


# ---------------------------------------------------------------------------
# metric coverage across layers
# ---------------------------------------------------------------------------

def test_every_layer_contributes_metrics():
    kernel, net, result = resilient_drain()
    registry = kernel.obs.metrics
    assert registry.value("kernel.events") > 0
    assert registry.value("net.messages_sent") > 0
    assert registry.value("rpc.attempts") > 0
    assert registry.value("repo.membership_reads") > 0
    assert registry.value("drain.completed") == 1
    assert registry.value("drain.yields") == len(result.elements)
    hist = registry.get("drain.latency")
    assert hist is not None and hist.count == 1
    assert registry.get("rpc.attempt_latency").count == registry.value("rpc.attempts")
    # drain latency in virtual seconds matches the kernel's accounting
    assert registry.value("kernel.sim_seconds") == kernel.now


# ---------------------------------------------------------------------------
# span nesting: rpc.attempt ⊂ rpc.call ⊂ drain
# ---------------------------------------------------------------------------

def test_rpc_attempts_nest_under_the_drain_span():
    kernel, net, result = resilient_drain()
    tracer = kernel.obs.tracer
    drains = tracer.spans("drain")
    attempts = tracer.spans("rpc.attempt")
    assert len(drains) == 1 and attempts
    (drain,) = drains
    for attempt in attempts:
        ancestors = list(tracer.ancestors(attempt))
        assert any(s is drain for s in ancestors), attempt
        assert any(s.name == "rpc.call" for s in ancestors), attempt
        # containment in virtual time, not just by link
        assert drain.start <= attempt.start
        assert attempt.end is not None and attempt.end <= drain.end
    assert drain.attrs["outcome"] == "Returned"


def test_trace_exports_and_reimports_with_nesting_intact(tmp_path):
    kernel, net, result = resilient_drain(crash="s2")
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, metrics=kernel.obs.metrics, tracer=kernel.obs.tracer,
                 meta={"test": "integration"})
    records = read_jsonl(path)
    spans = spans_from_records(records)
    by_id = {s.span_id: s for s in spans}
    attempts = [s for s in spans if s.name == "rpc.attempt"]
    assert attempts

    # Every wire attempt traces back to a workload root: a client drain,
    # or one of the background protocols (anti-entropy, scrub, recovery).
    roots = {"drain", "sync.round", "repair.scrub", "recovery.replay"}

    def has_root_ancestor(span):
        while span.parent_id is not None:
            span = by_id[span.parent_id]
            if span.name in roots:
                return True
        return False

    assert all(has_root_ancestor(a) for a in attempts)
    # and the client-facing ones still nest under their drain
    drain_ids = {s.span_id for s in spans if s.name == "drain"}
    assert drain_ids and any(has_root_ancestor(a) for a in attempts)


def test_runs_are_deterministic_functions_of_the_seed():
    kernel1, _, _ = resilient_drain(crash="s2")
    kernel2, _, _ = resilient_drain(crash="s2")
    snap1 = kernel1.obs.metrics.snapshot()
    snap2 = kernel2.obs.metrics.snapshot()
    snap1.pop("kernel.wall_seconds"), snap2.pop("kernel.wall_seconds")
    assert snap1 == snap2
    spans1 = [s.to_dict() for s in kernel1.obs.tracer]
    spans2 = [s.to_dict() for s in kernel2.obs.tracer]
    assert spans1 == spans2
