"""Seeded chaos soak: resilient iteration under a live FaultInjector.

Marked ``chaos`` so CI can select (``-m chaos``) or deselect
(``-m "not chaos"``) the soak explicitly; it also runs in the default
suite because every run is deterministic — the injector draws from the
kernel's seeded streams, so a failure here is a reproducible
counterexample, not flake.

Each soak drives a resilient :class:`DynamicSet` drain loop through a
world where nodes crash and recover continually, then asserts the two
properties resilience must preserve:

* soundness — §3.4's weak guarantee on every trace (no yielded element
  that was never a member during the run's window);
* determinism — the same seed produces byte-identical yield sequences
  and counter values on a second run.
"""

import pytest

from repro.net import BreakerPolicy, ResilientClient, RetryPolicy
from repro.net.failures import FaultPlan
from repro.spec import Returned, weak_guarantee_violations
from repro.wan import Mutator, ScenarioSpec, build_scenario
from repro.weaksets import DynamicSet

pytestmark = pytest.mark.chaos

SOAK_SEEDS = (0, 1, 2, 3, 4)


def soak_once(seed, rounds=3):
    """One seeded soak run; returns (yield-names per round, stats tuple)."""
    plan = FaultPlan(crash_rate=0.15, isolate_rate=0.05, mean_downtime=1.5,
                     protected=frozenset({"client"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=3, n_members=10,
                        policy="any", replicas=2, object_replicas=1,
                        fault_plan=plan, fail_fast=True, rpc_timeout=1.0)
    scenario = build_scenario(spec, seed=seed)
    mutator = Mutator(scenario, add_rate=0.3, remove_rate=0.3)
    mutator.start()
    resilience = ResilientClient(
        scenario.net,
        policy=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.4),
        breaker=BreakerPolicy(failure_threshold=4, cooldown=1.0),
        hedge_delay=0.15,
    )
    ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                    resilience=resilience, rpc_timeout=spec.rpc_timeout,
                    retry_interval=0.25, give_up_after=3.0)
    rounds_out = []
    completions = 0
    for _ in range(rounds):
        iterator = ws.elements()

        def proc():
            return (yield from iterator.drain())

        drained = scenario.kernel.run_process(proc())
        completions += isinstance(drained.outcome, Returned)
        rounds_out.append(tuple(y.element.name for y in drained.yields))
    scenario.injector.stop()
    history = scenario.world.membership_history(spec.coll_id)
    violations = [v for trace in ws.traces
                  for v in weak_guarantee_violations(trace, history)]
    stats = scenario.net.transport.stats
    counters = (stats.retries, stats.hedges, stats.failovers,
                stats.breaker_trips, stats.breaker_fast_fails,
                stats.total_sent, stats.total_dropped)
    return rounds_out, counters, violations, completions


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_chaos_soak_is_sound(seed):
    rounds, counters, violations, _ = soak_once(seed)
    assert violations == []
    # every round yields each member at most once
    for names in rounds:
        assert len(names) == len(set(names))


def test_chaos_soak_recovers_work():
    # Across the seed set, chaos actually bites (faults get injected,
    # recovery machinery engages) and most drains still complete.
    total_completions = 0
    total_recovery = 0
    for seed in SOAK_SEEDS:
        _, counters, _, completions = soak_once(seed)
        total_completions += completions
        total_recovery += counters[0] + counters[2]   # retries + failovers
    assert total_recovery > 0
    assert total_completions >= (3 * len(SOAK_SEEDS)) // 2


@pytest.mark.parametrize("seed", (0, 3))
def test_chaos_soak_is_deterministic(seed):
    first = soak_once(seed)
    second = soak_once(seed)
    assert first[0] == second[0]          # identical yield sequences
    assert first[1] == second[1]          # identical counters
