"""Checker internals: reports, history clipping, the weak guarantee."""

import pytest

from repro.spec import (
    ConformanceReport,
    Returned,
    Yielded,
    check_conformance,
    spec_by_id,
    weak_guarantee_violations,
)
from repro.spec.checker import _clip
from repro.spec.iterspec import SpecViolationDetail
from repro.spec.state import InvocationRecord, StateSnapshot
from repro.spec.trace import IterationTrace
from repro.store import Element



def elem(name):
    return Element(name=name, oid=f"oid-{name}", home="s0")


A, B = elem("a"), elem("b")


def snapshot(t, members, reach_nodes=("client", "s0")):
    return StateSnapshot(time=t, members=frozenset(members),
                         reachable_nodes=frozenset(reach_nodes))


def simple_trace(outcomes):
    """Build a trace from a list of (yielded_pre, outcome, members)."""
    trace = IterationTrace(coll_id="c", client="client", impl_name="manual")
    for i, (pre, outcome, members) in enumerate(outcomes):
        post = pre | {outcome.element} if isinstance(outcome, Yielded) else pre
        trace.invocations.append(InvocationRecord(
            index=i, t_invoke=float(i), t_complete=float(i) + 0.5,
            yielded_pre=frozenset(pre), yielded_post=frozenset(post),
            outcome=outcome, snapshots=(snapshot(float(i), members),),
        ))
    if trace.invocations:
        trace.first_candidates = trace.invocations[0].snapshots
    return trace


# ---------------------------------------------------------------------------
# report formatting
# ---------------------------------------------------------------------------

def test_report_summary_conformant():
    report = ConformanceReport(spec_id="fig6", impl_name="x")
    assert report.conformant
    assert "CONFORMS" in report.summary()
    assert report.counterexample() is None


def test_report_summary_with_violations():
    report = ConformanceReport(
        spec_id="fig3", impl_name="x",
        ensures_violations=[SpecViolationDetail(2, "boom")],
    )
    assert not report.conformant
    assert "VIOLATES" in report.summary()
    assert "1 ensures" in report.summary()
    assert "boom" in report.counterexample()


# ---------------------------------------------------------------------------
# history clipping
# ---------------------------------------------------------------------------

def test_clip_keeps_value_in_force_at_window_start():
    history = [(0.0, frozenset({A})), (5.0, frozenset({A, B}))]
    clipped = _clip(history, 2.0, 10.0)
    assert clipped == [(0.0, frozenset({A})), (5.0, frozenset({A, B}))]


def test_clip_excludes_changes_after_window():
    history = [(0.0, frozenset({A})), (5.0, frozenset({A, B}))]
    clipped = _clip(history, 0.0, 4.0)
    assert clipped == [(0.0, frozenset({A}))]


def test_clip_empty_before_history():
    history = [(3.0, frozenset({A}))]
    assert _clip(history, 0.0, 1.0) == []


# ---------------------------------------------------------------------------
# weak guarantee
# ---------------------------------------------------------------------------

def test_weak_guarantee_accepts_members_of_any_window_state():
    trace = simple_trace([
        (frozenset(), Yielded(A), {A}),
        (frozenset({A}), Yielded(B), {B}),    # A was removed, B added
        (frozenset({A, B}), Returned(), {B}),
    ])
    history = [(0.0, frozenset({A})), (0.9, frozenset({B}))]
    assert weak_guarantee_violations(trace, history) == []


def test_weak_guarantee_flags_never_members():
    ghost = elem("never-a-member")
    trace = simple_trace([
        (frozenset(), Yielded(ghost), {A}),
        (frozenset({ghost}), Returned(), {A}),
    ])
    history = [(0.0, frozenset({A}))]
    problems = weak_guarantee_violations(trace, history)
    assert len(problems) == 1
    assert "never a member" in problems[0]


def test_weak_guarantee_empty_trace():
    trace = IterationTrace(coll_id="c", client="client")
    assert weak_guarantee_violations(trace, []) == []


# ---------------------------------------------------------------------------
# explicit-history checking (no world required)
# ---------------------------------------------------------------------------

def test_check_conformance_with_explicit_history():
    trace = simple_trace([
        (frozenset(), Yielded(A), {A, B}),
        (frozenset({A}), Yielded(B), {A, B}),
        (frozenset({A, B}), Returned(), {A, B}),
    ])
    history = [(0.0, frozenset({A, B}))]
    report = check_conformance(trace, spec_by_id("fig3"), history=history)
    assert report.conformant, report.counterexample()


def test_check_conformance_requires_world_or_history():
    trace = simple_trace([])
    with pytest.raises(ValueError):
        check_conformance(trace, spec_by_id("fig6"))


def test_returning_early_violates_fig6():
    trace = simple_trace([
        (frozenset(), Yielded(A), {A, B}),
        (frozenset({A}), Returned(), {A, B}),   # B never yielded!
    ])
    history = [(0.0, frozenset({A, B}))]
    report = check_conformance(trace, spec_by_id("fig6"), history=history)
    assert not report.conformant
    assert any("returns" in str(v) or "suspends" in str(v)
               for v in report.ensures_violations)


def test_failing_violates_fig6_but_not_fig5():
    from repro.spec import Failed
    trace = simple_trace([
        (frozenset(), Yielded(A), {A, B}),
        # B exists but is unreachable (reach nodes exclude its home)...
    ])
    trace.invocations.append(InvocationRecord(
        index=1, t_invoke=1.0, t_complete=1.5,
        yielded_pre=frozenset({A}), yielded_post=frozenset({A}),
        outcome=Failed("pessimism"),
        snapshots=(StateSnapshot(time=1.0, members=frozenset({A, B}),
                                 reachable_nodes=frozenset({"client"})),),
    ))
    history = [(0.0, frozenset({A, B}))]
    fig5 = check_conformance(trace, spec_by_id("fig5"), history=history)
    assert fig5.conformant, fig5.counterexample()
    fig6 = check_conformance(trace, spec_by_id("fig6"), history=history)
    assert not fig6.conformant


# ---------------------------------------------------------------------------
# counterexample minimization
# ---------------------------------------------------------------------------

def test_minimal_prefix_of_conformant_trace_is_none():
    from repro.spec import minimal_violating_prefix
    trace = simple_trace([
        (frozenset(), Yielded(A), {A}),
        (frozenset({A}), Returned(), {A}),
    ])
    history = [(0.0, frozenset({A}))]
    assert minimal_violating_prefix(trace, spec_by_id("fig6"), history) is None


def test_minimal_prefix_finds_first_bad_invocation():
    from repro.spec import minimal_violating_prefix
    # invocation 1 returns early (B unyielded) — the violation; the
    # trailing invocations are noise the minimizer should drop
    trace = simple_trace([
        (frozenset(), Yielded(A), {A, B}),
        (frozenset({A}), Returned(), {A, B}),
    ])
    history = [(0.0, frozenset({A, B}))]
    minimal = minimal_violating_prefix(trace, spec_by_id("fig6"), history)
    assert minimal is not None
    assert len(minimal.invocations) == 2


def test_minimal_prefix_shrinks_long_traces():
    from repro.spec import Failed, minimal_violating_prefix
    # a fig6-forbidden failure at index 1, followed by junk that the
    # structural checker would also flag — minimization cuts it all off
    trace = simple_trace([
        (frozenset(), Yielded(A), {A, B}),
    ])
    trace.invocations.append(InvocationRecord(
        index=1, t_invoke=1.0, t_complete=1.5,
        yielded_pre=frozenset({A}), yielded_post=frozenset({A}),
        outcome=Failed("boom"), snapshots=(snapshot(1.0, {A, B}),),
    ))
    trace.invocations.append(InvocationRecord(
        index=2, t_invoke=2.0, t_complete=2.5,
        yielded_pre=frozenset({A}), yielded_post=frozenset({A, B}),
        outcome=Yielded(B), snapshots=(snapshot(2.0, {A, B}),),
    ))
    history = [(0.0, frozenset({A, B}))]
    minimal = minimal_violating_prefix(trace, spec_by_id("fig6"), history)
    assert minimal is not None
    assert len(minimal.invocations) == 2          # up to the failure only
    from repro.spec import check_conformance as cc
    assert not cc(minimal, spec_by_id("fig6"), history=history).conformant
