"""Tests for the distributed file system and path handling."""

import pytest

from repro.errors import FileSystemError, NoSuchPathError, NotADirectoryError_
from repro.dynsets import FileMeta, FileSystem, namespace as ns
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.store import World


# ---------------------------------------------------------------------------
# namespace
# ---------------------------------------------------------------------------

def test_normalize():
    assert ns.normalize("/a/b/") == "/a/b"
    assert ns.normalize("/") == "/"
    assert ns.normalize("//a///b") == "/a/b"


def test_normalize_rejects_relative_and_dots():
    with pytest.raises(FileSystemError):
        ns.normalize("a/b")
    with pytest.raises(FileSystemError):
        ns.normalize("/a/../b")
    with pytest.raises(FileSystemError):
        ns.normalize("")


def test_split_join_parent_basename():
    assert ns.split("/a/b") == ("/a", "b")
    assert ns.split("/a") == ("/", "a")
    assert ns.split("/") == ("/", "")
    assert ns.join("/a", "b", "c") == "/a/b/c"
    assert ns.parent("/a/b/c") == "/a/b"
    assert ns.basename("/a/b/c") == "c"
    with pytest.raises(FileSystemError):
        ns.join("/a", "b/c")


def test_components():
    assert ns.components("/a/b/c") == ["a", "b", "c"]
    assert ns.components("/") == []


# ---------------------------------------------------------------------------
# file system
# ---------------------------------------------------------------------------

def make_fs(nodes=("root", "n1", "n2")):
    kernel = Kernel()
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net)
    fs = FileSystem(world, root_node="root")
    return kernel, net, world, fs


def test_mkdir_and_create_file():
    kernel, net, world, fs = make_fs()
    fs.mkdir("/home", node="n1")
    fs.create_file("/home/readme.txt", content="hello", home="n2")
    assert fs.is_dir("/home")
    assert not fs.is_dir("/home/readme.txt")
    entry = fs.entry("/home/readme.txt")
    assert entry.home == "n2"
    truth = fs.listdir_truth("/home")
    assert {e.name for e in truth} == {"readme.txt"}


def test_directory_entry_appears_in_parent():
    kernel, net, world, fs = make_fs()
    fs.mkdir("/home", node="n1")
    fs.mkdir("/home/alice", node="n2")
    names = {e.name for e in fs.listdir_truth("/home")}
    assert names == {"alice"}
    # the subdirectory entry's data object lives on the subdir's home
    assert fs.entry("/home/alice").home == "n2"


def test_directory_defaults_to_parent_home():
    kernel, net, world, fs = make_fs()
    fs.mkdir("/var", node="n1")
    fs.mkdir("/var/log")        # inherits n1
    assert fs.dir_home("/var/log") == "n1"


def test_duplicate_paths_rejected():
    kernel, net, world, fs = make_fs()
    fs.mkdir("/a")
    with pytest.raises(FileSystemError):
        fs.mkdir("/a")
    fs.create_file("/a/f", content="x")
    with pytest.raises(FileSystemError):
        fs.create_file("/a/f")


def test_missing_parent_rejected():
    kernel, net, world, fs = make_fs()
    with pytest.raises(NoSuchPathError):
        fs.mkdir("/no/such/place")
    with pytest.raises(NoSuchPathError):
        fs.create_file("/nowhere/f")


def test_file_is_not_a_directory():
    kernel, net, world, fs = make_fs()
    fs.create_file("/f", content="x")
    with pytest.raises(NotADirectoryError_):
        fs.create_file("/f/child")


def test_file_meta_values():
    kernel, net, world, fs = make_fs()
    fs.create_file("/data", content={"k": 1}, size=1024)
    meta_elements = fs.listdir_truth("/")
    assert len(meta_elements) == 1
    # fetch the meta through the store
    server = world.server(fs.entry("/data").home)
    stored = server.objects[fs.entry("/data").oid]
    assert isinstance(stored.value, FileMeta)
    assert stored.value.kind == "file"
    assert stored.value.content == {"k": 1}
    assert stored.size == 1024
