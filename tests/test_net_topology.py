"""Tests for topology construction, routing, and latency models."""

import pytest

from repro.errors import SimulationError
from repro.net import (
    FixedLatency,
    ParetoLatency,
    Topology,
    UniformLatency,
    full_mesh,
    line,
    star,
    wan_clusters,
)
from repro.sim.rng import RandomRouter


def test_add_node_and_link():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    link = t.add_link("a", "b", FixedLatency(0.05))
    assert t.link_between("a", "b") is link
    assert t.link_between("b", "a") is link
    assert t.neighbors("a") == {"b"}


def test_duplicate_node_rejected():
    t = Topology()
    t.add_node("a")
    with pytest.raises(SimulationError):
        t.add_node("a")


def test_self_link_rejected():
    t = Topology()
    t.add_node("a")
    with pytest.raises(SimulationError):
        t.add_link("a", "a")


def test_duplicate_link_rejected_both_directions():
    t = Topology()
    t.add_node("a")
    t.add_node("b")
    t.add_link("a", "b")
    with pytest.raises(SimulationError):
        t.add_link("b", "a")


def test_route_direct_and_multihop():
    t = line(["a", "b", "c"], FixedLatency(0.01))
    assert len(t.route("a", "b")) == 1
    assert len(t.route("a", "c")) == 2
    assert t.expected_latency("a", "c") == pytest.approx(0.02)


def test_route_to_self_is_empty():
    t = line(["a", "b"])
    assert t.route("a", "a") == []
    assert t.expected_latency("a", "a") == 0.0


def test_route_prefers_lower_latency_path():
    t = Topology()
    for n in ["a", "b", "c"]:
        t.add_node(n)
    t.add_link("a", "c", FixedLatency(1.0))       # direct but slow
    t.add_link("a", "b", FixedLatency(0.1))
    t.add_link("b", "c", FixedLatency(0.1))       # two hops but fast
    path = t.route("a", "c")
    assert len(path) == 2
    assert t.expected_latency("a", "c") == pytest.approx(0.2)


def test_link_down_cuts_route():
    t = line(["a", "b", "c"])
    t.set_link_up("a", "b", False)
    assert t.route("a", "c") is None
    assert not t.connected("a", "c")
    t.set_link_up("a", "b", True)
    assert t.connected("a", "c")


def test_down_intermediate_node_cuts_route():
    t = line(["a", "b", "c"])
    t.set_node_up("b", False)
    assert t.route("a", "c") is None
    # a<->b link also unusable because b itself is down
    assert t.route("a", "b") is None


def test_route_cache_invalidated_on_change():
    t = line(["a", "b", "c"])
    assert t.connected("a", "c")
    t.set_link_up("b", "c", False)
    assert not t.connected("a", "c")


def test_full_mesh_builder():
    t = full_mesh(["a", "b", "c", "d"], FixedLatency(0.01))
    assert len(t.links()) == 6
    assert all(len(t.route(a, b)) == 1 for a in "abcd" for b in "abcd" if a != b)


def test_star_builder():
    t = star("hub", ["l1", "l2", "l3"])
    assert len(t.links()) == 3
    assert len(t.route("l1", "l2")) == 2  # via hub


def test_wan_clusters_builder():
    t = wan_clusters([3, 3], FixedLatency(0.001), FixedLatency(0.1))
    assert len(t.nodes()) == 6
    # intra-cluster is fast, inter-cluster is slow
    assert t.expected_latency("n0.1", "n0.2") == pytest.approx(0.001)
    assert t.expected_latency("n0.1", "n1.1") >= 0.1


def test_fixed_latency_model():
    m = FixedLatency(0.05)
    assert m.sample(None) == 0.05
    assert m.expected() == 0.05
    with pytest.raises(SimulationError):
        FixedLatency(-0.1)


def test_uniform_latency_model():
    s = RandomRouter(1).stream("lat")
    m = UniformLatency(0.01, 0.03)
    assert m.expected() == pytest.approx(0.02)
    for _ in range(50):
        assert 0.01 <= m.sample(s) <= 0.03
    with pytest.raises(SimulationError):
        UniformLatency(0.03, 0.01)


def test_pareto_latency_model():
    s = RandomRouter(2).stream("lat")
    m = ParetoLatency(0.05, alpha=2.5)
    assert m.expected() == pytest.approx(0.05 * 2.5 / 1.5)
    for _ in range(50):
        assert m.sample(s) >= 0.05
    with pytest.raises(SimulationError):
        ParetoLatency(0.05, alpha=1.0)


def test_unknown_endpoint_raises():
    t = line(["a", "b"])
    with pytest.raises(SimulationError):
        t.route("a", "zzz")


def test_ring_builder():
    from repro.net import ring
    t = ring(["a", "b", "c", "d"], FixedLatency(0.01))
    assert len(t.links()) == 4
    # one cut: still connected the long way
    t.set_link_up("a", "b", False)
    assert t.connected("a", "b")
    assert len(t.route("a", "b")) == 3
    # two cuts: partitioned
    t.set_link_up("c", "d", False)
    assert not t.connected("b", "d") or not t.connected("a", "c")


def test_ring_needs_three_nodes():
    from repro.net import ring
    with pytest.raises(SimulationError):
        ring(["a", "b"])


def test_random_graph_connected_and_deterministic():
    from repro.net import random_graph
    from repro.sim.rng import RandomRouter

    def build(seed):
        stream = RandomRouter(seed).stream("topo")
        return random_graph([f"n{i}" for i in range(10)], stream,
                            edge_probability=0.2)

    t1, t2 = build(4), build(4)
    pairs1 = {frozenset((lk.a, lk.b)) for lk in t1.links()}
    pairs2 = {frozenset((lk.a, lk.b)) for lk in t2.links()}
    assert pairs1 == pairs2                         # deterministic
    for i in range(1, 10):
        assert t1.connected("n0", f"n{i}")          # patched connected
    t3 = build(5)
    pairs3 = {frozenset((lk.a, lk.b)) for lk in t3.links()}
    assert pairs1 != pairs3                         # seed-sensitive


def test_random_graph_without_patching_may_disconnect():
    from repro.net import random_graph
    from repro.sim.rng import RandomRouter

    stream = RandomRouter(1).stream("topo")
    t = random_graph([f"n{i}" for i in range(12)], stream,
                     edge_probability=0.05, ensure_connected=False)
    # with p=0.05 on 12 nodes some pair is almost surely disconnected
    disconnected = any(
        not t.connected("n0", f"n{i}") for i in range(1, 12)
    )
    assert disconnected
