"""FunctionalSet: Figure 1's immutable set value, against Python sets."""

from hypothesis import given, strategies as st

from repro.spec import FunctionalSet

ints = st.integers(min_value=-50, max_value=50)


def test_create_is_empty():
    s = FunctionalSet.create()
    assert s.size() == 0
    assert list(s.elements()) == []


def test_add_returns_new_object():
    s = FunctionalSet.create()
    t = s.add(1)
    assert t is not s                      # new(t)
    assert s.size() == 0                   # s_pre unchanged (immutability)
    assert t.members() == frozenset({1})   # t_post = s_pre ∪ {e}


def test_remove_returns_new_object():
    s = FunctionalSet.create().add(1).add(2)
    t = s.remove(1)
    assert t is not s
    assert s.members() == frozenset({1, 2})
    assert t.members() == frozenset({2})


def test_remove_absent_element_is_identity_value():
    s = FunctionalSet.create().add(1)
    t = s.remove(99)
    assert t == s and t is not s


def test_elements_yields_each_exactly_once():
    s = FunctionalSet([3, 1, 2])
    out = list(s.elements())
    assert sorted(out) == [1, 2, 3]
    assert len(out) == len(set(out))


def test_equality_and_hash_are_value_based():
    a = FunctionalSet([1, 2])
    b = FunctionalSet.create().add(2).add(1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != FunctionalSet([1])


def test_contains_len_iter():
    s = FunctionalSet("abc")
    assert "a" in s and "z" not in s
    assert len(s) == 3
    assert set(iter(s)) == {"a", "b", "c"}


@given(st.lists(ints), ints)
def test_add_matches_python_set(items, e):
    """t_post = s_pre ∪ {e}"""
    s = FunctionalSet(items)
    assert s.add(e).members() == frozenset(items) | {e}


@given(st.lists(ints), ints)
def test_remove_matches_python_set(items, e):
    """t_post = s_pre − {e}"""
    s = FunctionalSet(items)
    assert s.remove(e).members() == frozenset(items) - {e}


@given(st.lists(ints))
def test_size_matches_python_set(items):
    """i = |s_pre|"""
    assert FunctionalSet(items).size() == len(set(items))


@given(st.lists(ints))
def test_elements_is_exact_and_duplicate_free(items):
    out = list(FunctionalSet(items).elements())
    assert len(out) == len(set(out))
    assert set(out) == set(items)


@given(st.lists(st.tuples(st.sampled_from(["add", "remove"]), ints)))
def test_operation_sequences_match_python_sets(ops):
    """Any program over FunctionalSet agrees with the math model."""
    s = FunctionalSet.create()
    model: set[int] = set()
    for op, e in ops:
        if op == "add":
            s = s.add(e)
            model.add(e)
        else:
            s = s.remove(e)
            model.discard(e)
        assert s.members() == frozenset(model)
        assert s.size() == len(model)
