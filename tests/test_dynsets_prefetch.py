"""Tests for the prefetch engine and the setOpen/setIterate/setClose API."""


from repro.dynsets import PrefetchEngine, set_open
from repro.net import FixedLatency, Network, wan_clusters
from repro.sim import Kernel, Sleep
from repro.store import Repository, World

from helpers import CLIENT, standard_world


def test_prefetch_fetches_everything():
    kernel, net, world, elements = standard_world(members=8)
    repo = Repository(world, CLIENT)
    engine = PrefetchEngine(repo, elements, parallelism=4)
    engine.start()

    def consume():
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out
            out.append(r)

    results = kernel.run_process(consume())
    assert len(results) == len(elements)
    assert all(r.ok for r in results)
    assert {r.element for r in results} == set(elements)


def test_parallelism_speeds_up_fetching():
    def run(parallelism):
        kernel, net, world, elements = standard_world(
            members=12, service_time=0.05)
        repo = Repository(world, CLIENT)
        engine = PrefetchEngine(repo, elements, parallelism=parallelism)
        engine.start()

        def consume():
            while True:
                r = yield from engine.next_result()
                if r is None:
                    return kernel.now

        return kernel.run_process(consume())

    sequential = run(1)
    parallel = run(6)
    assert parallel < sequential / 2  # near-linear speedup at this scale


def test_closest_first_ordering():
    kernel = Kernel()
    topo = wan_clusters([3, 3], FixedLatency(0.002), FixedLatency(0.3))
    net = Network(kernel, topo)
    world = World(net)
    world.create_collection("c", primary="n0.0")
    near = world.seed_member("c", "near", value=1, home="n0.1")
    far = world.seed_member("c", "far", value=2, home="n1.1")
    repo = Repository(world, "n0.2")
    engine = PrefetchEngine(repo, [far, near], parallelism=1)
    engine.start()

    def consume():
        first = yield from engine.next_result()
        second = yield from engine.next_result()
        return first.element, second.element

    first, second = kernel.run_process(consume())
    assert first == near and second == far


def test_retry_recovers_after_heal():
    kernel, net, world, elements = standard_world(n_servers=3, members=6)
    net.isolate("s1")
    repo = Repository(world, CLIENT)
    engine = PrefetchEngine(repo, elements, parallelism=3, retry_interval=0.2)
    engine.start()

    def healer():
        yield Sleep(2.0)
        net.heal()

    def consume():
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out
            out.append(r)

    kernel.spawn(healer(), daemon=True)
    results = kernel.run_process(consume())
    assert all(r.ok for r in results)
    assert len(results) == 6
    assert engine.retries > 0


def test_give_up_reports_unreachable():
    kernel, net, world, elements = standard_world(n_servers=3, members=6)
    net.crash("s1")
    repo = Repository(world, CLIENT)
    engine = PrefetchEngine(repo, elements, parallelism=3,
                            retry_interval=0.2, give_up_after=1.5)
    engine.start()

    def consume():
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out
            out.append(r)

    results = kernel.run_process(consume())
    assert len(results) == 6
    ok = [r for r in results if r.ok]
    gave_up = [r for r in results if r.gave_up]
    assert {r.element.home for r in gave_up} == {"s1"}
    assert len(ok) == 4


def test_skipped_for_removed_members():
    kernel, net, world, elements = standard_world(members=4)
    repo = Repository(world, CLIENT)

    def proc():
        # remove one member, then prefetch from the (now stale) list
        yield from repo.remove("coll", elements[0])
        engine = PrefetchEngine(repo, elements, parallelism=2)
        engine.start()
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out, engine
            out.append(r)

    results, engine = kernel.run_process(proc())
    skipped = [r for r in results if r.skipped]
    assert [r.element for r in skipped] == [elements[0]]
    assert engine.skipped == 1


# ---------------------------------------------------------------------------
# setOpen / setIterate / setClose
# ---------------------------------------------------------------------------

def test_set_open_iterate_close():
    kernel, net, world, elements = standard_world(members=5)

    def proc():
        handle = yield from set_open(world, CLIENT, "coll", parallelism=3)
        got = yield from handle.iterate_all()
        handle.close()
        return handle, got

    handle, got = kernel.run_process(proc())
    assert {r.element for r in got} == set(elements)
    assert handle.time_to_first is not None
    assert handle.time_to_first < 0.2


def test_early_close_stops_workers():
    kernel, net, world, elements = standard_world(members=20, service_time=0.05)

    def proc():
        handle = yield from set_open(world, CLIENT, "coll", parallelism=2)
        first_three = yield from handle.iterate_all(limit=3)
        handle.close()   # user found what they wanted
        return len(first_three), kernel.now

    count, t = kernel.run_process(proc())
    assert count == 3
    # closing early means we did not pay for all 20 fetches
    assert t < 1.0


def test_iterate_after_close_is_error():
    from repro.errors import SimulationError
    kernel, net, world, elements = standard_world(members=2)

    def proc():
        handle = yield from set_open(world, CLIENT, "coll")
        handle.close()
        try:
            yield from handle.iterate()
        except SimulationError:
            return "rejected"

    assert kernel.run_process(proc()) == "rejected"


def test_streaming_first_result_before_total_completion():
    kernel, net, world, elements = standard_world(members=10, service_time=0.05)

    def proc():
        handle = yield from set_open(world, CLIENT, "coll", parallelism=2)
        yield from handle.iterate()
        t_first = kernel.now
        rest = yield from handle.iterate_all()
        return t_first, kernel.now, 1 + len(rest)

    t_first, t_all, count = kernel.run_process(proc())
    assert count == 10
    assert t_first < t_all / 2.5   # partial info well before completion


def test_priority_hint_overrides_ordering():
    """Application hints (Steere's profiles): fetch by custom key."""
    kernel, net, world, elements = standard_world(members=6)
    repo = Repository(world, CLIENT)
    # hint: reverse-alphabetical
    engine = PrefetchEngine(repo, elements, parallelism=1,
                            priority=lambda e: tuple(-ord(c) for c in e.name))
    engine.start()

    def consume():
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out
            out.append(r.element.name)

    names = kernel.run_process(consume())
    assert names == sorted(names, reverse=True)


def test_priority_hint_smallest_first():
    kernel, net, world, _ = standard_world(members=0, bandwidth=100_000.0)
    sizes = {}
    elements = []
    for i, size in enumerate([50_000, 1_000, 20_000]):
        e = world.seed_member("coll", f"f{i}", value=f"v{i}", home="s1",
                              size=size)
        sizes[e.oid] = size
        elements.append(e)
    repo = Repository(world, CLIENT)
    engine = PrefetchEngine(repo, elements, parallelism=1,
                            priority=lambda e: sizes[e.oid])
    engine.start()

    def consume():
        out = []
        while True:
            r = yield from engine.next_result()
            if r is None:
                return out
            out.append(sizes[r.element.oid])

    order = kernel.run_process(consume())
    assert order == sorted(order)   # smallest first => fastest first yield
