"""JSONL export round-trip: metrics and spans survive the file layer."""

import json

import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    export_jsonl,
    metrics_from_records,
    read_jsonl,
    spans_from_records,
)
from repro.sim.clock import Clock


def populated():
    clock = Clock()
    registry = MetricsRegistry()
    registry.counter("rpc.attempts").inc(7)
    registry.gauge("kernel.queue_depth").set(3)
    hist = registry.histogram("rpc.attempt_latency", bounds=(0.1, 1.0))
    for v in (0.05, 0.5, 2.0):
        hist.observe(v)
    tracer = Tracer(clock)
    outer = tracer.start("drain", impl="DynamicSet")
    clock.advance_to(0.25)
    inner = tracer.start("rpc.attempt", dst="s1")
    clock.advance_to(0.75)
    tracer.finish(inner, outcome="ok")
    clock.advance_to(1.5)
    tracer.finish(outer, outcome="Returned")
    return registry, tracer


def test_export_writes_meta_header_first(tmp_path):
    registry, tracer = populated()
    path = tmp_path / "trace.jsonl"
    n = export_jsonl(path, metrics=registry, tracer=tracer,
                     meta={"seed": 42})
    records = read_jsonl(path)
    assert len(records) == n == 1 + 3 + 2       # meta + metrics + spans
    assert records[0]["type"] == "meta"
    assert records[0]["schema"] == "repro.obs/1"
    assert records[0]["seed"] == 42
    # every line is standalone JSON (the greppable-artifact property)
    for line in path.read_text().splitlines():
        json.loads(line)


def test_metrics_round_trip(tmp_path):
    registry, tracer = populated()
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, metrics=registry)
    rebuilt = metrics_from_records(read_jsonl(path))
    assert rebuilt.value("rpc.attempts") == 7
    assert rebuilt.value("kernel.queue_depth") == 3
    hist = rebuilt.get("rpc.attempt_latency")
    assert isinstance(hist, Histogram)
    original = registry.get("rpc.attempt_latency")
    assert hist.counts == original.counts == [1, 1, 1]
    assert hist.bounds == original.bounds
    assert hist.count == 3 and hist.total == original.total
    assert (hist.vmin, hist.vmax) == (0.05, 2.0)
    assert hist.quantile(0.95) == original.quantile(0.95)
    # the round-trip is a fixed point: exporting again yields equal records
    assert rebuilt.snapshot() == registry.snapshot()


def test_spans_round_trip(tmp_path):
    registry, tracer = populated()
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, tracer=tracer)
    spans = spans_from_records(read_jsonl(path))
    assert [s.name for s in spans] == ["drain", "rpc.attempt"]
    drain, attempt = spans
    assert attempt.parent_id == drain.span_id   # nesting survives
    assert (drain.start, drain.end) == (0.0, 1.5)
    assert (attempt.start, attempt.end) == (0.25, 0.75)
    assert attempt.attrs == {"dst": "s1", "outcome": "ok"}
    assert drain.attrs["impl"] == "DynamicSet"


def test_unfinished_spans_export_with_null_end(tmp_path):
    clock = Clock()
    tracer = Tracer(clock)
    tracer.start("open.work")
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, tracer=tracer)
    (span,) = spans_from_records(read_jsonl(path))
    assert span.end is None and not span.finished


def test_dropped_spans_are_reported_in_meta(tmp_path):
    clock = Clock()
    tracer = Tracer(clock, max_spans=1)
    tracer.start("kept")
    tracer.start("dropped")
    path = tmp_path / "trace.jsonl"
    export_jsonl(path, tracer=tracer)
    records = read_jsonl(path)
    assert records[0]["spans_dropped"] == 1
    assert len(spans_from_records(records)) == 1


def test_reader_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    path.write_text('{"type": "meta", "schema": "repro.obs/1"}\n\n'
                    '{"type": "metric", "kind": "counter", "name": "c", "value": 1}\n')
    records = read_jsonl(path)
    assert len(records) == 2
    assert metrics_from_records(records).value("c") == 1


def test_unknown_metric_kind_raises():
    with pytest.raises(ValueError):
        metrics_from_records(
            [{"type": "metric", "kind": "mystery", "name": "x"}])


def test_export_creates_parent_directories(tmp_path):
    registry, tracer = populated()
    path = tmp_path / "deep" / "nested" / "trace.jsonl"
    export_jsonl(path, metrics=registry)
    assert path.exists()
