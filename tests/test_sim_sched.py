"""Scheduler equivalence: the timer wheel is observably the heap.

The kernel's contract is strict ``(time, seq)`` event order.  The
timer-wheel scheduler reorganises storage (slots, lazy stable sorts,
batch draining) but must never reorganise *observable order*.  These
tests are differential: the same randomized schedule runs under the
heap scheduler, the wheel scheduler, and the frozen seed kernel
(:mod:`repro.sim._seed_kernel`), and every observable — execution
order, timestamps, trace records, final RNG draws — must be identical.

The randomized programs deliberately cover the wheel's hard cases:
same-instant ties (batch dispatch), cancellations (lazy removal),
far-future and infinite timers (the clamped far slot), zero-delay
chains (live-batch appends), and ``run(until=...)`` splits that leave
a slot half-drained (the shelve-active-tail path).
"""

import math
import random

import pytest

from repro.errors import SimulationError
from repro.sim import (
    Fork,
    HeapScheduler,
    Join,
    Kernel,
    Now,
    Signal,
    Sleep,
    Wait,
    WheelScheduler,
    make_scheduler,
)
from repro.sim._seed_kernel import Kernel as SeedKernel
from repro.sim.sched import _Scheduled


# ---------------------------------------------------------------------------
# differential determinism: randomized programs, identical observables
# ---------------------------------------------------------------------------

def _random_program(kernel, rng_seed: int, log: list):
    """Build a randomized but deterministic workload on ``kernel``.

    All randomness comes from a ``random.Random(rng_seed)`` *outside*
    the kernel, so the same script is replayed on every kernel variant.
    Appends ``(now, tag)`` tuples to ``log`` at every step.
    """
    rng = random.Random(rng_seed)
    gate = Signal(name="gate")

    def worker(wid: int, steps: int):
        for s in range(steps):
            roll = rng.random()
            if roll < 0.45:
                # Quantized durations force same-instant ties across
                # workers; exact floats keep schedules reproducible.
                yield Sleep(rng.choice([0.0, 0.001, 0.001, 0.005, 0.02]))
            elif roll < 0.6:
                yield Sleep(rng.random() * 0.03)
            elif roll < 0.7:
                now = yield Now()
                log.append((now, f"w{wid}.now{s}"))
                continue
            elif roll < 0.8:
                child = yield Fork(sleeper(rng.random() * 0.01),
                                   name=f"w{wid}.c{s}")
                yield Join(child)
            elif roll < 0.9:
                try:
                    yield Wait(gate, timeout=rng.choice([0.002, 0.05]))
                except Exception:
                    pass
            else:
                # Far-future timer that run() never reaches — exercises
                # the wheel's clamped far slot staying pending.
                cancel = kernel.call_soon(lambda: log.append(("far", wid)),
                                          delay=rng.choice([1e6, math.inf]))
                cancel()
            log.append((kernel.now, f"w{wid}.s{s}"))

    def sleeper(duration: float):
        yield Sleep(duration)
        return duration

    def firer():
        yield Sleep(0.013)
        gate.fire("open")
        log.append((kernel.now, "gate-fired"))

    for wid in range(6):
        kernel.spawn(worker(wid, 12), name=f"w{wid}")
    kernel.spawn(firer(), name="firer")
    # Zero-delay chains: callbacks that schedule more callbacks at the
    # same instant (live-batch appends must keep seq order).
    def chain(depth: int):
        log.append((kernel.now, f"chain{depth}"))
        if depth:
            kernel.call_soon(lambda: chain(depth - 1))
    kernel.call_soon(lambda: chain(3), delay=0.004)
    # A cancelled timer that would otherwise land mid-run.
    cancel = kernel.call_soon(lambda: log.append((kernel.now, "cancelled!")),
                              delay=0.006)
    cancel()


def _observe(kernel_factory, rng_seed: int, split: float = None):
    kernel = kernel_factory()
    log = []
    _random_program(kernel, rng_seed, log)
    if split is not None:
        # Stop mid-schedule (possibly mid-slot), then resume: the wheel
        # must shelve its half-drained slot correctly.
        kernel.run(until=split)
        log.append((kernel.now, "--split--"))
    kernel.run()
    draws = kernel.stream("after").random()
    return log, kernel.now, draws


@pytest.mark.parametrize("rng_seed", range(8))
def test_wheel_matches_heap_on_randomized_schedules(rng_seed):
    heap_obs = _observe(lambda: Kernel(seed=3, scheduler="heap"), rng_seed)
    wheel_obs = _observe(lambda: Kernel(seed=3, scheduler="wheel"), rng_seed)
    assert heap_obs == wheel_obs


@pytest.mark.parametrize("rng_seed", range(4))
def test_new_kernel_matches_frozen_seed_kernel(rng_seed):
    seed_obs = _observe(lambda: SeedKernel(seed=3), rng_seed)
    wheel_obs = _observe(lambda: Kernel(seed=3, scheduler="wheel"), rng_seed)
    assert seed_obs == wheel_obs


@pytest.mark.parametrize("rng_seed", range(4))
@pytest.mark.parametrize("split", [0.0105, 0.02])
def test_until_split_mid_slot_preserves_order(rng_seed, split):
    """run(until=...) then resume: identical to an uninterrupted run."""
    whole = _observe(lambda: Kernel(seed=3, scheduler="wheel"), rng_seed)
    parts = _observe(lambda: Kernel(seed=3, scheduler="wheel"), rng_seed,
                     split=split)
    # Drop the split marker; everything else must line up exactly.
    split_log = [e for e in parts[0] if e[1] != "--split--"]
    assert split_log == whole[0]
    assert parts[1] == whole[1]
    # And the split run still matches the heap run split the same way.
    heap_parts = _observe(lambda: Kernel(seed=3, scheduler="heap"), rng_seed,
                          split=split)
    assert parts == heap_parts


def test_traces_identical_across_schedulers():
    def observe(sched):
        kernel = Kernel(seed=9, trace=True, scheduler=sched)
        log = []
        _random_program(kernel, 42, log)
        kernel.run()
        return [(r.time, r.kind, tuple(sorted(r.fields.items())))
                for r in kernel.trace.records()]

    assert observe("heap") == observe("wheel")


# ---------------------------------------------------------------------------
# wheel mechanics: the hard cases, exercised directly
# ---------------------------------------------------------------------------

def _drain(sched):
    """Pop everything in dispatch order via the kernel protocol."""
    order = []
    batch = []
    while sched.peek_time() is not None:
        sched.pop_batch(batch)
        order.extend(batch)
        del batch[:]
    return order


def test_wheel_orders_ties_and_slots_like_heap():
    rng = random.Random(5)
    heap, wheel = HeapScheduler(), WheelScheduler()
    entries = []
    for seq in range(500):
        when = rng.choice([0.0, 0.001, 0.0010000001, 0.5, 7.25,
                           rng.random() * 3.0])
        entries.append(_Scheduled(when, seq, None))
    for e in entries:
        heap.push(e)
        wheel.push(_Scheduled(e.time, e.seq, None))
    assert [(e.time, e.seq) for e in _drain(heap)] == \
           [(e.time, e.seq) for e in _drain(wheel)]


def test_wheel_far_future_and_infinite_times_share_the_far_slot():
    wheel = WheelScheduler()
    near = _Scheduled(0.001, 0, None)
    far = _Scheduled(1e30, 1, None)
    farther = _Scheduled(math.inf, 2, None)
    far_low_seq_later_push = _Scheduled(1e29, 3, None)
    for e in (far, near, farther, far_low_seq_later_push):
        wheel.push(e)
    assert len(wheel) == 4
    got = _drain(wheel)
    assert [(e.time, e.seq) for e in got] == [
        (0.001, 0), (1e29, 3), (1e30, 1), (math.inf, 2)]


def test_wheel_cancellation_is_lazy_but_exact():
    wheel = WheelScheduler()
    entries = [_Scheduled(0.001 * i, i, None) for i in range(10)]
    for e in entries:
        wheel.push(e)
    entries[0].cancel()
    entries[5].cancel()
    entries[9].cancel()
    got = _drain(wheel)
    assert [e.seq for e in got] == [1, 2, 3, 4, 6, 7, 8]
    assert len(wheel) == 0


def test_wheel_requeue_into_active_slot_keeps_order():
    wheel = WheelScheduler()
    # Same instant: activate the slot, drain the batch, requeue part.
    entries = [_Scheduled(0.5, i, None) for i in range(6)]
    for e in entries:
        wheel.push(e)
    assert wheel.peek_time() == 0.5
    batch = []
    wheel.pop_batch(batch)
    assert [e.seq for e in batch] == [0, 1, 2, 3, 4, 5]
    wheel.requeue(batch[3:])                 # stop_when interrupted us
    wheel.push(_Scheduled(0.5, 6, None))     # and new work arrived
    assert wheel.peek_time() == 0.5
    batch2 = []
    wheel.pop_batch(batch2)
    assert [e.seq for e in batch2] == [3, 4, 5, 6]


def test_wheel_shelves_half_drained_slot_when_earlier_work_arrives():
    wheel = WheelScheduler(width=1.0)        # one big slot per second
    a = _Scheduled(10.25, 0, None)
    b = _Scheduled(10.75, 1, None)
    wheel.push(a)
    wheel.push(b)
    assert wheel.peek_time() == 10.25
    batch = []
    wheel.pop_batch(batch)                   # 10.25 consumed; 10.75 pending
    assert batch == [a]
    # Later work lands in an *earlier* slot (a run(until=10.3) resumed
    # with a shorter timer): the active tail must not mask it.
    c = _Scheduled(5.5, 2, None)
    wheel.push(c)
    assert wheel.peek_time() == 5.5
    batch2 = []
    wheel.pop_batch(batch2)
    assert batch2 == [c]
    assert wheel.peek_time() == 10.75
    batch3 = []
    wheel.pop_batch(batch3)
    assert batch3 == [b]
    assert wheel.peek_time() is None
    assert len(wheel) == 0


def test_make_scheduler_resolution():
    assert isinstance(make_scheduler(None), WheelScheduler)
    assert isinstance(make_scheduler("heap"), HeapScheduler)
    assert isinstance(make_scheduler("wheel"), WheelScheduler)
    custom = WheelScheduler(width=0.5)
    assert make_scheduler(custom) is custom
    with pytest.raises(SimulationError):
        make_scheduler("btree")
    with pytest.raises(SimulationError):
        WheelScheduler(width=0.0)


def test_kernel_scheduler_selection_and_env(monkeypatch):
    assert Kernel().scheduler_name == "wheel"
    assert Kernel(scheduler="heap").scheduler_name == "heap"
    monkeypatch.setenv("REPRO_SIM_SCHED", "heap")
    assert Kernel().scheduler_name == "heap"
    monkeypatch.setenv("REPRO_SIM_SCHED", "")
    assert Kernel().scheduler_name == "wheel"
