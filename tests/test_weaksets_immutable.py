"""ImmutableSet (Fig 3), Figure1Set (Fig 1), PerRunImmutableSet (§3.1)."""


from repro.errors import MutationNotAllowed
from repro.sim import Sleep
from repro.spec import Returned, check_conformance, spec_by_id
from repro.weaksets import Figure1Set, ImmutableSet, PerRunImmutableSet, StrongSet

from helpers import CLIENT, drain_all, standard_world


def immutable_world(**kwargs):
    kernel, net, world, elements = standard_world(policy="immutable", **kwargs)
    world.seal("coll")
    return kernel, net, world, elements


def test_iterates_sealed_collection():
    kernel, net, world, elements = immutable_world(members=5)
    ws = ImmutableSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert frozenset(result.elements) == frozenset(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert report.conformant, report.counterexample()


def test_conforms_to_fig3_under_transient_failures():
    kernel, net, world, elements = immutable_world(n_servers=3, members=6)
    ws = ImmutableSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        net.isolate("s1")                     # two members become unreachable
        mid = yield from iterator.drain(max_yields=3)
        net.rejoin("s1")                      # repaired: rest reachable again
        rest = yield from iterator.drain()
        return [first.element] + mid.elements + rest.elements, rest.outcome

    got, outcome = kernel.run_process(proc())
    assert isinstance(outcome, Returned)
    assert frozenset(got) == frozenset(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert report.conformant, report.counterexample()


def test_fails_when_members_permanently_unreachable():
    kernel, net, world, elements = immutable_world(n_servers=3, members=6)
    net.crash("s2")
    ws = ImmutableSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    report = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert report.conformant, report.counterexample()


def test_mutation_rejected_so_constraint_cannot_break():
    kernel, net, world, elements = immutable_world(members=2)
    ws = ImmutableSet(world, CLIENT, "coll")

    def proc():
        try:
            yield from ws.add("new")
        except MutationNotAllowed:
            return "rejected"

    assert kernel.run_process(proc()) == "rejected"
    # an iteration after the rejected mutation is fully conformant —
    # the set's value (post-seal) never changed
    drain_all(kernel, ws)
    report = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert report.conformant, report.counterexample()


# ---------------------------------------------------------------------------
# Figure 1 (failure-blind)
# ---------------------------------------------------------------------------

def test_fig1_conforms_in_failure_free_world():
    kernel, net, world, elements = immutable_world(members=5)
    ws = Figure1Set(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert frozenset(result.elements) == frozenset(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig1"), world)
    assert report.conformant, report.counterexample()
    # in a failure-free world it also conforms to fig3
    report3 = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert report3.conformant, report3.counterexample()


def test_fig1_iterator_yields_unreachable_elements_under_failures():
    """The deficiency that motivated `reachable`: Figure 1's iterator,
    blind to failures, happily yields elements nobody can access —
    violating Figure 3."""
    kernel, net, world, elements = immutable_world(n_servers=3, members=6)
    net.crash("s1")
    ws = Figure1Set(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert not result.failed
    assert frozenset(result.elements) == frozenset(elements)  # including s1's!
    report3 = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    assert not report3.conformant
    assert report3.ensures_violations


# ---------------------------------------------------------------------------
# §3.1 per-run immutability via read locks
# ---------------------------------------------------------------------------

def test_per_run_immutable_blocks_writers_during_run():
    kernel, net, world, elements = standard_world(members=4, with_locks=True)
    reader = PerRunImmutableSet(world, CLIENT, "coll")
    writer = StrongSet(world, "s2", "coll")
    iterator = reader.elements()
    events = []

    def read_side():
        first = yield from iterator.invoke()
        events.append(("yield", world.now))
        yield Sleep(2.0)                       # slow (human) consumer
        rest = yield from iterator.drain()
        events.append(("done", world.now))
        return [first.element] + rest.elements

    def write_side():
        yield Sleep(0.5)                       # arrive mid-run
        yield from writer.add("intruder", value="X")
        events.append(("write", world.now))

    read_proc = kernel.spawn(read_side())
    kernel.spawn(write_side())
    kernel.run(until=30.0)
    got = read_proc.result
    # the write landed only after the reader's run finished
    order = [kind for kind, _ in sorted(events, key=lambda ev: ev[1])]
    assert order == ["yield", "done", "write"]
    assert frozenset(got) == frozenset(elements)  # no intruder mid-run


def test_per_run_immutable_allows_mutation_between_runs():
    kernel, net, world, elements = standard_world(members=2, with_locks=True)
    ws = PerRunImmutableSet(world, CLIENT, "coll")
    r1 = drain_all(kernel, ws)

    def mutate():
        yield from ws.repo.add("coll", "between", value="B")

    kernel.run_process(mutate())
    r2 = drain_all(kernel, ws)
    assert len(r2.elements) == len(r1.elements) + 1
