"""CheckedProcedures: Figure 1's procedure post-conditions at runtime."""

import pytest

from repro.errors import SpecViolation
from repro.spec import CheckedProcedures
from repro.store import Repository

from helpers import CLIENT, standard_world


def make_checked(strict=False, **kwargs):
    kernel, net, world, elements = standard_world(**kwargs)
    repo = Repository(world, CLIENT)
    checked = CheckedProcedures(world=world, repo=repo, coll_id="coll",
                                strict=strict)
    return kernel, net, world, elements, checked


def test_add_post_condition_holds():
    kernel, net, world, elements, checked = make_checked(members=2)

    def proc():
        e = yield from checked.add("new", value="N")
        return e

    e = kernel.run_process(proc())
    assert checked.violations == []
    assert checked.checked_ops == 1
    assert e in world.true_members("coll")


def test_remove_post_condition_holds():
    kernel, net, world, elements, checked = make_checked(members=3)

    def proc():
        yield from checked.remove(elements[0])

    kernel.run_process(proc())
    assert checked.violations == []
    assert elements[0] not in world.true_members("coll")


def test_size_matches_cardinality():
    kernel, net, world, elements, checked = make_checked(members=5)

    def proc():
        return (yield from checked.size())

    assert kernel.run_process(proc()) == 5
    assert checked.violations == []


def test_interleaved_operations_all_clean():
    kernel, net, world, elements, checked = make_checked(members=2)

    def proc():
        added = []
        for i in range(5):
            added.append((yield from checked.add(f"n{i}", value=i)))
        for e in added[:2]:
            yield from checked.remove(e)
        return (yield from checked.size())

    size = kernel.run_process(proc())
    assert size == 2 + 5 - 2
    assert checked.violations == []
    assert checked.checked_ops == 8  # 5 adds + 2 removes + 1 size


def test_size_tolerates_concurrent_mutation():
    """size may report |s| at any state within its window."""
    kernel, net, world, elements, checked = make_checked(members=4)
    from repro.store import Repository
    other = Repository(world, "s2")

    def mutator():
        yield from other.add("coll", "concurrent", value="C")

    def proc():
        return (yield from checked.size())

    kernel.spawn(mutator())
    kernel.run_process(proc())
    assert checked.violations == []


def test_strict_mode_raises():
    kernel, net, world, elements, checked = make_checked(members=1, strict=True)
    # sabotage: pre-insert the element name bound for "add" by aliasing
    # ground truth — simplest honest violation trigger is a repo whose
    # add is a no-op; emulate by calling add for an existing name, which
    # the server rejects with MutationNotAllowed before any check fires.
    # Instead verify the strict flag via the internal _flag path:
    with pytest.raises(SpecViolation):
        checked._flag("add", "synthetic violation")


def test_violations_collected_in_lenient_mode():
    kernel, net, world, elements, checked = make_checked(members=1)
    checked._flag("remove", "synthetic violation")
    assert len(checked.violations) == 1
    assert "synthetic" in str(checked.violations[0])


def test_modifies_clause_frame_condition_clean():
    """Operations on one collection leave every other collection alone."""
    kernel, net, world, elements, checked = make_checked(members=2)
    world.create_collection("other", primary="s2")
    world.seed_member("other", "bystander", value="B")

    def proc():
        e = yield from checked.add("new", value="N")
        yield from checked.remove(e)

    kernel.run_process(proc())
    assert checked.violations == []


def test_modifies_clause_detects_sabotaged_frame():
    kernel, net, world, elements, checked = make_checked(members=2)
    world.create_collection("other", primary="s2")
    world.seed_member("other", "bystander", value="B")

    class SabotagingRepo:
        """A repo whose add also mutates an unlisted collection."""

        def __init__(self, inner):
            self.inner = inner

        def add(self, coll_id, name, value=None, home=None, size=0):
            element = yield from self.inner.add(coll_id, name, value, home, size)
            yield from self.inner.add("other", f"side-effect-{name}", value="!")
            return element

        def __getattr__(self, attr):
            return getattr(self.inner, attr)

    checked.repo = SabotagingRepo(checked.repo)

    def proc():
        yield from checked.add("new", value="N")

    kernel.run_process(proc())
    assert any("modifies clause" in str(v) for v in checked.violations)


def test_frame_checking_can_be_disabled():
    kernel, net, world, elements, checked = make_checked(members=1)
    checked.check_frame = False
    assert checked._frame_snapshot() == {}
