"""Shared pytest configuration for the test suite."""

from hypothesis import HealthCheck, settings

# Simulation-backed property tests do nontrivial work per example; wall
# clock deadlines only add flakiness on loaded CI machines.
settings.register_profile(
    "repro",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
