"""Hypothesis stateful testing: the store against a model set.

A rule-based state machine drives adds, removes, crashes, partitions,
and heals against one collection, mirroring every accepted mutation in
a plain Python set.  After every rule: ground truth equals the model,
and the world invariants hold.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.errors import FailureException, StoreError
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.store import Repository, World

NODES = ["client", "p", "s1", "s2"]


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.kernel = Kernel(seed=0)
        net = Network(self.kernel, full_mesh(NODES, FixedLatency(0.005)))
        self.net = net
        self.world = World(net, replica_lag=0.1)
        self.world.create_collection("c", primary="p", replicas=["s1"])
        self.repo = Repository(self.world, "client")
        self.model: set = set()
        self.elements: dict[str, object] = {}
        self.counter = 0

    # -- helpers ----------------------------------------------------------
    def _run(self, gen):
        try:
            return self.kernel.run_process(gen), True
        except (FailureException, StoreError):
            return None, False

    # -- rules ----------------------------------------------------------
    @rule(home=st.sampled_from(["p", "s1", "s2"]))
    def add(self, home):
        self.counter += 1
        name = f"m{self.counter}"

        def proc():
            return (yield from self.repo.add("c", name, value=name, home=home))

        element, ok = self._run(proc())
        if ok:
            self.model.add(name)
            self.elements[name] = element

    @rule(pick=st.integers(min_value=0, max_value=10_000))
    def remove(self, pick):
        if not self.model:
            return
        name = sorted(self.model)[pick % len(self.model)]
        element = self.elements[name]

        def proc():
            yield from self.repo.remove("c", element)

        _, ok = self._run(proc())
        if ok:
            self.model.discard(name)

    @rule(node=st.sampled_from(["s1", "s2"]))
    def crash(self, node):
        self.net.crash(node)

    @rule(node=st.sampled_from(["s1", "s2"]))
    def recover(self, node):
        self.net.recover(node)

    @rule(node=st.sampled_from(["s1", "s2"]))
    def isolate(self, node):
        self.net.isolate(node)

    @rule()
    def heal(self):
        self.net.heal()
        for node in ["s1", "s2"]:
            self.net.recover(node)
        # let anti-entropy settle
        self.kernel.run(until=self.kernel.now + 0.5)

    # -- invariants ----------------------------------------------------------
    @invariant()
    def truth_matches_model(self):
        truth = {e.name for e in self.world.true_members("c")}
        assert truth == self.model

    @invariant()
    def world_is_internally_consistent(self):
        assert self.world.check_invariants() == []


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None)
