"""StrongSet + LockService: the serializable baseline."""


from repro.errors import LockUnavailableFailure, TimeoutFailure
from repro.sim import Sleep
from repro.spec import Returned
from repro.weaksets import LockClient, StrongSet, install_lock_service
from repro.store import Repository

from helpers import CLIENT, PRIMARY, drain_all, standard_world


def test_strong_iteration_on_quiet_world():
    kernel, net, world, elements = standard_world(members=5, with_locks=True)
    ws = StrongSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert frozenset(result.elements) == frozenset(elements)
    assert isinstance(result.outcome, Returned)


def test_strong_aborts_on_any_unreachable_member():
    kernel, net, world, elements = standard_world(
        n_servers=3, members=6, with_locks=True)
    net.isolate("s1")
    ws = StrongSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    assert result.elements == []          # all-or-nothing


def test_time_to_first_element_is_whole_prefetch():
    """The strong baseline cannot stream: first yield waits for all."""
    kernel, net, world, elements = standard_world(members=10, with_locks=True)
    ws = StrongSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    # every fetch happened before the first yield: the time to first
    # element dominates the run (only the post-yield bookkeeping —
    # in-memory yields plus the final Returned invocation — follows it)
    assert result.time_to_first > 0.85 * result.total_time

    from repro.weaksets import DynamicSet
    kernel2, net2, world2, _ = standard_world(members=10)
    dyn = DynamicSet(world2, CLIENT, "coll")
    dyn_result = drain_all(kernel2, dyn)
    # whereas the weak iterator streams: first element arrives early
    # (the batched pipeline also shrinks the *total* drain, so the
    # ratio is looser than in the serial-read days — the absolute
    # comparison against the strong baseline below is the sharp one)
    assert dyn_result.time_to_first < 0.5 * dyn_result.total_time
    assert result.time_to_first > 3 * dyn_result.time_to_first


def test_writers_block_while_reader_holds_lock():
    kernel, net, world, elements = standard_world(members=3, with_locks=True)
    reader = StrongSet(world, CLIENT, "coll")
    writer = StrongSet(world, "s2", "coll")
    iterator = reader.elements()
    write_done = []

    def read_side():
        yield from iterator.invoke()          # lock acquired, all prefetched
        yield Sleep(5.0)                      # slow consumer holds the lock
        yield from iterator.drain()

    def write_side():
        yield Sleep(0.5)
        yield from writer.add("new", value="N")
        write_done.append(world.now)

    kernel.spawn(read_side())
    kernel.spawn(write_side())
    kernel.run(until=60.0)
    assert write_done and write_done[0] > 5.0


def test_two_readers_share_the_lock():
    kernel, net, world, elements = standard_world(members=3, with_locks=True)
    a = StrongSet(world, CLIENT, "coll")
    b = StrongSet(world, "s3", "coll")
    done = []

    def run(ws, name):
        result = yield from ws.elements().drain()
        done.append((name, world.now, result.failed))

    kernel.spawn(run(a, "a"))
    kernel.spawn(run(b, "b"))
    kernel.run(until=30.0)
    assert {name for name, _, _ in done} == {"a", "b"}
    assert not any(failed for _, _, failed in done)
    # both finished promptly: read locks are compatible
    assert all(t < 2.0 for _, t, _ in done)


def test_disconnected_reader_blocks_writers_indefinitely():
    """§3.1: 'The use of mobile (and possibly) disconnected computers may
    extend the period a lock is held indefinitely.'"""
    kernel, net, world, elements = standard_world(members=3, with_locks=True)
    reader = StrongSet(world, CLIENT, "coll")
    writer = StrongSet(world, "s2", "coll")
    iterator = reader.elements()
    write_done = []

    def read_side():
        yield from iterator.invoke()
        net.isolate(CLIENT)                  # reader disconnects mid-run
        yield Sleep(100.0)

    def write_side():
        yield Sleep(1.0)
        yield from writer.add("new", value="N")
        write_done.append(world.now)

    kernel.spawn(read_side(), daemon=True)
    kernel.spawn(write_side(), daemon=True)
    kernel.run(until=50.0)
    assert write_done == []                   # still blocked at t=50


def test_lease_expiry_unblocks_writers():
    kernel, net, world, elements = standard_world(members=3)
    install_lock_service(world, PRIMARY, lease=5.0)
    reader = StrongSet(world, CLIENT, "coll")
    writer = StrongSet(world, "s2", "coll")
    iterator = reader.elements()
    write_done = []

    def read_side():
        yield from iterator.invoke()
        net.isolate(CLIENT)
        yield Sleep(100.0)

    def write_side():
        yield Sleep(1.0)
        yield from writer.add("new", value="N")
        write_done.append(world.now)

    kernel.spawn(read_side(), daemon=True)
    kernel.spawn(write_side(), daemon=True)
    kernel.run(until=50.0)
    assert write_done and write_done[0] < 10.0  # released by lease expiry


def test_lock_wait_timeout_gives_failed_iteration():
    kernel, net, world, elements = standard_world(members=3, with_locks=True)
    holder = StrongSet(world, "s2", "coll")
    _ws = StrongSet(world, CLIENT, "coll",
                    lock_wait_timeout=1.0)
    h_iter = holder.elements()

    def hold_forever():
        yield from h_iter.invoke()    # read lock held...
        yield Sleep(100.0)

    def writer_then_reader():
        # a writer waits behind the reader, then our reader times out
        # behind... actually reader+reader share; use writer to block
        lock = LockClient(Repository(world, "s3"), "coll")
        yield from lock.acquire("write", wait_timeout=None)
        return lock

    kernel.spawn(hold_forever(), daemon=True)
    kernel.run(until=0.5)

    # a second READER shares the lock fine; to force waiting we grab a
    # write lock slot: simplest observable case is a writer timing out.
    def writer_times_out():
        lock = LockClient(Repository(world, "s3"), "coll")
        try:
            yield from lock.acquire("write", wait_timeout=1.0)
        except (TimeoutFailure, LockUnavailableFailure):
            return "timed out"
        return "acquired"

    assert kernel.run_process(writer_times_out()) == "timed out"


def test_strong_add_and_remove_serialize():
    kernel, net, world, elements = standard_world(members=2, with_locks=True)
    ws = StrongSet(world, CLIENT, "coll")

    def proc():
        e = yield from ws.add("new", value="N")
        yield from ws.remove(e)
        return (yield from ws.size())

    assert kernel.run_process(proc()) == 2
    # no locks leaked
    service = world.net.node(PRIMARY).service("locks")
    assert service.holders("coll") == []
