"""Writer starvation and the writer-priority option."""


from repro.sim import Sleep
from repro.store import Repository
from repro.weaksets import LockClient, install_lock_service

from helpers import CLIENT, PRIMARY, standard_world


def reader_stream(kernel, world, nodes, hold=1.0, gap=0.5):
    """Overlapping readers forever: reader i+1 arrives before i leaves."""

    def one_reader(node, start):
        yield Sleep(start)
        lock = LockClient(Repository(world, node), "coll")
        yield from lock.acquire("read")
        yield Sleep(hold)
        yield from lock.release()

    start = 0.0
    i = 0
    while start < 20.0:
        kernel.spawn(one_reader(nodes[i % len(nodes)], start), daemon=True)
        start += gap
        i += 1


def run_writer(kernel, world, arrived_at=1.25):
    times = {}

    def writer():
        yield Sleep(arrived_at)
        lock = LockClient(Repository(world, "s3"), "coll")
        waited = yield from lock.acquire("write")
        times["granted"] = world.now
        times["waited"] = waited
        yield from lock.release()

    kernel.spawn(writer(), daemon=True)
    return times


def test_writer_starves_under_default_policy():
    kernel, net, world, _ = standard_world()
    install_lock_service(world, PRIMARY)          # wake-all, no priority
    reader_stream(kernel, world, [CLIENT, "s1", "s2"])
    times = run_writer(kernel, world)
    kernel.run(until=19.0)
    # overlapping readers never leave a gap: the writer is still waiting
    assert "granted" not in times


def test_writer_priority_prevents_starvation():
    kernel, net, world, _ = standard_world()
    install_lock_service(world, PRIMARY, writer_priority=True)
    reader_stream(kernel, world, [CLIENT, "s1", "s2"])
    times = run_writer(kernel, world)
    kernel.run(until=19.0)
    # new readers park behind the waiting writer; the in-flight readers
    # drain and the writer gets in promptly
    assert "granted" in times
    assert times["waited"] < 3.0


def test_writer_priority_still_allows_reader_concurrency():
    kernel, net, world, _ = standard_world()
    install_lock_service(world, PRIMARY, writer_priority=True)
    grants = []

    def reader(node):
        lock = LockClient(Repository(world, node), "coll")
        yield from lock.acquire("read")
        grants.append(world.now)
        yield Sleep(1.0)
        yield from lock.release()

    kernel.spawn(reader(CLIENT))
    kernel.spawn(reader("s2"))
    kernel.run(until=10.0)
    # with no writer waiting, both readers entered immediately
    assert len(grants) == 2
    assert all(t < 0.5 for t in grants)
