"""Shard soaks: rebalance under churn across seeds, crash legs included.

Marked ``shard`` so CI can select (``-m shard``) or deselect
(``-m "not shard"``) the soak explicitly; like the other soaks it also
runs in the default suite because every run is deterministic — a
failure is a reproducible counterexample, not flake.  Each seed runs
the E24 rebalance leg end to end: churn writers mutate a 3-shard
collection while the ring grows to 4 nodes; crash seeds kill the
migration *target* mid-handoff and recover it later, shrink seeds
remove a shard again after the grow completes.
"""

import pytest

from repro.bench.exp_sharding import _rebalance_arm

pytestmark = pytest.mark.shard


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("crash", [False, True])
def test_shard_rebalance_under_churn(seed, crash):
    r = _rebalance_arm(seed, crash=crash)

    # The migration always completes — the coordinator retries through
    # the crash window — and the ring ends at the expected size.
    assert r["migration_done"], r
    if crash:
        assert r["generation"] == 1 and r["ring_size"] == 4, r
    else:
        assert r["generation"] == 2 and r["ring_size"] == 3, r

    # Zero tolerance: no cross-component invariant violations, no
    # acked member lost, no removed member resurrected, no member
    # invented, and a scatter-gather read agrees with ground truth.
    assert r["violations"] == 0, r
    assert r["lost"] == 0, r
    assert r["resurrected"] == 0, r
    assert r["foreign"] == 0, r
    assert r["scatter_matches"], r

    # The churn actually exercised the write path both ways.
    assert r["acked_adds"] > 0 and r["acked_removes"] > 0, r
