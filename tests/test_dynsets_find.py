"""weak_find: recursive predicate search over the distributed FS."""


from repro.dynsets import FileSystem, weak_find
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.store import World


def make_tree():
    nodes = ["client", "root", "n1", "n2", "n3"]
    kernel = Kernel(seed=0)
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net)
    fs = FileSystem(world, root_node="root")
    fs.mkdir("/src", node="n1")
    fs.mkdir("/src/core", node="n2")
    fs.mkdir("/docs", node="n3")
    fs.create_file("/readme.md", content="hi", home="root", size=10)
    fs.create_file("/src/main.py", content="code", home="n1", size=100)
    fs.create_file("/src/core/engine.py", content="code", home="n2", size=200)
    fs.create_file("/src/core/engine.c", content="code", home="n3", size=300)
    fs.create_file("/docs/guide.md", content="doc", home="n3", size=50)
    return kernel, net, world, fs


def run_find(kernel, fs, predicate, **kwargs):
    def proc():
        return (yield from weak_find(fs, "client", "/", predicate, **kwargs))

    return kernel.run_process(proc())


def test_find_by_extension():
    kernel, net, world, fs = make_tree()
    result = run_find(kernel, fs, lambda p, m: p.endswith(".py"))
    assert sorted(result.paths) == ["/src/core/engine.py", "/src/main.py"]
    assert result.directories_visited == 4   # /, /src, /src/core, /docs
    assert result.unreachable == []


def test_find_directories_match_too():
    kernel, net, world, fs = make_tree()
    result = run_find(kernel, fs, lambda p, m: m.is_dir)
    assert sorted(result.paths) == ["/docs", "/src", "/src/core"]


def test_find_by_size():
    kernel, net, world, fs = make_tree()
    result = run_find(kernel, fs, lambda p, m: m.size >= 100)
    assert sorted(result.paths) == [
        "/src/core/engine.c", "/src/core/engine.py", "/src/main.py"]


def test_find_max_matches_stops_early():
    kernel, net, world, fs = make_tree()
    result = run_find(kernel, fs, lambda p, m: not m.is_dir, max_matches=2)
    assert len(result.matches) == 2


def test_find_skips_unreachable_subtree():
    kernel, net, world, fs = make_tree()
    net.crash("n2")         # /src/core's directory server is down
    result = run_find(kernel, fs, lambda p, m: p.endswith(".py"),
                      give_up_after=1.0)
    # main.py found; engine.py's directory was unreachable
    assert result.paths == ["/src/main.py"]
    assert "/src/core" in result.unreachable


def test_find_reports_unreachable_files():
    kernel, net, world, fs = make_tree()
    net.crash("n3")         # engine.c and guide.md homes are down
    result = run_find(kernel, fs, lambda p, m: True, give_up_after=0.5)
    unreachable = set(result.unreachable)
    assert "/src/core/engine.c" in unreachable
    # /docs: its *entry object* lives on n3 too, so the /docs entry is
    # unreachable from the root listing; the subtree is skipped
    assert any(p.startswith("/docs") for p in unreachable)


def test_find_nothing_matches():
    kernel, net, world, fs = make_tree()
    result = run_find(kernel, fs, lambda p, m: p.endswith(".rs"))
    assert result.paths == []
    assert result.entries_examined >= 7
