"""Tests for the bench reporting and metrics helpers."""


import pytest
from hypothesis import given, strategies as st

from repro.bench import ExperimentResult, format_kv, format_table, rate, summarize


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------

def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.median == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0


def test_summarize_single_value():
    s = summarize([7.0])
    assert s.n == 1
    assert s.mean == s.median == s.p95 == s.minimum == s.maximum == 7.0


def test_summarize_empty_is_none():
    assert summarize([]) is None


def test_summarize_p95_near_top():
    values = list(range(100))
    s = summarize(values)
    assert 94 <= s.p95 <= 95


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=60))
def test_summarize_invariants(values):
    s = summarize(values)
    ulp = 1e-9 * max(1.0, abs(s.minimum), abs(s.maximum))
    assert s.minimum <= s.median <= s.maximum
    # the mean may exceed min/max by float-rounding of sum()/n
    assert s.minimum - ulp <= s.mean <= s.maximum + ulp
    assert s.minimum <= s.p95 <= s.maximum
    assert s.n == len(values)


def test_rate():
    assert rate(3, 4) == 0.75
    assert rate(0, 0) == 0.0
    assert rate(5, 0) == 0.0


def test_summary_str():
    text = str(summarize([1.0, 2.0]))
    assert "n=2" in text and "mean=" in text


# ---------------------------------------------------------------------------
# report formatting
# ---------------------------------------------------------------------------

def test_format_table_alignment_and_values():
    rows = [
        {"name": "alpha", "value": 1.2345, "flag": True},
        {"name": "b", "value": 10000.0, "flag": False},
    ]
    text = format_table(rows, title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in text and "1.2345"[:5] in text
    assert "yes" in text and "no" in text
    assert "10000" in text


def test_format_table_empty():
    assert "(empty)" in format_table([])


def test_format_table_column_selection():
    rows = [{"a": 1, "b": 2, "c": 3}]
    text = format_table(rows, columns=["c", "a"])
    header = text.splitlines()[0]
    assert "c" in header and "a" in header and "b" not in header


def test_format_table_none_and_nan():
    rows = [{"x": None, "y": float("nan")}]
    text = format_table(rows)
    assert text.splitlines()[-1].count("-") >= 2


def test_format_kv():
    text = format_kv({"alpha": 1, "beta-longer": 2.5}, title="t")
    assert text.splitlines()[0] == "t"
    assert "alpha" in text and "beta-longer" in text


def test_experiment_result_add_and_str():
    result = ExperimentResult("EX", "demo experiment", notes="a note")
    result.add(metric="m1", value=1.0)
    result.add(metric="m2", value=2.0)
    text = str(result)
    assert "[EX] demo experiment" in text
    assert "m1" in text and "m2" in text
    assert "note: a note" in text


def test_experiment_result_respects_column_order():
    result = ExperimentResult("EX", "demo", columns=["b", "a"])
    result.add(a=1, b=2)
    header = str(result).splitlines()[1]
    assert header.index("b") < header.index("a")
