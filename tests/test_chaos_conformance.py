"""Chaos fuzzing: randomized fault schedules + churn, conformance always.

The strongest correctness statement the reproduction makes: for *any*
interleaving of crashes, partitions, heals, and mutations (drawn by
hypothesis), the dynamic iterator's trace satisfies Figure 6 and the
grow-only iterator's trace satisfies Figure 5.  This is the checker and
the implementations validating each other under adversarial schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import FailureException, StoreError
from repro.sim import Sleep
from repro.spec import check_conformance, spec_by_id
from repro.store import Repository
from repro.wan import ScenarioSpec, build_scenario
from repro.weaksets import DynamicSet, GrowOnlySet

CHAOS_NODES = ["n1.0", "n1.1", "n2.0", "n2.1"]

chaos_action = st.sampled_from(
    [f"crash:{n}" for n in CHAOS_NODES]
    + [f"recover:{n}" for n in CHAOS_NODES]
    + [f"isolate:{n}" for n in CHAOS_NODES]
    + ["heal", "add", "remove", "sleep"]
)


def apply_action(scenario, repo, action, counter):
    net = scenario.net
    kind, _, target = action.partition(":")
    if kind == "crash":
        if net.node(target).up:
            net.crash(target)
    elif kind == "recover":
        net.recover(target)
    elif kind == "isolate":
        net.isolate(target)
    elif kind == "heal":
        net.heal()
    elif kind == "add":
        counter[0] += 1
        yield from repo.add("coll", f"chaos-{counter[0]}",
                            value=counter[0], home=CHAOS_NODES[counter[0] % 4])
    elif kind == "remove":
        members = sorted(scenario.world.true_members("coll"),
                         key=lambda e: e.name)
        if members:
            yield from repo.remove("coll", members[0])
    yield Sleep(0.15)


def run_chaos(impl_cls, policy, actions, seed, forbid=()):
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=8,
                        policy=policy, coll_id="coll")
    scenario = build_scenario(spec, seed=seed)
    repo = Repository(scenario.world, spec.primary)
    ws = impl_cls(scenario.world, scenario.client, "coll",
                  **({"retry_interval": 0.2} if impl_cls is DynamicSet else {}))
    iterator = ws.elements()
    counter = [0]

    def chaos():
        for action in actions:
            if action.split(":")[0] in forbid:
                continue
            try:
                yield from apply_action(scenario, repo, action, counter)
            except (FailureException, StoreError):
                pass
        # always end in a healed, all-up world so optimism can finish
        scenario.net.heal()
        for node in CHAOS_NODES:
            scenario.net.recover(node)

    def query():
        return (yield from iterator.drain())

    scenario.kernel.spawn(chaos(), daemon=True)
    proc = scenario.kernel.spawn(query(), name="query")
    scenario.kernel.run(until=600.0)
    assert proc.finished, "query did not finish even after full heal"
    return ws, scenario


@given(st.integers(min_value=0, max_value=99999),
       st.lists(chaos_action, min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_dynamic_always_conforms_to_fig6_under_chaos(seed, actions):
    ws, scenario = run_chaos(DynamicSet, "any", actions, seed)
    report = check_conformance(ws.last_trace, spec_by_id("fig6"),
                               scenario.world)
    assert report.conformant, report.counterexample()


@given(st.integers(min_value=0, max_value=99999),
       st.lists(chaos_action, min_size=1, max_size=12))
@settings(max_examples=25, deadline=None)
def test_grow_only_always_conforms_to_fig5_under_chaos(seed, actions):
    # removes are rejected by the grow-only policy; chaos still includes
    # them to exercise the rejection path
    ws, scenario = run_chaos(GrowOnlySet, "grow-only", actions, seed)
    report = check_conformance(ws.last_trace, spec_by_id("fig5"),
                               scenario.world)
    assert report.conformant, report.counterexample()


@given(st.integers(min_value=0, max_value=99999),
       st.floats(min_value=0.0, max_value=0.3))
@settings(max_examples=15, deadline=None)
def test_dynamic_conforms_over_lossy_links_too(seed, loss_rate):
    """Message loss (not just partitions) cannot break Figure 6."""
    spec = ScenarioSpec(n_clusters=2, cluster_size=2, n_members=6,
                        coll_id="coll", rpc_timeout=0.3)
    scenario = build_scenario(spec, seed=seed)
    for link in scenario.net.topology.links():
        link.loss_rate = loss_rate
    ws = DynamicSet(scenario.world, scenario.client, "coll",
                    retry_interval=0.2)
    iterator = ws.elements()

    def query():
        return (yield from iterator.drain())

    proc = scenario.kernel.spawn(query(), name="query")
    scenario.kernel.run(until=600.0)
    assert proc.finished
    report = check_conformance(ws.last_trace, spec_by_id("fig6"),
                               scenario.world)
    assert report.conformant, report.counterexample()
