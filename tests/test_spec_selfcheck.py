"""The checker against itself: spec-generated traces must conform, and
any single corrupted outcome must be rejected.

For each figure, we *generate* traces by asking the spec what outcome it
requires at each step (picking allowed elements at random) — so the
trace is conformant by construction — then feed it back to the checker.
This closes the loop: the spec is both the generator and the judge.
"""

import pytest
from hypothesis import given, strategies as st

from repro.spec import (
    ALL_FIGURES,
    Failed,
    Returned,
    Yielded,
    check_conformance,
    spec_by_id,
)
from repro.spec.state import InvocationRecord, StateSnapshot
from repro.spec.trace import IterationTrace
from repro.store import Element

NODES = ["client", "h0", "h1", "h2"]


def elem(i):
    return Element(name=f"e{i}", oid=f"oid{i}", home=NODES[1 + i % 3])


UNIVERSE = [elem(i) for i in range(6)]


@st.composite
def generated_trace(draw, spec_id):
    """A trace that follows the spec's required outcomes exactly."""
    spec = spec_by_id(spec_id)
    n_members = draw(st.integers(min_value=0, max_value=6))
    members = frozenset(UNIVERSE[:n_members])
    # reachability per step: a random subset of hosts is up, but for
    # termination guarantee the last steps are fully reachable
    trace = IterationTrace(coll_id="c", client="client", impl_name="generated")
    yielded = frozenset()
    t = 0.0
    first_snapshot = None
    for step in range(2 * n_members + 2):
        fully_reachable = step >= n_members   # heal in the second half
        if fully_reachable:
            reach_nodes = frozenset(NODES)
        else:
            up = draw(st.sets(st.sampled_from(NODES[1:]), max_size=3))
            reach_nodes = frozenset({"client"} | up)
        snap = StateSnapshot(time=t, members=members,
                             reachable_nodes=reach_nodes)
        if first_snapshot is None:
            first_snapshot = snap
        s = members                     # immutable world: s_pre == s_first
        reach = snap.reachable_of(s)
        kind, allowed = spec.required_outcome(s, reach, yielded)
        if kind == "suspends":
            if not allowed:
                # blocked (fig6 with nothing reachable): skip this state —
                # a real implementation would not complete an invocation here
                t += 1.0
                continue
            element = draw(st.sampled_from(sorted(allowed)))
            outcome = Yielded(element)
            new_yielded = yielded | {element}
        elif kind == "returns":
            outcome = Returned()
            new_yielded = yielded
        else:
            outcome = Failed("generated failure")
            new_yielded = yielded
        trace.invocations.append(InvocationRecord(
            index=len(trace.invocations), t_invoke=t, t_complete=t + 0.1,
            yielded_pre=yielded, yielded_post=new_yielded,
            outcome=outcome, snapshots=(snap,),
        ))
        yielded = new_yielded
        t += 1.0
        if not outcome.suspends:
            break
    if trace.invocations:
        trace.first_candidates = trace.invocations[0].snapshots
    history = [(0.0, members)]
    return trace, history


@pytest.mark.parametrize("spec_id", [s.spec_id for s in ALL_FIGURES])
def test_generated_traces_conform(spec_id):
    @given(generated_trace(spec_id))
    def inner(data):
        trace, history = data
        spec = spec_by_id(spec_id)
        report = check_conformance(trace, spec, history=history)
        assert report.conformant, (spec_id, report.counterexample())

    inner()


@pytest.mark.parametrize("spec_id", [s.spec_id for s in ALL_FIGURES])
def test_corrupting_an_outcome_is_rejected(spec_id):
    @given(generated_trace(spec_id), st.integers(min_value=0, max_value=100))
    def inner(data, pick):
        trace, history = data
        if not trace.invocations:
            return
        spec = spec_by_id(spec_id)
        index = pick % len(trace.invocations)
        victim = trace.invocations[index]
        # corruption: swap the outcome kind for a definitely-wrong one
        if isinstance(victim.outcome, Yielded):
            # yield something outside the allowed set: a fresh never-member
            bad = Yielded(Element("intruder", "oid-intruder", "h0"))
            bad_post = victim.yielded_pre | {bad.element}
        else:
            snap = victim.exit_snapshot
            remaining = snap.members - victim.yielded_pre
            if remaining and snap.reachable_of(remaining):
                bad = Returned() if isinstance(victim.outcome, Failed) else Failed("x")
                bad_post = victim.yielded_pre
            else:
                # termination was correct here; corrupt into a bogus yield
                bad = Yielded(Element("intruder", "oid-intruder", "h0"))
                bad_post = victim.yielded_pre | {bad.element}
        trace.invocations[index] = InvocationRecord(
            index=victim.index, t_invoke=victim.t_invoke,
            t_complete=victim.t_complete, yielded_pre=victim.yielded_pre,
            yielded_post=bad_post, outcome=bad, snapshots=victim.snapshots,
        )
        report = check_conformance(trace, spec, history=history)
        assert not report.conformant, spec_id

    inner()
