"""E1 integration: the implementation-versus-specification matrix.

Each implementation is run against the workload its design point is
meant for, under transient failures, and the trace is checked against
every figure.  The expected pattern:

* every implementation conforms to its own figure;
* implementations over *stricter* environments also conform to weaker
  figures whose extra behaviours they never trigger;
* cross-pairings with genuinely incompatible semantics produce concrete
  counterexamples.
"""


from repro.sim import Sleep
from repro.spec import check_conformance, spec_by_id
from repro.weaksets import (
    DynamicSet,
    GrowOnlySet,
    ImmutableSet,
    SnapshotSet,
)

from helpers import CLIENT, drain_all, standard_world


def run_with_mutations_and_blip(kernel, net, world, ws, *, adds=(), removes=()):
    """Drive one full iteration with a mid-run connectivity blip and the
    given mutations (by name for adds, element for removes)."""
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        for name in adds:
            yield from ws.repo.add("coll", name, value=name)
        for e in removes:
            if e != first.element:
                yield from ws.repo.remove("coll", e)
        net.isolate("s1")
        yield Sleep(0.3)
        net.rejoin("s1")
        rest = yield from iterator.drain()
        return rest

    return kernel.run_process(proc())


def test_immutable_impl_conforms_to_fig3_and_weaker():
    kernel, net, world, elements = standard_world(members=6, policy="immutable")
    world.seal("coll")
    ws = ImmutableSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        net.isolate("s1")
        yield Sleep(0.3)
        net.rejoin("s1")
        return (yield from iterator.drain())

    kernel.run_process(proc())
    trace = ws.last_trace
    for spec_id in ["fig3", "fig4", "fig6"]:
        report = check_conformance(trace, spec_by_id(spec_id), world)
        assert report.conformant, f"{spec_id}: {report.counterexample()}"
    # fig5 also holds: an immutable history is vacuously grow-only and
    # the snapshot basis coincides with the pre basis when s never moves
    report5 = check_conformance(trace, spec_by_id("fig5"), world)
    assert report5.conformant, report5.counterexample()


def test_snapshot_impl_conforms_to_fig4_not_fig3_under_mutation():
    kernel, net, world, elements = standard_world(members=6)
    ws = SnapshotSet(world, CLIENT, "coll")
    run_with_mutations_and_blip(kernel, net, world, ws,
                                adds=["added-1"], removes=[elements[2]])
    trace = ws.last_trace
    fig4 = check_conformance(trace, spec_by_id("fig4"), world)
    assert fig4.conformant, fig4.counterexample()
    fig3 = check_conformance(trace, spec_by_id("fig3"), world)
    assert not fig3.conformant
    assert fig3.constraint_violations       # immutability broken by workload


def test_snapshot_impl_violates_fig6_by_missing_additions():
    """Fig 6 requires additions to be yielded; the snapshot iterator
    returns without them — a concrete ensures violation."""
    kernel, net, world, elements = standard_world(members=4)
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "zz-added", value="A")
        return (yield from iterator.drain())

    kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert not report.conformant
    assert report.ensures_violations        # returned while members unyielded


def test_grow_only_impl_conforms_to_fig5_and_fig6():
    kernel, net, world, elements = standard_world(members=6, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "zz-grown", value="G")
        return (yield from iterator.drain())

    kernel.run_process(proc())
    trace = ws.last_trace
    for spec_id in ["fig5", "fig6"]:
        report = check_conformance(trace, spec_by_id(spec_id), world)
        assert report.conformant, f"{spec_id}: {report.counterexample()}"
    # fig4 constraint (true) holds but its ensures fails: the growth was
    # yielded, which the first-state basis cannot justify
    fig4 = check_conformance(trace, spec_by_id("fig4"), world)
    assert not fig4.conformant


def test_grow_only_impl_violates_fig6_when_it_fails():
    """Fig 6 has no failure exit: a pessimistic failure is a violation."""
    kernel, net, world, elements = standard_world(
        n_servers=3, members=6, policy="grow-only")
    net.crash("s1")
    ws = GrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    fig5 = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert fig5.conformant, fig5.counterexample()
    fig6 = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert not fig6.conformant


def test_dynamic_impl_conforms_to_fig6_only_under_churn():
    kernel, net, world, elements = standard_world(members=6)
    ws = DynamicSet(world, CLIENT, "coll")
    run_with_mutations_and_blip(kernel, net, world, ws,
                                adds=["zz-new"], removes=[elements[3]])
    trace = ws.last_trace
    fig6 = check_conformance(trace, spec_by_id("fig6"), world)
    assert fig6.conformant, fig6.counterexample()
    # fig4: the dynamic iterator yielded an element added after the
    # first state — impossible under a first-state basis
    fig4 = check_conformance(trace, spec_by_id("fig4"), world)
    assert not fig4.conformant
    # fig5: the constraint (grow-only) is broken by the removal
    fig5 = check_conformance(trace, spec_by_id("fig5"), world)
    assert not fig5.conformant
    assert fig5.constraint_violations


def test_matrix_diagonal_all_conformant():
    """Each design point run in its intended environment conforms to its
    own figure — the matrix diagonal of experiment E1."""
    pairs = [
        ("fig3", "immutable", ImmutableSet),
        ("fig4", "any", SnapshotSet),
        ("fig5", "grow-only", GrowOnlySet),
        ("fig6", "any", DynamicSet),
    ]
    for spec_id, policy, cls in pairs:
        kernel, net, world, elements = standard_world(members=5, policy=policy)
        if policy == "immutable":
            world.seal("coll")
        ws = cls(world, CLIENT, "coll")
        result = drain_all(kernel, ws)
        assert not result.failed, spec_id
        report = check_conformance(ws.last_trace, spec_by_id(spec_id), world)
        assert report.conformant, f"{spec_id}: {report.counterexample()}"
