"""The resilience layer: retries, deadlines, breakers, hedging, failover."""

import pytest

from repro.errors import (
    CircuitOpenFailure,
    NoSuchObjectError,
    NodeCrashFailure,
    TimeoutFailure,
    UnreachableObjectFailure,
)
from repro.net import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    Deadline,
    FixedLatency,
    Network,
    ResilientClient,
    RetryPolicy,
    full_mesh,
)
from repro.sim import Kernel, Sleep
from repro.spec import Returned
from repro.store import Repository
from repro.weaksets import DynamicSet

from helpers import CLIENT, drain_all, standard_world


class EchoService:
    def echo(self, value):
        return value

    def slow(self, value, delay):
        yield Sleep(delay)
        return value

    def boom(self):
        raise UnreachableObjectFailure("application-level, from a live server")


def make_net(nodes=("a", "b", "c"), latency=0.01, **kwargs):
    kernel = Kernel()
    net = Network(kernel, full_mesh(list(nodes), FixedLatency(latency)), **kwargs)
    for node in nodes:
        net.register_service(node, "echo", EchoService())
    return kernel, net


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------
def test_retry_classification():
    policy = RetryPolicy()
    assert policy.is_retryable(TimeoutFailure("t"))
    assert policy.is_retryable(NodeCrashFailure("c"))
    assert policy.is_retryable(CircuitOpenFailure("o"))
    # A live server answered: application failures are not transport retries.
    assert not policy.is_retryable(UnreachableObjectFailure("app"))
    assert not policy.is_retryable(ValueError("bug"))


def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.5)
    delays_a = [Kernel(seed=7).stream("x").uniform(0, 1) for _ in range(1)]  # warm-up style
    s1 = Kernel(seed=7).stream("backoff")
    s2 = Kernel(seed=7).stream("backoff")
    seq1 = [policy.backoff(i, s1) for i in range(1, 6)]
    seq2 = [policy.backoff(i, s2) for i in range(1, 6)]
    assert seq1 == seq2                       # same seed, same schedule
    # Full jitter: each delay is uniform in [0, nominal] — the whole
    # range is legal, and the cap still binds.
    for attempt, delay in enumerate(seq1, start=1):
        nominal = min(0.5, 0.1 * 2.0 ** (attempt - 1))
        assert 0.0 <= delay <= nominal
    assert delays_a  # silence lint on the warm-up draw


def test_backoff_without_jitter_is_exact():
    policy = RetryPolicy(base_delay=0.1, multiplier=3.0, max_delay=1.0, jitter=0.0)
    stream = Kernel().stream("unused")
    assert policy.backoff(1, stream) == pytest.approx(0.1)
    assert policy.backoff(2, stream) == pytest.approx(0.3)
    assert policy.backoff(3, stream) == pytest.approx(0.9)
    assert policy.backoff(4, stream) == pytest.approx(1.0)  # capped


# ---------------------------------------------------------------------------
# Deadline
# ---------------------------------------------------------------------------
def test_deadline_accounting():
    deadline = Deadline.after(10.0, budget=2.0)
    assert deadline.remaining(10.0) == pytest.approx(2.0)
    assert not deadline.expired(11.9)
    assert deadline.expired(12.0)
    assert deadline.clamp(5.0, now=11.0) == pytest.approx(1.0)
    assert deadline.clamp(0.5, now=11.0) == pytest.approx(0.5)
    assert deadline.clamp(None, now=11.0) == pytest.approx(1.0)
    assert deadline.clamp(5.0, now=13.0) == 0.0


# ---------------------------------------------------------------------------
# CircuitBreaker state machine
# ---------------------------------------------------------------------------
def test_breaker_trips_after_threshold():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3, cooldown=1.0))
    assert breaker.state is BreakerState.CLOSED
    assert not breaker.record_failure(0.0)
    assert not breaker.record_failure(0.1)
    assert breaker.record_failure(0.2)        # third strike trips it
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 1
    assert not breaker.allow(0.5)             # inside cooldown: fail fast
    assert breaker.allow(1.3)                 # cooldown over: half-open probe
    assert breaker.state is BreakerState.HALF_OPEN
    assert not breaker.allow(1.3)             # only one probe at a time


def test_breaker_probe_success_closes():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown=1.0))
    assert breaker.record_failure(0.0)
    assert breaker.allow(1.5)
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.allow(1.6)


def test_breaker_probe_failure_reopens():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown=1.0))
    assert breaker.record_failure(0.0)
    assert breaker.allow(1.5)                 # half-open
    assert breaker.record_failure(1.6)        # probe failed: open again
    assert breaker.state is BreakerState.OPEN
    assert breaker.trips == 2
    assert not breaker.allow(2.0)             # new cooldown from 1.6
    assert breaker.allow(2.7)


def test_breaker_success_resets_failure_run():
    breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2, cooldown=1.0))
    assert not breaker.record_failure(0.0)
    breaker.record_success()                  # streak broken
    assert not breaker.record_failure(0.2)    # back to one
    assert breaker.record_failure(0.3)


# ---------------------------------------------------------------------------
# retrying calls
# ---------------------------------------------------------------------------
def test_retry_succeeds_over_lossy_link():
    kernel = Kernel(seed=3)
    from repro.net import Topology
    topo = Topology()
    topo.add_node("a")
    topo.add_node("b")
    link = topo.add_link("a", "b", FixedLatency(0.01))
    link.loss_rate = 0.6
    net = Network(kernel, topo, default_timeout=0.2)
    net.register_service("b", "echo", EchoService())
    client = ResilientClient(net, policy=RetryPolicy(
        max_attempts=10, base_delay=0.01, max_delay=0.05))

    def bare():
        try:
            return (yield from net.call("a", "b", "echo", "echo", 1, timeout=0.2))
        except TimeoutFailure:
            return "lost"

    def resilient():
        return (yield from client.call("a", "b", "echo", "echo", 2, timeout=0.2))

    # With 60% loss some bare call in a short burst fails...
    results = [kernel.run_process(bare()) for _ in range(10)]
    assert "lost" in results
    # ...while the retrying client delivers.
    assert kernel.run_process(resilient()) == 2
    assert net.transport.stats.retries > 0


def test_retry_does_not_retry_application_failures():
    kernel, net = make_net()
    client = ResilientClient(net, policy=RetryPolicy(max_attempts=5))

    def proc():
        with pytest.raises(UnreachableObjectFailure):
            yield from client.call("a", "b", "echo", "boom")
        return True

    assert kernel.run_process(proc())
    assert net.transport.stats.retries == 0


def test_deadline_caps_total_time_across_attempts():
    kernel, net = make_net(fail_fast=False)   # failures burn the timeout
    net.crash("b")
    client = ResilientClient(net, policy=RetryPolicy(
        max_attempts=50, base_delay=0.05), default_budget=1.0)

    def proc():
        with pytest.raises((TimeoutFailure, NodeCrashFailure)):
            yield from client.call("a", "b", "echo", "echo", 1, timeout=0.4)
        return kernel.now

    elapsed = kernel.run_process(proc())
    # 50 attempts x 0.4s would be 20s; the budget keeps it near 1s.
    assert elapsed <= 1.5


def test_max_attempts_override_disables_retry():
    kernel, net = make_net()
    net.crash("b")
    client = ResilientClient(net, policy=RetryPolicy(max_attempts=5))

    def proc():
        with pytest.raises(NodeCrashFailure):
            yield from client.call("a", "b", "echo", "echo", 1, max_attempts=1)
        return True

    assert kernel.run_process(proc())
    assert net.transport.stats.retries == 0


# ---------------------------------------------------------------------------
# hedged calls
# ---------------------------------------------------------------------------
def test_hedged_call_wins_with_second_replica():
    kernel, net = make_net()
    client = ResilientClient(net, hedge_delay=0.05)

    class Mixed:
        def read(self):
            yield Sleep(1.0)          # "b" is pathologically slow
            return "slow-answer"

    class Fast:
        def read(self):
            return "fast-answer"

    net.register_service("b", "mixed", Mixed())
    net.register_service("c", "mixed", Fast())

    def proc():
        return (yield from client.hedged_call(
            "a", ["b", "c"], "mixed", "read", timeout=5.0))

    assert kernel.run_process(proc()) == "fast-answer"
    assert client.last_winner == "c"
    assert net.transport.stats.hedges == 1
    assert net.transport.stats.hedge_wins == 1


def test_hedged_call_prefers_primary_when_fast():
    kernel, net = make_net()
    client = ResilientClient(net, hedge_delay=0.5)

    def proc():
        return (yield from client.hedged_call(
            "a", ["b", "c"], "echo", "echo", "v", timeout=5.0))

    assert kernel.run_process(proc()) == "v"
    assert client.last_winner == "b"
    assert net.transport.stats.hedges == 0    # never needed the hedge


def test_hedged_call_single_candidate_degrades_to_plain_call():
    kernel, net = make_net()
    client = ResilientClient(net, hedge_delay=0.05)

    def proc():
        return (yield from client.hedged_call("a", ["b"], "echo", "echo", 7))

    assert kernel.run_process(proc()) == 7
    assert net.transport.stats.hedges == 0


def test_hedged_call_fails_only_when_all_candidates_fail():
    kernel, net = make_net()
    net.crash("b")
    net.crash("c")
    client = ResilientClient(net, hedge_delay=0.05)

    def proc():
        with pytest.raises(NodeCrashFailure):
            yield from client.hedged_call(
                "a", ["b", "c"], "echo", "echo", 1, timeout=0.5)
        return True

    assert kernel.run_process(proc())


# ---------------------------------------------------------------------------
# breaker + transport integration: load shedding
# ---------------------------------------------------------------------------
def test_breaker_sheds_load_to_crashed_node():
    # timeout-only discovery: without a breaker every call to the dead
    # node puts a message on the wire and burns the timeout.
    kernel, net = make_net(fail_fast=False)
    net.crash("b")
    client = ResilientClient(
        net,
        policy=RetryPolicy(max_attempts=1),
        breaker=BreakerPolicy(failure_threshold=3, cooldown=60.0),
    )

    def proc():
        for _ in range(20):
            try:
                yield from client.call("a", "b", "echo", "echo", 1, timeout=0.1)
            except (TimeoutFailure, NodeCrashFailure, CircuitOpenFailure):
                pass
        return True

    assert kernel.run_process(proc())
    stats = net.transport.stats
    # Only the pre-trip attempts ever addressed the dead node; the other
    # 17 calls failed fast without touching the wire.
    assert stats.node("b").addressed == 3
    assert stats.breaker_trips == 1
    assert stats.breaker_fast_fails == 17
    breaker = client.breaker_for("a", "b")
    assert breaker.state is BreakerState.OPEN


def test_breaker_recovers_after_cooldown():
    kernel, net = make_net(fail_fast=False)
    net.crash("b")
    client = ResilientClient(
        net,
        policy=RetryPolicy(max_attempts=1),
        breaker=BreakerPolicy(failure_threshold=2, cooldown=0.5),
    )

    def proc():
        for _ in range(5):
            try:
                yield from client.call("a", "b", "echo", "echo", 1, timeout=0.1)
            except (TimeoutFailure, NodeCrashFailure, CircuitOpenFailure):
                pass
        net.recover("b")
        yield Sleep(1.0)                      # wait out the cooldown
        return (yield from client.call("a", "b", "echo", "echo", 42, timeout=1.0))

    assert kernel.run_process(proc()) == 42   # half-open probe succeeded
    assert client.breaker_for("a", "b").state is BreakerState.CLOSED


# ---------------------------------------------------------------------------
# replica failover in the element-fetch path
# ---------------------------------------------------------------------------
def failover_world(seed=0):
    kernel, net, world, _ = standard_world(n_servers=4, members=0, seed=seed)
    elements = [
        world.seed_member("coll", f"m{i}", value=f"v{i}",
                          home="s2", replicas=("s3",))
        for i in range(3)
    ]
    return kernel, net, world, elements


def test_fetch_fails_over_to_replica_when_home_crashes():
    kernel, net, world, elements = failover_world()
    net.crash("s2")
    repo = Repository(world, CLIENT, rpc_timeout=1.0)

    def proc():
        return (yield from repo.fetch(elements[0], failover=True))

    assert kernel.run_process(proc()) == "v0"
    assert net.transport.stats.failovers == 1


def test_fetch_without_failover_still_fails():
    kernel, net, world, elements = failover_world()
    net.crash("s2")
    repo = Repository(world, CLIENT, rpc_timeout=1.0)

    def proc():
        with pytest.raises(NodeCrashFailure):
            yield from repo.fetch(elements[0])
        return True

    assert kernel.run_process(proc())


def test_failover_never_resurrects_removed_member():
    kernel, net, world, elements = failover_world()
    repo = Repository(world, CLIENT, rpc_timeout=1.0)
    victim = elements[0]

    def remove_then_fetch():
        yield from repo.remove("coll", victim)
        # Both the home and the replica copy are tombstoned now; with the
        # home up the answer is the authoritative "removed" and failover
        # must not be consulted at all.
        with pytest.raises(NoSuchObjectError):
            yield from repo.fetch(victim, failover=True)
        return True

    assert kernel.run_process(remove_then_fetch())
    assert net.transport.stats.failovers == 0


def test_tombstoned_replica_is_unreachable_not_removed():
    # The replica-path distinction the failover safety argument rests on:
    # a replica without a live copy says "can't help", never "removed".
    kernel, net, world, elements = failover_world()
    repo = Repository(world, CLIENT, rpc_timeout=1.0)
    victim = elements[0]

    def proc():
        yield from repo.remove("coll", victim)
        net.crash("s2")                       # authoritative answer gone
        with pytest.raises(NodeCrashFailure):
            # replica raises UnreachableObjectFailure internally, so the
            # failover loop re-raises the *home's* failure: the caller
            # sees "unreachable", not a false "removed".
            yield from repo.fetch(victim, failover=True)
        return True

    assert kernel.run_process(proc())


def test_dynamic_iterator_completes_via_failover():
    kernel, net, world, elements = failover_world()
    net.crash("s2")                           # every member's home is down
    resilience = ResilientClient(net, policy=RetryPolicy(max_attempts=2))
    ws = DynamicSet(world, CLIENT, "coll", rpc_timeout=1.0,
                    resilience=resilience, give_up_after=5.0)
    drained = drain_all(kernel, ws)
    assert isinstance(drained.outcome, Returned)
    assert {y.element.name for y in drained.yields} == {"m0", "m1", "m2"}
    assert net.transport.stats.failovers >= 3


def test_dynamic_iterator_without_failover_blocks():
    kernel, net, world, elements = failover_world()
    net.crash("s2")
    ws = DynamicSet(world, CLIENT, "coll", rpc_timeout=1.0,
                    failover=False, give_up_after=1.0)
    drained = drain_all(kernel, ws)
    assert not isinstance(drained.outcome, Returned)
    assert not drained.yields
