"""Unit tests for the figure specs' ensures clauses (required_outcome)."""

import pytest

from repro.spec import (
    ALL_FIGURES,
    Figure1ImmutableNoFailures,
    Figure3ImmutableWithFailures,
    Figure4SnapshotLossOfMutations,
    Figure5GrowOnlyPessimistic,
    Figure6OptimisticDynamic,
    spec_by_id,
)
from repro.store import Element


def elem(name):
    return Element(name=name, oid=f"oid-{name}", home=f"h-{name}")


A, B, C = elem("a"), elem("b"), elem("c")
S = frozenset({A, B, C})
fs = frozenset


# ---------------------------------------------------------------------------
# Figure 1
# ---------------------------------------------------------------------------

def test_fig1_suspends_while_unyielded_remain():
    spec = Figure1ImmutableNoFailures()
    kind, allowed = spec.required_outcome(S, S, fs({A}))
    assert kind == "suspends"
    assert allowed == fs({B, C})


def test_fig1_returns_when_all_yielded():
    spec = Figure1ImmutableNoFailures()
    kind, _ = spec.required_outcome(S, S, S)
    assert kind == "returns"


def test_fig1_ignores_reachability():
    spec = Figure1ImmutableNoFailures()
    kind, allowed = spec.required_outcome(S, fs(), fs())
    assert kind == "suspends"
    assert allowed == S  # unreachable elements still demanded


def test_fig1_disallows_failure():
    assert not Figure1ImmutableNoFailures().allows_failure


# ---------------------------------------------------------------------------
# Figures 3 and 4 (shared ensures clause)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("spec", [Figure3ImmutableWithFailures(),
                                  Figure4SnapshotLossOfMutations()])
def test_fig34_suspends_on_reachable_unyielded(spec):
    reach = fs({A, B})
    kind, allowed = spec.required_outcome(S, reach, fs({A}))
    assert kind == "suspends"
    assert allowed == fs({B})


@pytest.mark.parametrize("spec", [Figure3ImmutableWithFailures(),
                                  Figure4SnapshotLossOfMutations()])
def test_fig34_fails_when_reachables_exhausted_but_set_not(spec):
    reach = fs({A})
    kind, _ = spec.required_outcome(S, reach, fs({A}))
    assert kind == "fails"


@pytest.mark.parametrize("spec", [Figure3ImmutableWithFailures(),
                                  Figure4SnapshotLossOfMutations()])
def test_fig34_returns_when_everything_yielded(spec):
    kind, _ = spec.required_outcome(S, S, S)
    assert kind == "returns"


def test_fig3_vs_fig4_differ_only_in_constraint():
    fig3, fig4 = spec_by_id("fig3"), spec_by_id("fig4")
    assert fig3.constraint.name == "immutable"
    assert fig4.constraint.name == "true"
    state = (S, fs({A, B}), fs({A}))
    assert fig3.required_outcome(*state) == fig4.required_outcome(*state)


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

def test_fig5_suspends_on_reachable_unyielded():
    spec = Figure5GrowOnlyPessimistic()
    kind, allowed = spec.required_outcome(S, fs({A, C}), fs({A}))
    assert kind == "suspends"
    assert allowed == fs({C})


def test_fig5_returns_only_when_yielded_equals_s_pre():
    spec = Figure5GrowOnlyPessimistic()
    kind, _ = spec.required_outcome(S, S, S)
    assert kind == "returns"


def test_fig5_fails_when_unyielded_member_unreachable():
    spec = Figure5GrowOnlyPessimistic()
    # yielded = {A}; B, C in the set but unreachable
    kind, _ = spec.required_outcome(S, fs({A}), fs({A}))
    assert kind == "fails"


def test_fig5_growth_demands_more_yields():
    """A set that grew after yields still demands the new elements."""
    spec = Figure5GrowOnlyPessimistic()
    kind, allowed = spec.required_outcome(S, S, fs({A, B}))
    assert kind == "suspends" and allowed == fs({C})


# ---------------------------------------------------------------------------
# Figure 6
# ---------------------------------------------------------------------------

def test_fig6_suspends_on_any_unyielded_member():
    spec = Figure6OptimisticDynamic()
    kind, allowed = spec.required_outcome(S, fs({B, C}), fs({B}))
    assert kind == "suspends"
    assert allowed == fs({C})  # must be reachable and unyielded


def test_fig6_blocks_rather_than_fails():
    """Unyielded members exist but none reachable: the required outcome
    is still 'suspends' — with an empty allowed set, no completed
    invocation can satisfy it, which is exactly the spec's blocking."""
    spec = Figure6OptimisticDynamic()
    kind, allowed = spec.required_outcome(S, fs(), fs({A}))
    assert kind == "suspends"
    assert allowed == fs()


def test_fig6_returns_when_s_pre_subset_of_yielded():
    spec = Figure6OptimisticDynamic()
    # shrinkage may leave yielded ⊋ s_pre; still returns
    kind, _ = spec.required_outcome(fs({A}), fs({A}), fs({A, B}))
    assert kind == "returns"


def test_fig6_disallows_failure():
    assert not Figure6OptimisticDynamic().allows_failure


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_all_figures_have_unique_ids():
    ids = [s.spec_id for s in ALL_FIGURES]
    assert len(ids) == len(set(ids)) == 5


def test_spec_by_id_unknown():
    with pytest.raises(KeyError):
        spec_by_id("fig99")
