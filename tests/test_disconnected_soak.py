"""Reconnect-reconciliation chaos soak: crash the client mid-drain.

Twenty-four seeded schedules.  Each one warms a client cache, goes
DISCONNECTED, queues a seeded mix of adds and removes while a remote
node churns tombstones, then starts the reconcile drain and crashes the
client partway through it.  With the durable (WAL-modeled) outbox the
second reconcile must be item-precise: every queued add lands exactly
once (no double-applies from replaying already-transmitted intents, no
lost tail), every queued remove lands, and the world's invariants hold.
The ablation leg (``durable_outbox=False``) must measurably leak.
"""

import pytest

from repro.net import FaultSchedule
from repro.store import ClientCache, OfflineClient, Repository
from repro.store.offline import LOST

from helpers import CLIENT, standard_world

pytestmark = [pytest.mark.chaos, pytest.mark.disconnected]

N_SCHEDULES = 24


def run_schedule(seed: int, durable: bool):
    """One soak run; returns (world, offline, added, victims)."""
    kernel, net, world, elements = standard_world(members=8, seed=seed)
    cache = ClientCache(ttl=60.0)
    offline = OfflineClient(world, CLIENT, "coll", cache=cache,
                            durable_outbox=durable, window=1, batch_size=1)
    kernel.run_process(offline.repo.read_membership("coll", source="primary"))
    stream = kernel.stream("soak")

    offline.disconnect()
    added = [offline.queue_add(f"offline-{seed}-{i:02d}", value=f"v{i}")
             for i in range(stream.randint(3, 6))]
    victims = [elements[0], elements[1]]
    for victim in victims:
        offline.queue_remove(victim)
    # Remote churn while we are away: a tombstone the reconcile pull
    # must bring back (it was in our cached base view).
    churned = elements[2]
    kernel.run_process(Repository(world, "s1").remove("coll", churned))

    # Reconnect + drain in the background, and crash the client while
    # the drain is provably still in flight: window=1/batch_size=1 makes
    # it strictly serial, so 5-8 entries take well over the 0.05-0.10s
    # crash point (each RPC round trip alone is 0.02s).
    offline.start_reconcile()
    schedule = FaultSchedule()
    schedule.crash_at(stream.uniform(0.05, 0.10), CLIENT)
    schedule.recover_at(0.5, CLIENT)
    kernel.spawn(schedule.run(net), name="soak-schedule", daemon=True)
    kernel.run(until=kernel.now + 2.0)

    # Recovery pass: drain whatever the crash left queued.
    if offline.outbox.depth() > 0:
        kernel.run_process(offline.reconcile())
    return world, offline, added, victims + [churned]


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_durable_outbox_is_item_precise_across_crash(seed):
    world, offline, added, gone = run_schedule(seed, durable=True)
    names = sorted(e.name for e in world.true_members("coll"))
    for element in added:
        # Exactly once: pre-minted oids + idempotent re-registration
        # mean a replayed-but-unsettled intent cannot double-apply.
        assert names.count(element.name) == 1, (seed, element.name, names)
    for element in gone:
        assert element.name not in names, (seed, element.name)
    assert offline.outbox.depth() == 0
    assert not any(e.status == LOST for e in offline.outbox.entries)
    assert world.check_invariants() == []


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_volatile_outbox_measurably_leaks(seed):
    world, offline, added, _ = run_schedule(seed, durable=False)
    lost = [e for e in offline.outbox.entries if e.status == LOST]
    assert lost, f"seed {seed}: crash landed after the drain finished"
    # The drain tail was never transmitted: at least one lost add is
    # simply gone from the reconciled membership.
    names = {e.name for e in world.true_members("coll")}
    leaked = [e for e in lost
              if e.kind == "add" and e.element.name not in names]
    assert leaked, f"seed {seed}: no adds leaked despite {len(lost)} lost"
    assert world.check_invariants() == []


def test_soak_is_deterministic():
    runs = []
    for _ in range(2):
        world, offline, _, _ = run_schedule(0, durable=True)
        snapshot = world.net.kernel.obs.metrics.snapshot()
        snapshot.pop("kernel.wall_seconds", None)
        runs.append((sorted(e.name for e in world.true_members("coll")),
                     [e.status for e in offline.outbox.entries],
                     snapshot))
    assert runs[0] == runs[1]
