"""Admission control: the bounded executor's worker pool, queue
disciplines, shedding, brownout, and crash semantics."""

import pytest

from repro.errors import ServerBusyFailure
from repro.net import (BoundedExecutor, ExecutorPolicy, FixedLatency, Network,
                       PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL,
                       full_mesh)
from repro.net.executor import DISCIPLINES
from repro.sim import Kernel, Sleep


class WorkService:
    """A service whose handlers take real (virtual) time."""

    def __init__(self, delay=0.1):
        self.delay = delay
        self.started = []
        self.finished = []

    def work(self, tag):
        self.started.append(tag)
        yield Sleep(self.delay)
        self.finished.append(tag)
        return tag

    def fast(self, tag):
        return tag


class BrownoutService:
    """A service offering a degraded fallback for its read."""

    DEGRADED_METHODS = {"read": "read_stale"}

    def __init__(self, delay=0.1):
        self.delay = delay
        self.stale_served = 0

    def read(self):
        yield Sleep(self.delay)
        return (2, ("fresh",))

    def read_stale(self):
        self.stale_served += 1
        return (1, ("stale",), True)


def make_net(policy, service=None, nodes=("a", "b")):
    kernel = Kernel(seed=11)
    net = Network(kernel, full_mesh(list(nodes), FixedLatency(0.001)))
    service = service if service is not None else WorkService()
    net.register_service("b", "svc", service)
    net.node("b").executor = BoundedExecutor(kernel, policy, name="b")
    return kernel, net, service


def call_all(kernel, net, calls, timeout=5.0):
    """Issue ``calls`` concurrently; return {tag: outcome} where outcome
    is the result or the exception instance."""
    outcomes = {}

    def one(method, tag, priority):
        try:
            result = yield from net.call(
                "a", "b", "svc", method, tag, timeout=timeout,
                priority=priority)
        except Exception as exc:  # noqa: BLE001 - recorded for assertions
            outcomes[tag] = exc
        else:
            outcomes[tag] = result

    def driver():
        for method, tag, priority in calls:
            kernel.spawn(one(method, tag, priority), name=f"call-{tag}")
            yield Sleep(0.0001)

    kernel.spawn(driver(), name="driver")
    kernel.run(until=kernel.now + 60.0)
    return outcomes


# ---------------------------------------------------------------------------
# policy validation
# ---------------------------------------------------------------------------
def test_policy_validates_dials():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        ExecutorPolicy(concurrency=0)
    with pytest.raises(SimulationError):
        ExecutorPolicy(concurrency=1, queue_limit=-1)
    with pytest.raises(SimulationError):
        ExecutorPolicy(concurrency=1, discipline="random")
    assert not ExecutorPolicy().enabled
    for discipline in DISCIPLINES:
        assert ExecutorPolicy(concurrency=1, discipline=discipline).enabled


def test_executor_requires_enabled_policy():
    from repro.errors import SimulationError
    kernel = Kernel()
    with pytest.raises(SimulationError):
        BoundedExecutor(kernel, ExecutorPolicy())


# ---------------------------------------------------------------------------
# worker pool + queue
# ---------------------------------------------------------------------------
def test_concurrency_bounds_parallelism():
    policy = ExecutorPolicy(concurrency=2, queue_limit=10)
    kernel, net, service = make_net(policy)
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(6)]
    outcomes = call_all(kernel, net, calls)
    assert all(outcomes[f"t{i}"] == f"t{i}" for i in range(6))
    # Six 0.1s jobs over 2 workers: three serialized waves, so the last
    # finish lands near 0.3s — impossible under unbounded spawning.
    executor = net.node("b").executor
    assert executor.running == 0
    assert executor.queue_depth == 0
    metrics = kernel.obs.metrics
    assert metrics.value("overload.admitted") == 6
    assert metrics.value("overload.shed") == 0


def test_queue_overflow_sheds_with_retry_after():
    # 1 worker, queue of 1: the third concurrent request is shed.
    policy = ExecutorPolicy(concurrency=1, queue_limit=1)
    kernel, net, _ = make_net(policy)
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(3)]
    outcomes = call_all(kernel, net, calls)
    shed = [o for o in outcomes.values() if isinstance(o, ServerBusyFailure)]
    ok = [o for o in outcomes.values() if not isinstance(o, Exception)]
    assert len(shed) == 1 and len(ok) == 2
    assert shed[0].retry_after > 0.0
    assert kernel.obs.metrics.value("overload.shed") == 1


def test_zero_queue_sheds_everything_past_workers():
    policy = ExecutorPolicy(concurrency=1, queue_limit=0)
    kernel, net, _ = make_net(policy)
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(4)]
    outcomes = call_all(kernel, net, calls)
    shed = [o for o in outcomes.values() if isinstance(o, ServerBusyFailure)]
    assert len(shed) == 3


def test_fast_methods_pass_admission_too():
    """Fast (non-generator) methods queue behind slow ones when the
    server saturates — this is what lets pings observe overload."""
    policy = ExecutorPolicy(concurrency=1, queue_limit=0)
    kernel, net, _ = make_net(policy)
    calls = [("work", "slow", PRIORITY_NORMAL),
             ("fast", "quick", PRIORITY_NORMAL)]
    outcomes = call_all(kernel, net, calls)
    assert outcomes["slow"] == "slow"
    assert isinstance(outcomes["quick"], ServerBusyFailure)


def test_retry_after_scales_with_backlog():
    kernel = Kernel(seed=3)
    policy = ExecutorPolicy(concurrency=2, queue_limit=100)
    executor = BoundedExecutor(kernel, policy, name="x")
    executor.ewma_service_time = 0.1
    shallow = executor.retry_after()
    for _ in range(10):
        executor._enqueue(PRIORITY_NORMAL, lambda release: None,
                          lambda exc: None)
    assert executor.retry_after() > shallow


# ---------------------------------------------------------------------------
# disciplines
# ---------------------------------------------------------------------------
def test_lifo_evicts_oldest_waiter():
    policy = ExecutorPolicy(concurrency=1, queue_limit=1, discipline="lifo")
    kernel, net, _ = make_net(policy)
    # t0 runs; t1 queues; t2 arrives -> t1 (oldest waiter) is evicted
    # and t2 takes the queue slot.
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(3)]
    outcomes = call_all(kernel, net, calls)
    assert outcomes["t0"] == "t0"
    assert isinstance(outcomes["t1"], ServerBusyFailure)
    assert outcomes["t2"] == "t2"


def test_fifo_rejects_the_newcomer():
    policy = ExecutorPolicy(concurrency=1, queue_limit=1, discipline="fifo")
    kernel, net, _ = make_net(policy)
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(3)]
    outcomes = call_all(kernel, net, calls)
    assert outcomes["t0"] == "t0"
    assert outcomes["t1"] == "t1"
    assert isinstance(outcomes["t2"], ServerBusyFailure)


def test_priority_dispatch_runs_urgent_first():
    policy = ExecutorPolicy(concurrency=1, queue_limit=10,
                            discipline="priority", aging=0.0)
    kernel, net, service = make_net(policy)
    calls = [("work", "first", PRIORITY_NORMAL),
             ("work", "bg", PRIORITY_LOW),
             ("work", "read", PRIORITY_NORMAL),
             ("work", "probe", PRIORITY_HIGH)]
    outcomes = call_all(kernel, net, calls)
    assert all(not isinstance(o, Exception) for o in outcomes.values())
    # "first" occupies the worker; the queue drains urgent-first.
    assert service.started == ["first", "probe", "read", "bg"]


def test_priority_full_queue_sheds_lowest_class_first():
    policy = ExecutorPolicy(concurrency=1, queue_limit=2,
                            discipline="priority", aging=0.0)
    kernel, net, _ = make_net(policy)
    # worker: t0.  queue: [bg, normal].  A HIGH arrival must displace
    # the background entry, not be rejected.
    calls = [("work", "t0", PRIORITY_NORMAL),
             ("work", "bg", PRIORITY_LOW),
             ("work", "mid", PRIORITY_NORMAL),
             ("work", "probe", PRIORITY_HIGH)]
    outcomes = call_all(kernel, net, calls)
    assert isinstance(outcomes["bg"], ServerBusyFailure)
    assert outcomes["probe"] == "probe"
    assert outcomes["mid"] == "mid"


def test_priority_newcomer_rejected_when_queue_is_all_urgent():
    policy = ExecutorPolicy(concurrency=1, queue_limit=2,
                            discipline="priority", aging=0.0)
    kernel, net, _ = make_net(policy)
    calls = [("work", "t0", PRIORITY_NORMAL),
             ("work", "r1", PRIORITY_NORMAL),
             ("work", "r2", PRIORITY_NORMAL),
             ("work", "bg", PRIORITY_LOW)]
    outcomes = call_all(kernel, net, calls)
    assert isinstance(outcomes["bg"], ServerBusyFailure)
    assert outcomes["r1"] == "r1" and outcomes["r2"] == "r2"


def _flood_with_one_background(aging):
    """Park one LOW request behind a read flood that outpaces service;
    return (outcomes, started-order)."""
    policy = ExecutorPolicy(concurrency=1, queue_limit=50,
                            discipline="priority", aging=aging)
    kernel, net, service = make_net(policy)
    outcomes = {}

    def one(method, tag, priority, timeout=30.0):
        try:
            result = yield from net.call("a", "b", "svc", method, tag,
                                         timeout=timeout, priority=priority)
        except Exception as exc:  # noqa: BLE001
            outcomes[tag] = exc
        else:
            outcomes[tag] = result

    def driver():
        # Saturate, then park one background request in the queue.
        kernel.spawn(one("work", "seed", PRIORITY_NORMAL), name="seed")
        yield Sleep(0.005)
        kernel.spawn(one("work", "bg", PRIORITY_LOW), name="bg")
        # Read flood faster than service (30ms gaps vs 100ms jobs): the
        # queue never empties of NORMAL readers while it lasts.
        for i in range(30):
            kernel.spawn(one("work", f"read-{i}", PRIORITY_NORMAL),
                         name=f"read-{i}")
            yield Sleep(0.03)

    kernel.spawn(driver(), name="driver")
    kernel.run(until=60.0)
    return outcomes, service.started


def test_aging_prevents_background_starvation():
    """Priority-inversion coverage: with aging, a queued LOW request is
    promoted past a sustained NORMAL read flood instead of starving
    behind it; with aging off it runs dead last."""
    outcomes, started = _flood_with_one_background(aging=0.15)
    assert outcomes["bg"] == "bg"
    # Promoted mid-flood, not served after the flood drained.
    assert started.index("bg") < len(started) - 5

    starved_outcomes, starved_order = _flood_with_one_background(aging=0.0)
    assert starved_outcomes["bg"] == "bg"      # it does finish...
    assert starved_order[-1] == "bg"           # ...after every reader


# ---------------------------------------------------------------------------
# brownout
# ---------------------------------------------------------------------------
def test_brownout_serves_degraded_reads_when_queue_deep():
    policy = ExecutorPolicy(concurrency=1, queue_limit=8, brownout=True,
                            brownout_depth=1)
    service = BrownoutService()
    kernel = Kernel(seed=5)
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.001)))
    net.register_service("b", "svc", service)
    net.node("b").executor = BoundedExecutor(kernel, policy, name="b")
    results = []

    def one():
        reply = yield from net.call("a", "b", "svc", "read", timeout=5.0)
        results.append(reply)

    def driver():
        for _ in range(5):
            kernel.spawn(one(), name="r")
            yield Sleep(0.0001)

    kernel.spawn(driver(), name="driver")
    kernel.run(until=10.0)
    assert len(results) == 5
    degraded = [r for r in results if len(r) == 3 and r[2]]
    fresh = [r for r in results if len(r) == 2]
    # Queue ran deep: later arrivals got the stale snapshot instantly.
    assert degraded and fresh
    assert service.stale_served == len(degraded)
    assert kernel.obs.metrics.value("overload.brownout_served") == len(degraded)


def test_no_brownout_without_degraded_table():
    # WorkService has no DEGRADED_METHODS: deep queues shed, never degrade.
    policy = ExecutorPolicy(concurrency=1, queue_limit=1, brownout=True,
                            brownout_depth=0)
    kernel, net, _ = make_net(policy)
    calls = [("work", f"t{i}", PRIORITY_NORMAL) for i in range(3)]
    outcomes = call_all(kernel, net, calls)
    assert kernel.obs.metrics.value("overload.brownout_served") == 0
    assert any(isinstance(o, ServerBusyFailure) for o in outcomes.values())


# ---------------------------------------------------------------------------
# crash semantics
# ---------------------------------------------------------------------------
def test_crash_clears_queue_and_stales_releases():
    policy = ExecutorPolicy(concurrency=1, queue_limit=10)
    kernel, net, service = make_net(policy)
    executor = net.node("b").executor

    def one(tag):
        try:
            yield from net.call("a", "b", "svc", "work", tag, timeout=0.5)
        except Exception:  # noqa: BLE001 - crash kills these calls
            pass

    def driver():
        for i in range(4):
            kernel.spawn(one(f"t{i}"), name=f"t{i}")
        yield Sleep(0.05)              # one running, three queued
        assert executor.running == 1
        assert executor.queue_depth == 3
        net.crash("b")
        assert executor.running == 0
        assert executor.queue_depth == 0
        yield Sleep(1.0)
        net.recover("b")
        result = yield from net.call("a", "b", "svc", "work", "post",
                                     timeout=5.0)
        assert result == "post"

    kernel.run_process(driver())
    # Accounting survived the crash: no negative/leaked slots.
    assert executor.running == 0
    assert executor.queue_depth == 0
    assert kernel.obs.metrics.value("overload.queue_depth") == 0


def test_reply_priority_mirrors_request():
    from repro.net import Address, Message
    req = Message(src=Address("a", "client"), dst=Address("b", "svc"),
                  method="m", priority=PRIORITY_LOW)
    assert req.reply("x").priority == PRIORITY_LOW
