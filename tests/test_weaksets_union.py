"""Union queries across independent repositories."""

import pytest

from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.spec import Failed, Returned
from repro.store import World
from repro.weaksets import DynamicSet, SnapshotSet, UnionIterator, union


def two_repositories(shared_names=(), seed=0):
    """Two collections on disjoint server sets, with optional overlap."""
    kernel = Kernel(seed=seed)
    nodes = ["client", "a0", "a1", "b0", "b1"]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net)
    world.create_collection("repo-a", primary="a0")
    world.create_collection("repo-b", primary="b0")
    a_members, b_members = [], []
    for i in range(4):
        a_members.append(world.seed_member("repo-a", f"a-{i}", value=f"A{i}",
                                           home=f"a{i % 2}"))
        b_members.append(world.seed_member("repo-b", f"b-{i}", value=f"B{i}",
                                           home=f"b{i % 2}"))
    for name in shared_names:
        a_members.append(world.seed_member("repo-a", name, value="shared-a",
                                           home="a1"))
        b_members.append(world.seed_member("repo-b", name, value="shared-b",
                                           home="b1"))
    return kernel, net, world, a_members, b_members


def test_union_covers_both_repositories():
    kernel, net, world, a_members, b_members = two_repositories()
    ws_a = DynamicSet(world, "client", "repo-a")
    ws_b = DynamicSet(world, "client", "repo-b")
    u = union(ws_a, ws_b)

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(a_members + b_members)


def test_union_interleaves_sources():
    kernel, net, world, a_members, b_members = two_repositories()
    u = union(DynamicSet(world, "client", "repo-a"),
              DynamicSet(world, "client", "repo-b"))

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    prefixes = [e.name[0] for e in result.elements]
    # round-robin: both sources appear within the first few yields
    assert set(prefixes[:3]) == {"a", "b"}


def test_union_deduplicates_by_name():
    kernel, net, world, a_members, b_members = two_repositories(
        shared_names=["shared-doc"])
    u = union(DynamicSet(world, "client", "repo-a"),
              DynamicSet(world, "client", "repo-b"))

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    names = [e.name for e in result.elements]
    assert names.count("shared-doc") == 1
    assert u.duplicates_suppressed == 1
    assert len(result.elements) == 9     # 4 + 4 + 1 shared


def test_union_without_dedupe_keeps_both():
    kernel, net, world, a_members, b_members = two_repositories(
        shared_names=["shared-doc"])
    u = union(DynamicSet(world, "client", "repo-a"),
              DynamicSet(world, "client", "repo-b"), dedupe=False)

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    names = [e.name for e in result.elements]
    assert names.count("shared-doc") == 2
    # "though we probably would not be overly annoyed if there were"


def test_union_skips_failed_source_by_default():
    kernel, net, world, a_members, b_members = two_repositories()
    net.crash("b0")      # repo-b's primary: its snapshot iterator fails
    u = union(DynamicSet(world, "client", "repo-a"),
              SnapshotSet(world, "client", "repo-b"))

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(a_members)
    assert len(u.failed_sources) == 1


def test_union_fail_policy_propagates():
    kernel, net, world, a_members, b_members = two_repositories()
    net.crash("b0")
    u = union(DynamicSet(world, "client", "repo-a"),
              SnapshotSet(world, "client", "repo-b"), on_failure="fail")

    def proc():
        return (yield from u.drain())

    result = kernel.run_process(proc())
    assert isinstance(result.outcome, Failed)


def test_union_of_nothing_returns_immediately():
    u = UnionIterator([])

    def proc():
        return (yield from u.drain())

    result = Kernel().run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert result.elements == []


def test_union_bad_policy_rejected():
    with pytest.raises(ValueError):
        UnionIterator([], on_failure="explode")


def test_union_max_yields():
    kernel, net, world, a_members, b_members = two_repositories()
    u = union(DynamicSet(world, "client", "repo-a"),
              DynamicSet(world, "client", "repo-b"))

    def proc():
        return (yield from u.drain(max_yields=3))

    result = kernel.run_process(proc())
    assert len(result.elements) == 3
    assert not u.terminated
