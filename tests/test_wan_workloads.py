"""Tests for the motivating workloads and the generic scenario builder."""


from repro.net import FaultPlan
from repro.spec import Returned, check_conformance, spec_by_id
from repro.wan import (
    Mutator,
    ScenarioSpec,
    build_faces,
    build_library,
    build_restaurants,
    build_scenario,
)


# ---------------------------------------------------------------------------
# generic builder
# ---------------------------------------------------------------------------

def test_build_scenario_is_deterministic():
    a = build_scenario(ScenarioSpec(n_members=20), seed=7)
    b = build_scenario(ScenarioSpec(n_members=20), seed=7)
    assert [e.home for e in a.elements] == [e.home for e in b.elements]
    c = build_scenario(ScenarioSpec(n_members=20), seed=8)
    assert [e.home for e in a.elements] != [e.home for e in c.elements]


def test_scenario_placement_skewed_toward_cluster_zero():
    s = build_scenario(ScenarioSpec(n_members=200, placement_skew=1.2), seed=1)
    cluster0 = sum(1 for e in s.elements if e.home.startswith("n0."))
    assert cluster0 > 200 / 4  # far above the uniform share


def test_scenario_client_is_wired_in():
    s = build_scenario(ScenarioSpec(n_members=5), seed=0)
    assert s.net.can_reach(s.client, s.spec.primary)
    assert s.world.true_members(s.coll_id) == frozenset(s.elements)


def test_mutator_adds_and_removes():
    s = build_scenario(ScenarioSpec(n_members=10), seed=3)
    mut = Mutator(s, add_rate=2.0, remove_rate=1.0)
    mut.start()
    s.kernel.run(until=20.0)
    assert len(mut.added) > 5
    assert len(mut.removed) > 2
    truth = s.world.true_members(s.coll_id)
    expected = (frozenset(s.elements) | frozenset(mut.added)) - frozenset(mut.removed)
    assert truth == expected


def test_mutator_respects_grow_only_policy():
    s = build_scenario(ScenarioSpec(n_members=10, policy="grow-only"), seed=3)
    mut = Mutator(s, add_rate=1.0, remove_rate=1.0)
    mut.start()
    s.kernel.run(until=20.0)
    assert mut.removed == []          # every remove was rejected
    assert mut.failures > 0
    assert len(mut.added) > 3


# ---------------------------------------------------------------------------
# faces (WWW)
# ---------------------------------------------------------------------------

def test_faces_query_returns_all_faces():
    wl = build_faces(seed=1, n_people=24)

    def proc():
        return (yield from wl.display_all_faces("dynamic"))

    result = wl.kernel.run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert len(result.elements) == 24
    assert all(v.bitmap_bytes >= 1024 for v in result.values)


def test_faces_dynamic_conforms_to_fig6():
    wl = build_faces(seed=2, n_people=16)
    ws = wl.home_page("dynamic")

    def proc():
        return (yield from ws.elements().drain())

    wl.kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), wl.world)
    assert report.conformant, report.counterexample()


def test_faces_under_failures_still_answers():
    plan = FaultPlan(crash_rate=0.02, mean_downtime=1.0,
                     protected=frozenset({"client", "n0.0"}))
    wl = build_faces(seed=3, n_people=24, fault_plan=plan)

    def proc():
        return (yield from wl.display_all_faces("dynamic"))

    result = wl.kernel.run_process(proc())
    assert isinstance(result.outcome, Returned)
    assert len(result.elements) == 24   # optimism waits failures out


# ---------------------------------------------------------------------------
# library (LIS)
# ---------------------------------------------------------------------------

def test_library_author_query():
    wl = build_library(seed=1, n_entries=40)

    def proc():
        return (yield from wl.run_author_query("wing"))

    result = wl.kernel.run_process(proc())
    expected = {e.oid for e in wl.entries
                if wl.world.server(e.home).objects[e.oid].value.author == "wing"}
    assert {e.oid for e in result.elements} == expected
    assert len(result.elements) > 0


def test_library_query_misses_brand_new_paper_if_added_after_pass():
    """'if the LIS database is not up-to-date, we would not be surprised
    if an author's most recent paper is not listed' — the snapshot
    semantics makes that concrete."""
    wl = build_library(seed=2, n_entries=20)
    from repro.wan.library import CatalogEntry
    query = wl.papers_by("wing", semantics="fig4")

    def proc():
        first = yield from query.invoke()     # snapshot taken
        repo = wl.scenario.repo()
        yield from repo.add(
            "lis-catalog", "paper-new",
            value=CatalogEntry("Hot off the Press", "wing", 1994),
            home="n1.0", size=512,
        )
        rest = yield from query.drain()
        return ([first.element] if first else []) + rest.elements

    got = wl.kernel.run_process(proc())
    assert "paper-new" not in {e.name for e in got}


# ---------------------------------------------------------------------------
# restaurants
# ---------------------------------------------------------------------------

def test_restaurant_cuisine_query():
    wl = build_restaurants(seed=1, n_restaurants=30)

    def proc():
        return (yield from wl.run_cuisine_query("chinese"))

    result = wl.kernel.run_process(proc())
    assert result.elements
    assert all(v.cuisine == "chinese" for v in result.values)


def test_tourist_stops_after_enough_menus():
    wl = build_restaurants(seed=2, n_restaurants=30)

    def proc():
        return (yield from wl.run_cuisine_query("chinese", max_menus=3))

    result = wl.kernel.run_process(proc())
    assert len(result.elements) <= 3


def test_menu_rotation_is_remove_then_add():
    wl = build_restaurants(seed=3, n_restaurants=10)
    victim = wl.menus[0]

    def proc():
        return (yield from wl.rotate_menu(victim))

    fresh = wl.kernel.run_process(proc())
    truth = wl.world.true_members("pgh-restaurants")
    assert victim not in truth
    assert fresh in truth
    new_menu = wl.world.server(fresh.home).objects[fresh.oid].value
    assert new_menu.season == 1
