"""Seeded recovery chaos soak (ISSUE 3 acceptance gate).

Every schedule crashes the collection primary *mid-erase* — at the
``home-deleted`` WAL step, inside the window where the home object is
gone but the member is still listed — then recovers it at a seeded
random time and adds extra seeded crash/recover churn on another node.

With the WAL + recovery protocol on, every schedule must settle with
zero invariant violations.  With recovery ablated
(``recovery_enabled=False``), the *same* schedules must each leave at
least one lasting violation (the dangling member).
"""

import pytest

from repro.errors import FailureException
from repro.net.failures import FaultSchedule
from repro.store import Repository

from helpers import CLIENT, PRIMARY, standard_world

pytestmark = pytest.mark.chaos

N_SCHEDULES = 24
SCRUB = 1.0


def run_schedule(seed, recovery_enabled):
    """One seeded crash/recover schedule; returns (world, problems)."""
    kernel, net, world, elements = standard_world(
        members=8, replicas=2, seed=seed, recovery_enabled=recovery_enabled,
        scrub_interval=SCRUB)
    rng = kernel.stream("soak.schedule")
    server = world.server(PRIMARY)
    repo = Repository(world, CLIENT)

    victim = next(e for e in elements if e.home == PRIMARY)
    other = next(e for e in elements if e.home != PRIMARY)
    server.wal.arm_crash("home-deleted")

    schedule = FaultSchedule()
    recover_at = rng.uniform(1.0, 3.0)
    schedule.recover_at(recover_at, PRIMARY)
    # extra churn: a seeded crash/recover of some replica or home node
    extra = rng.choice(["s1", "s2", "s3"])
    extra_down = rng.uniform(0.5, 4.0)
    schedule.crash_at(extra_down, extra)
    schedule.recover_at(extra_down + rng.uniform(0.5, 2.0), extra)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)

    def client():
        try:
            yield from repo.remove("coll", victim)   # interrupted by the crash
        except FailureException:
            pass
        try:
            yield from repo.remove("coll", other)    # ordinary post-crash traffic
        except FailureException:
            pass

    kernel.run_process(client())
    for node in sorted(net.nodes):                   # heal whatever is still down
        if not net.node(node).up:
            net.recover(node)
    kernel.run(until=kernel.now + 4 * SCRUB)         # replay + scrub settle
    return world, world.check_invariants()


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_wal_recovery_survives_mid_erase_crash(seed):
    world, problems = run_schedule(seed, recovery_enabled=True)
    assert problems == []
    # the interrupted removal was rolled forward, not lost
    wal = world.server(PRIMARY).wal
    assert wal.pending() == []
    assert any(r.done("home-deleted") for r in wal.records)


@pytest.mark.parametrize("seed", range(N_SCHEDULES))
def test_ablation_same_schedule_violates_without_recovery(seed):
    world, problems = run_schedule(seed, recovery_enabled=False)
    assert len(problems) >= 1
    assert any("no live object" in p for p in problems)


def test_soak_schedules_are_deterministic():
    w1, p1 = run_schedule(0, recovery_enabled=True)
    w2, p2 = run_schedule(0, recovery_enabled=True)
    assert p1 == p2 == []
    snap1 = w1.kernel.obs.metrics.snapshot()
    snap2 = w2.kernel.obs.metrics.snapshot()
    snap1.pop("kernel.wall_seconds"), snap2.pop("kernel.wall_seconds")
    assert snap1 == snap2
