"""Soak tests: concurrent iterators + churn + fault injection, all
traces conformance-checked.  The closest thing to the paper's target
deployment: many clients, common failures, rare-but-real mutations."""


from repro.net import FaultPlan
from repro.spec import Returned, check_conformance, spec_by_id
from repro.wan import Mutator, ScenarioSpec, build_scenario
from repro.weaksets import DynamicSet, GrowOnlySet


def test_soak_dynamic_iterators_under_churn_and_faults():
    plan = FaultPlan(crash_rate=0.01, isolate_rate=0.02, mean_downtime=0.8,
                     protected=frozenset({"client", "n0.0"}))
    spec = ScenarioSpec(n_clusters=4, cluster_size=2, n_members=16,
                        fault_plan=plan)
    scenario = build_scenario(spec, seed=42)
    mutator = Mutator(scenario, add_rate=0.3, remove_rate=0.3)
    mutator.start()

    clients = ["client", "n1.1", "n3.0"]
    sets = [DynamicSet(scenario.world, c, spec.coll_id, retry_interval=0.3)
            for c in clients]
    outcomes = {}

    def run(ws, name):
        result = yield from ws.elements().drain()
        outcomes[name] = result

    for ws, name in zip(sets, clients):
        scenario.kernel.spawn(run(ws, name), name=f"query@{name}")
    scenario.kernel.run(until=300.0)
    scenario.injector.stop()

    assert set(outcomes) == set(clients), "every query finished"
    for ws, name in zip(sets, clients):
        result = outcomes[name]
        assert isinstance(result.outcome, Returned), (name, result.outcome)
        assert len(result.elements) >= 10          # substantial answers
        report = check_conformance(ws.last_trace, spec_by_id("fig6"),
                                   scenario.world)
        assert report.conformant, (name, report.counterexample())


def test_soak_grow_only_under_growth_and_faults():
    plan = FaultPlan(isolate_rate=0.02, mean_downtime=0.6,
                     protected=frozenset({"client", "n0.0"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=12,
                        policy="grow-only", fault_plan=plan)
    scenario = build_scenario(spec, seed=17)
    mutator = Mutator(scenario, add_rate=0.5)
    mutator.start()

    ws = GrowOnlySet(scenario.world, "client", spec.coll_id)
    results = []

    # several back-to-back runs; failures may legitimately end a run
    def runner():
        for _ in range(4):
            iterator = ws.elements()
            result = yield from iterator.drain()
            results.append(result)

    scenario.kernel.run_process(runner(), until=300.0)
    scenario.injector.stop()

    assert len(results) == 4
    for result, trace in zip(results, ws.traces):
        report = check_conformance(trace, spec_by_id("fig5"), scenario.world)
        assert report.conformant, report.counterexample()
    # the grow-only constraint held globally too
    history = scenario.world.membership_history(spec.coll_id)
    assert spec_by_id("fig5").constraint.check(history) == []


def test_soak_two_semantics_share_one_world():
    """Different clients can use different design points concurrently;
    each trace is judged by its own figure."""
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=10)
    scenario = build_scenario(spec, seed=5)
    mutator = Mutator(scenario, add_rate=0.4, remove_rate=0.2)
    mutator.start()

    from repro.weaksets import SnapshotSet
    dyn = DynamicSet(scenario.world, "client", spec.coll_id)
    snap = SnapshotSet(scenario.world, "n2.0", spec.coll_id)
    done = {}

    def run(ws, name):
        result = yield from ws.elements().drain()
        done[name] = result

    scenario.kernel.spawn(run(dyn, "dyn"))
    scenario.kernel.spawn(run(snap, "snap"))
    scenario.kernel.run(until=120.0)

    assert set(done) == {"dyn", "snap"}
    fig6 = check_conformance(dyn.last_trace, spec_by_id("fig6"), scenario.world)
    assert fig6.conformant, fig6.counterexample()
    fig4 = check_conformance(snap.last_trace, spec_by_id("fig4"), scenario.world)
    assert fig4.conformant, fig4.counterexample()
