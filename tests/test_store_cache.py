"""Tests for the TTL client cache."""

import pytest
from hypothesis import given, strategies as st

from repro.store import ClientCache


def test_get_miss_then_hit():
    c = ClientCache(ttl=5.0)
    assert c.get("k", now=0.0) is None
    c.put("k", "v", now=0.0)
    assert c.get("k", now=1.0) == "v"
    assert c.hits == 1 and c.misses == 1


def test_entry_expires_after_ttl():
    c = ClientCache(ttl=2.0)
    c.put("k", "v", now=0.0)
    assert c.get("k", now=2.0) == "v"     # exactly at ttl: still fresh
    assert c.get("k", now=2.01) is None   # past ttl: expired
    # expired entry was dropped
    assert len(c) == 0


def test_put_refreshes_timestamp():
    c = ClientCache(ttl=2.0)
    c.put("k", "v1", now=0.0)
    c.put("k", "v2", now=1.5)
    assert c.get("k", now=3.0) == "v2"


def test_lru_eviction_order():
    c = ClientCache(ttl=100.0, capacity=2)
    c.put("a", 1, now=0.0)
    c.put("b", 2, now=0.0)
    c.get("a", now=0.1)       # touch a so b becomes LRU
    c.put("c", 3, now=0.2)
    assert c.get("b", now=0.3) is None
    assert c.get("a", now=0.3) == 1
    assert c.get("c", now=0.3) == 3


def test_invalidate_and_clear():
    c = ClientCache(ttl=10.0)
    c.put("a", 1, now=0.0)
    c.put("b", 2, now=0.0)
    c.invalidate("a")
    assert c.get("a", now=0.1) is None
    c.clear()
    assert len(c) == 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        ClientCache(ttl=-1.0)
    with pytest.raises(ValueError):
        ClientCache(capacity=0)


def test_hit_rate():
    c = ClientCache(ttl=10.0)
    assert c.hit_rate == 0.0
    c.put("a", 1, now=0.0)
    c.get("a", now=0.1)
    c.get("zzz", now=0.1)
    assert c.hit_rate == pytest.approx(0.5)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=50))
def test_capacity_never_exceeded(ops):
    c = ClientCache(ttl=1000.0, capacity=5)
    for key, value in ops:
        c.put(key, value, now=0.0)
        assert len(c) <= 5


@given(st.integers(0, 100), st.floats(min_value=0.0, max_value=10.0))
def test_fresh_entries_always_hit(key, age):
    c = ClientCache(ttl=10.0)
    c.put(key, "v", now=0.0)
    assert c.get(key, now=age) == "v"
