"""LockService unit behaviours beyond the StrongSet integration tests."""


from repro.errors import LockUnavailableFailure, TimeoutFailure
from repro.sim import Sleep
from repro.store import Repository
from repro.weaksets import LockClient, install_lock_service

from helpers import CLIENT, PRIMARY, standard_world


def setup(lease=None, **kwargs):
    kernel, net, world, elements = standard_world(**kwargs)
    service = install_lock_service(world, PRIMARY, lease=lease)
    return kernel, net, world, service


def client(world, node):
    return LockClient(Repository(world, node), "coll")


def test_holders_and_grants_tracked():
    kernel, net, world, service = setup()
    a = client(world, CLIENT)
    b = client(world, "s2")

    def proc():
        yield from a.acquire("read")
        yield from b.acquire("read")
        holders_both = service.holders("coll")
        yield from a.release()
        holders_one = service.holders("coll")
        yield from b.release()
        return holders_both, holders_one

    both, one = kernel.run_process(proc())
    assert len(both) == 2
    assert len(one) == 1
    assert service.grants == 2
    assert service.holders("coll") == []


def test_writer_excludes_writer():
    kernel, net, world, service = setup()
    a = client(world, CLIENT)
    b = client(world, "s2")
    order = []

    def first():
        yield from a.acquire("write")
        order.append("a-acquired")
        yield Sleep(2.0)
        yield from a.release()
        order.append("a-released")

    def second():
        yield Sleep(0.1)
        yield from b.acquire("write")
        order.append("b-acquired")
        yield from b.release()

    kernel.spawn(first())
    kernel.spawn(second())
    kernel.run(until=30.0)
    assert order == ["a-acquired", "a-released", "b-acquired"]


def test_reader_blocks_writer_but_not_reader():
    kernel, net, world, service = setup()
    r1 = client(world, CLIENT)
    r2 = client(world, "s2")
    w = client(world, "s3")
    times = {}

    def reader(lock, name, hold):
        yield from lock.acquire("read")
        times[name] = world.now
        yield Sleep(hold)
        yield from lock.release()

    def writer():
        yield Sleep(0.1)
        yield from w.acquire("write")
        times["w"] = world.now
        yield from w.release()

    kernel.spawn(reader(r1, "r1", 3.0))
    kernel.spawn(reader(r2, "r2", 3.0))
    kernel.spawn(writer())
    kernel.run(until=30.0)
    assert times["r1"] < 0.5 and times["r2"] < 0.5   # readers share
    assert times["w"] > 3.0                          # writer waited


def test_max_wait_observed():
    kernel, net, world, service = setup()
    a = client(world, CLIENT)
    b = client(world, "s2")

    def holder():
        yield from a.acquire("write")
        yield Sleep(4.0)
        yield from a.release()

    def waiter():
        yield Sleep(0.1)
        yield from b.acquire("write")
        yield from b.release()

    kernel.spawn(holder())
    kernel.spawn(waiter())
    kernel.run(until=30.0)
    assert service.max_wait_observed >= 3.5


def test_release_without_holding_is_false():
    kernel, net, world, service = setup()

    def proc():
        released = yield from service.release("coll", "read", "nobody")
        unknown = yield from service.release("other-coll", "read", "nobody")
        return released, unknown

    assert kernel.run_process(proc()) == (False, False)


def test_release_is_mode_specific():
    kernel, net, world, service = setup()
    a = client(world, CLIENT)

    def proc():
        yield from a.acquire("read")
        # wrong-mode release does nothing
        wrong = yield from service.release("coll", "write", a.owner)
        right = yield from service.release("coll", "read", a.owner)
        return wrong, right

    assert kernel.run_process(proc()) == (False, True)


def test_lease_expires_writer_too():
    kernel, net, world, service = setup(lease=2.0)
    w = client(world, CLIENT)
    r = client(world, "s2")
    times = {}

    def writer_vanishes():
        yield from w.acquire("write")
        yield Sleep(100.0)       # never releases

    def reader():
        yield Sleep(0.1)
        yield from r.acquire("read")
        times["r"] = world.now

    kernel.spawn(writer_vanishes(), daemon=True)
    kernel.spawn(reader(), daemon=True)
    kernel.run(until=30.0)
    assert 2.0 <= times["r"] < 4.0


def test_zero_wait_timeout_fails_immediately_when_held():
    kernel, net, world, service = setup()
    a = client(world, CLIENT)
    b = client(world, "s2")

    def proc():
        yield from a.acquire("write")
        try:
            yield from b.acquire("write", wait_timeout=0.0)
        except (LockUnavailableFailure, TimeoutFailure):
            return "refused"

    assert kernel.run_process(proc()) == "refused"


# ---------------------------------------------------------------------------
# Collection-wide locks over sharded rings
# ---------------------------------------------------------------------------

def test_collection_locks_follow_ring_order():
    from repro.weaksets import (acquire_collection_locks,
                                install_lock_services,
                                release_collection_locks)
    from helpers import sharded_world

    kernel, net, world, _ = sharded_world()
    install_lock_services(world, "coll")
    repo = Repository(world, CLIENT)

    def proc():
        locks = yield from acquire_collection_locks(repo, "coll", "write")
        held_at = [lock._lock_node for lock in locks]
        yield from release_collection_locks(locks)
        return held_at

    held_at = kernel.run_process(proc())
    ring = world.collections["coll"].shard_map.ring
    assert tuple(held_at) == ring.ordered_nodes()   # deterministic order
    for node in ring.nodes:
        service = net.node(node).services["locks"]
        assert service.holders("coll") == []        # all released


def test_collection_locks_roll_back_on_failure():
    from repro.errors import FailureException
    from repro.weaksets import (acquire_collection_locks,
                                install_lock_services)
    from helpers import sharded_world

    kernel, net, world, _ = sharded_world()
    install_lock_services(world, "coll")
    repo = Repository(world, CLIENT)
    ring = world.collections["coll"].shard_map.ring
    last = ring.ordered_nodes()[-1]
    net.crash(last)                       # the final acquisition will fail

    def proc():
        try:
            yield from acquire_collection_locks(repo, "coll", "write",
                                                rpc_timeout=0.5)
        except FailureException:
            return "rolled-back"
        return "acquired"

    assert kernel.run_process(proc()) == "rolled-back"
    for node in ring.ordered_nodes()[:-1]:
        service = net.node(node).services["locks"]
        assert service.holders("coll") == []        # earlier locks released
