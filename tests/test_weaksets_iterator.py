"""Iterator protocol mechanics and WeakSet facade behaviours."""


from repro.errors import IteratorProtocolError
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.spec import Returned
from repro.store import World
from repro.weaksets import DrainResult, DynamicSet, SnapshotSet

from helpers import CLIENT, drain_all, standard_world


def test_invoke_after_return_raises():
    kernel, net, world, elements = standard_world(members=1)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.drain()
        try:
            yield from iterator.invoke()
        except IteratorProtocolError:
            return "protocol enforced"

    assert kernel.run_process(proc()) == "protocol enforced"


def test_invoke_after_failure_raises():
    kernel, net, world, elements = standard_world(n_servers=2, members=2)
    net.isolate("s0")
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        result = yield from iterator.drain()
        assert result.failed
        try:
            yield from iterator.invoke()
        except IteratorProtocolError:
            return "protocol enforced"

    assert kernel.run_process(proc()) == "protocol enforced"


def test_each_elements_call_is_independent():
    kernel, net, world, elements = standard_world(members=3)
    ws = DynamicSet(world, CLIENT, "coll")
    it1 = ws.elements()
    it2 = ws.elements()
    assert it1 is not it2

    def proc():
        r1 = yield from it1.drain()
        r2 = yield from it2.drain()
        return r1, r2

    r1, r2 = kernel.run_process(proc())
    assert frozenset(r1.elements) == frozenset(r2.elements)
    assert len(ws.traces) == 2


def test_record_false_keeps_no_traces():
    kernel, net, world, elements = standard_world(members=2)
    ws = DynamicSet(world, CLIENT, "coll", record=False)
    drain_all(kernel, ws)
    assert ws.traces == []
    assert ws.last_trace is None


def test_closest_first_ordering():
    kernel = Kernel()
    topo = full_mesh(
        ["client", "near", "far"],
        latency_for=lambda a, b: FixedLatency(
            0.001 if {a, b} == {"client", "near"} else 0.5),
    )
    net = Network(kernel, topo)
    world = World(net)
    world.create_collection("c", primary="near")
    far_e = world.seed_member("c", "aaa-far", home="far")     # alphabetically first
    near_e = world.seed_member("c", "zzz-near", home="near")
    ws = DynamicSet(world, "client", "c")
    iterator = ws.elements()
    ordered = iterator.closest_first(frozenset({far_e, near_e}))
    assert ordered == [near_e, far_e]     # latency beats alphabet


def test_closest_first_unreachable_sorts_last():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    net.isolate("s0")
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()
    ordered = iterator.closest_first(frozenset(elements))
    assert ordered[-1].home == "s0"


def test_drain_result_properties():
    kernel, net, world, elements = standard_world(members=3)
    ws = DynamicSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert isinstance(result, DrainResult)
    assert len(result.values) == 3
    assert not result.failed
    assert result.time_to_first is not None
    assert result.time_to_first <= result.total_time
    assert "3 yields" in repr(result)


def test_drain_result_empty_set():
    kernel, net, world, _ = standard_world(members=0)
    ws = DynamicSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.elements == []
    assert result.time_to_first is None
    assert isinstance(result.outcome, Returned)


def test_drain_max_yields_leaves_iterator_resumable():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first_two = yield from iterator.drain(max_yields=2)
        assert not iterator.terminated
        rest = yield from iterator.drain()
        return first_two.elements + rest.elements

    got = kernel.run_process(proc())
    assert frozenset(got) == frozenset(elements)


def test_weakset_size_and_repr():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")

    def proc():
        return (yield from ws.size())

    assert kernel.run_process(proc()) == 4
    assert "coll" in repr(ws) and "fig6" in repr(ws)
