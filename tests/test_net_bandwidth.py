"""Finite-bandwidth links: FIFO queuing, byte-capped batching, presets.

Satellites of E25: the wire model replaces the old
``World(bandwidth=...)`` server-side transfer charge, byte counters and
queue delay are first-class metrics, and both pipelines respect
``max_batch_bytes``.
"""

from collections import deque

import pytest

from repro.net import (
    BANDWIDTH_PRESETS,
    FixedLatency,
    Network,
    WireFormat,
    apply_bandwidth_preset,
    full_mesh,
)
from repro.net.link import Link
from repro.net.topology import wan_clusters
from repro.sim import Kernel
from repro.store import Repository, World
from repro.store.writeplan import AddSpec, WritePlanner, _WriteOp
from repro.weaksets import DynamicSet

from helpers import CLIENT, PRIMARY, standard_world


# -- Link.transmit ----------------------------------------------------------

def test_transfer_time_is_size_over_bandwidth():
    link = Link("a", "b", bandwidth=1000.0)
    assert link.transmit("a", 500, now=0.0) == (0.0, 0.5)


def test_infinite_bandwidth_is_free():
    link = Link("a", "b")
    assert link.transmit("a", 10**9, now=0.0) == (0.0, 0.0)


def test_fifo_queuing_per_direction():
    link = Link("a", "b", bandwidth=1000.0)
    assert link.transmit("a", 1000, now=0.0) == (0.0, 1.0)
    # the second message queues behind the first's full transfer
    wait, transfer = link.transmit("a", 500, now=0.2)
    assert wait == pytest.approx(0.8) and transfer == pytest.approx(0.5)
    # the reverse direction is an independent FIFO (full duplex)
    assert link.transmit("b", 500, now=0.2) == (0.0, 0.5)


def test_fifo_drains_when_idle():
    link = Link("a", "b", bandwidth=1000.0)
    link.transmit("a", 1000, now=0.0)
    wait, _ = link.transmit("a", 100, now=5.0)     # long after drain
    assert wait == 0.0


def test_negative_bandwidth_rejected():
    from repro.errors import SimulationError
    with pytest.raises(SimulationError):
        Link("a", "b", bandwidth=-1.0)


def test_repr_includes_loss_and_bandwidth():
    shown = repr(Link("a", "b", loss_rate=0.001, bandwidth=1.25e6))
    assert "loss=0.001" in shown and "bw=1.25e+06B/s" in shown
    assert "bw=inf" in repr(Link("a", "b"))


# -- the deprecated World(bandwidth=...) alias ------------------------------

def test_world_bandwidth_is_deprecated_but_works():
    kernel = Kernel(seed=0)
    topo = full_mesh(["client", "s0"], FixedLatency(0.01))
    net = Network(kernel, topo)
    with pytest.deprecated_call():
        World(net, bandwidth=1_000_000.0)
    link = next(iter(topo.links()))
    assert link.bandwidth == 1_000_000.0


def test_world_bandwidth_respects_explicit_link_settings():
    kernel = Kernel(seed=0)
    topo = full_mesh(["client", "s0"], FixedLatency(0.01))
    link = next(iter(topo.links()))
    link.bandwidth = 250.0
    net = Network(kernel, topo)
    with pytest.deprecated_call():
        World(net, bandwidth=1_000_000.0)
    assert link.bandwidth == 250.0      # the explicit dial wins


# -- WireFormat -------------------------------------------------------------

def test_serialize_delay():
    assert WireFormat(serialize_rate=2_000_000.0).serialize_delay(1_000_000) \
        == pytest.approx(0.5)
    assert WireFormat().serialize_delay(10**9) == 0.0


# -- bandwidth presets ------------------------------------------------------

def test_presets_exist_and_are_ordered():
    for name in ("lan", "wan", "mobile"):
        assert name in BANDWIDTH_PRESETS
    assert BANDWIDTH_PRESETS["lan"].access \
        > BANDWIDTH_PRESETS["wan"].access \
        > BANDWIDTH_PRESETS["mobile"].access


def test_apply_preset_classifies_links():
    topo = wan_clusters([2, 2], intra_latency=FixedLatency(0.002),
                        inter_latency=FixedLatency(0.080))
    topo.add_node("client")
    topo.add_link("client", "n0.0", FixedLatency(0.002))
    apply_bandwidth_preset(topo, "wan", access_nodes=("client",))
    preset = BANDWIDTH_PRESETS["wan"]
    for link in topo.links():
        if "client" in link.endpoints():
            assert link.bandwidth == preset.access
        elif link.latency.expected() >= 0.02:
            assert link.bandwidth == preset.inter
        else:
            assert link.bandwidth == preset.intra


def test_apply_preset_rejects_unknown_name():
    topo = full_mesh(["a", "b"], FixedLatency(0.01))
    with pytest.raises(KeyError):
        apply_bandwidth_preset(topo, "dialup")


# -- byte-capped batch forming ----------------------------------------------

def _ops(sizes):
    return deque(
        _WriteOp(index=i, kind="add",
                 element=None,  # the planner never touches it
                 spec=AddSpec(name=f"m{i}", size=size))
        for i, size in enumerate(sizes))


def test_writeplanner_uncapped_forms_item_batches():
    planner = WritePlanner(batch_size=3)
    queue = _ops([100] * 5)
    assert len(planner.form(queue)) == 3
    assert len(planner.form(queue)) == 2


def test_writeplanner_byte_cap_limits_batches():
    planner = WritePlanner(batch_size=8, max_batch_bytes=2500)
    queue = _ops([1000, 1000, 1000, 1000])
    # each op costs 1000 + 96 overhead; two fit under 2500, not three
    assert len(planner.form(queue)) == 2
    assert len(planner.form(queue)) == 2


def test_writeplanner_oversized_op_ships_alone():
    planner = WritePlanner(batch_size=8, max_batch_bytes=1000)
    queue = _ops([50_000, 10, 10])
    assert len(planner.form(queue)) == 1       # huge op, alone
    assert len(planner.form(queue)) == 2       # the small ones coalesce


# -- end to end: wire time, byte metrics, queue delay -----------------------

def test_fetch_pays_wire_transfer_time():
    kernel, net, world, _ = standard_world()
    for link in net.topology.links():
        link.bandwidth = 1_000_000.0
    from repro.store import Element
    big = Element("big", "oid-big", "s1")
    world.server("s1").store_direct(big, value="x", size=3_000_000)
    repo = Repository(world, CLIENT)

    def proc():
        t0 = kernel.now
        yield from repo.fetch(big)
        return kernel.now - t0

    assert kernel.run_process(proc()) >= 3.0   # 3 MB over 1 MB/s


def test_byte_counters_and_families_populate():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll", record=False)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    kernel.run_process(proc())
    metrics = kernel.obs.metrics
    total = metrics.value("net.bytes_sent")
    assert total > 0
    assert metrics.value("net.bytes_received") > 0
    families = (metrics.value("net.bytes_sent.object")
                + metrics.value("net.bytes_sent.membership")
                + metrics.value("net.bytes_sent.sync")
                + metrics.value("net.bytes_sent.shard")
                + metrics.value("net.bytes_sent.lock")
                + metrics.value("net.bytes_sent.control")
                + metrics.value("net.bytes_sent.other"))
    assert families == total
    assert metrics.value("net.bytes_sent.object") > 0
    assert metrics.value("net.bytes_sent.membership") > 0
    # per-node accounting flows through the same stamp
    assert net.transport.stats.node(CLIENT).bytes_sent > 0


def test_queue_delay_observed_under_contention():
    kernel, net, world, _ = standard_world()
    for link in net.topology.links():
        link.bandwidth = 1_000_000.0
    from repro.store import Element
    blobs = []
    for i in range(4):
        e = Element(f"big{i}", f"oid-big{i}", "s1")
        world.server("s1").store_direct(e, value="x", size=400_000)
        blobs.append(e)
    repo = Repository(world, CLIENT)

    def fetch_one(e):
        yield from repo.fetch(e)

    def proc():
        from repro.sim.events import Fork, Join
        handles = []
        for e in blobs:
            h = yield Fork(fetch_one(e))
            handles.append(h)
        for h in handles:
            yield Join(h)

    kernel.run_process(proc())
    hist = kernel.obs.metrics.get("net.link.queue_delay")
    assert hist is not None and hist.count > 0
    assert hist.mean > 0


def test_wire_size_stamped_once():
    kernel, net, world, _ = standard_world()
    sent = []
    original = net.transport.stats.record_send

    def spy(msg):
        sent.append(msg)
        original(msg)

    net.transport.stats.record_send = spy

    def proc():
        return (yield from net.call(CLIENT, PRIMARY, "store",
                                    "list_members", "coll"))

    kernel.run_process(proc())
    assert sent and all(m.wire_size and m.wire_size > 0 for m in sent)


def test_byte_counts_independent_of_process_history():
    """Oids, iteration tokens, and msg ids must not leak process-global
    counter state into wire sizes: the same seeded scenario drained
    twice in one process moves byte-identical traffic."""
    def one_run():
        kernel, net, world, elements = standard_world(seed=7, members=8)
        repo = Repository(world, CLIENT)
        outcome = {}

        def drain():
            view = yield from repo.read_membership("coll")
            for element in sorted(view.members):
                yield from repo.fetch(element)
            outcome["done"] = True

        kernel.run_process(drain())
        assert outcome.get("done")
        return (kernel.obs.metrics.value("net.bytes_sent"),
                kernel.obs.metrics.value("net.bytes_received"))

    assert one_run() == one_run()
