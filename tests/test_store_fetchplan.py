"""FetchPlanner + FetchPipeline: the batched read path, unit-tested."""

from repro.sim import Sleep
from repro.store import (
    ClientCache,
    FetchPipeline,
    Repository,
    order_closest_first,
    rank_hosts,
)

from helpers import CLIENT, standard_world


def drain_pipe(kernel, repo, elements, **kw):
    """Submit, seal, and drain a pipeline inside one process."""
    results = []

    def proc():
        pipe = FetchPipeline(repo, **kw)
        pipe.start()
        pipe.submit(elements)
        pipe.seal()
        while True:
            result = yield from pipe.next_result()
            if result is None:
                break
            results.append(result)
        pipe.stop()
        return pipe

    pipe = kernel.run_process(proc())
    return pipe, results


# ---------------------------------------------------------------------------
# planning helpers (the one shared ranking/ordering implementation)
# ---------------------------------------------------------------------------

def test_rank_hosts_orders_by_latency_and_drops_unreachable():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    ranked = rank_hosts(net, CLIENT, ["s0", "s1", "s2"])
    assert set(ranked) == {"s0", "s1", "s2"}
    net.isolate("s1")
    assert "s1" not in rank_hosts(net, CLIENT, ["s0", "s1", "s2"])


def test_order_closest_first_puts_unreachable_homes_last():
    kernel, net, world, elements = standard_world(n_servers=4, members=4)
    net.isolate(elements[0].home)
    ordered = order_closest_first(net, CLIENT, elements)
    assert ordered[-1] == elements[0]


# ---------------------------------------------------------------------------
# batching + coalescing
# ---------------------------------------------------------------------------

def test_same_home_candidates_coalesce_into_multi_gets():
    kernel, net, world, elements = standard_world(
        n_servers=1, members=8)       # every element homed on s0
    repo = Repository(world, CLIENT)
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=8, batch_size=4)
    assert [r.status for r in results] == ["ok"] * 8
    assert {r.value for r in results} == {f"v{i}" for i in range(8)}
    metrics = kernel.obs.metrics
    # slow-start singleton + coalesced multi-gets, never 8 serial calls
    calls = metrics.counter("fetch.batch.calls").value
    assert calls < 8
    assert metrics.counter("fetch.batch.coalesced").value > 0
    assert metrics.counter("fetch.batch.elements").value == 8


def test_first_batch_is_a_singleton_slow_start():
    kernel, net, world, elements = standard_world(n_servers=1, members=6)
    repo = Repository(world, CLIENT)

    def proc():
        pipe = FetchPipeline(repo, use_cache=False, window=4, batch_size=4)
        pipe.start()
        pipe.submit(elements)
        pipe.seal()
        first = yield from pipe.next_result()
        pipe.stop()
        return first

    first = kernel.run_process(proc())
    # one service-time + one round-trip: the first yield never waits on
    # coalesced company (0.01 latency each way + default service time)
    assert first.ok
    assert first.fetched_at < 0.1


def test_window_bounds_concurrency_but_all_complete():
    kernel, net, world, elements = standard_world(n_servers=4, members=12)
    repo = Repository(world, CLIENT)
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=2, batch_size=1)
    assert len(results) == 12
    assert all(r.ok for r in results)


def test_wider_window_is_strictly_faster():
    def timed_drain(window):
        kernel, net, world, elements = standard_world(
            n_servers=8, members=8, latency=0.05)
        repo = Repository(world, CLIENT)

        def proc():
            pipe = FetchPipeline(repo, use_cache=False,
                                 window=window, batch_size=1)
            pipe.start()
            pipe.submit(elements)
            pipe.seal()
            while (yield from pipe.next_result()) is not None:
                pass
            pipe.stop()
            return world.now

        return kernel.run_process(proc())

    assert timed_drain(8) < timed_drain(1) / 2


# ---------------------------------------------------------------------------
# delivery order and statuses
# ---------------------------------------------------------------------------

def test_in_order_delivery_matches_planner_order():
    kernel, net, world, elements = standard_world(n_servers=4, members=8)
    repo = Repository(world, CLIENT)
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=8, batch_size=2)
    expected = order_closest_first(net, CLIENT, elements)
    assert [r.element for r in results] == expected


def test_removed_member_comes_back_gone_not_ok():
    kernel, net, world, elements = standard_world(n_servers=2, members=4)
    repo = Repository(world, CLIENT)
    victim = elements[1]

    def proc():
        yield from repo.remove("coll", victim)
        pipe = FetchPipeline(repo, use_cache=False, window=4, batch_size=2)
        pipe.start()
        pipe.submit(elements)
        pipe.seal()
        out = []
        while True:
            result = yield from pipe.next_result()
            if result is None:
                break
            out.append(result)
        pipe.stop()
        return out

    results = kernel.run_process(proc())
    by_name = {r.element.name: r for r in results}
    assert by_name[victim.name].gone
    assert sum(r.ok for r in results) == 3


def test_unreachable_home_is_delivered_immediately_in_iterator_mode():
    kernel, net, world, elements = standard_world(n_servers=2, members=4)
    repo = Repository(world, CLIENT)
    net.isolate(elements[0].home)      # s0: elements 0 and 2
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=4, batch_size=2)
    statuses = {r.element.name: r.status for r in results}
    assert statuses[elements[0].name] == "unreachable"
    assert statuses[elements[1].name] == "ok"
    assert len(results) == 4


# ---------------------------------------------------------------------------
# replica failover
# ---------------------------------------------------------------------------

def test_batch_failover_serves_from_replica_copies():
    kernel, net, world, _ = standard_world(n_servers=3)
    elements = [world.seed_member("coll", f"r{i}", value=f"V{i}", home="s1",
                                  replicas=("s2",)) for i in range(4)]
    repo = Repository(world, CLIENT)
    net.isolate("s1")
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=4, batch_size=4,
                               failover=True)
    assert all(r.ok for r in results)
    assert {r.value for r in results} == {f"V{i}" for i in range(4)}
    assert net.transport.stats.failovers >= 4


def test_failover_exhausted_replicas_still_unreachable():
    kernel, net, world, _ = standard_world(n_servers=3)
    element = world.seed_member("coll", "r0", value="V", home="s1",
                                replicas=("s2",))
    repo = Repository(world, CLIENT)
    net.isolate("s1")
    net.isolate("s2")
    pipe, results = drain_pipe(kernel, repo, [element],
                               use_cache=False, window=2, batch_size=1,
                               failover=True)
    assert results[0].unreachable


# ---------------------------------------------------------------------------
# cache admission
# ---------------------------------------------------------------------------

def test_batch_results_admit_into_client_cache():
    kernel, net, world, elements = standard_world(n_servers=2, members=4)
    repo = Repository(world, CLIENT, cache=ClientCache(ttl=60.0))
    drain_pipe(kernel, repo, elements, use_cache=True,
               window=4, batch_size=2)
    pipe2, results2 = drain_pipe(kernel, repo, elements, use_cache=True,
                                 window=4, batch_size=2)
    assert all(r.from_cache for r in results2)
    assert pipe2.cache_hits == 4
    assert repo.cache.hit_rate > 0


def test_cache_off_pipeline_never_reads_cache():
    kernel, net, world, elements = standard_world(n_servers=2, members=4)
    repo = Repository(world, CLIENT, cache=ClientCache(ttl=60.0))
    drain_pipe(kernel, repo, elements, use_cache=True,
               window=4, batch_size=2)
    pipe2, results2 = drain_pipe(kernel, repo, elements, use_cache=False,
                                 window=4, batch_size=2)
    assert not any(r.from_cache for r in results2)
    assert pipe2.cache_hits == 0


# ---------------------------------------------------------------------------
# pop-time validation (the buffering soundness story)
# ---------------------------------------------------------------------------

def test_quiet_world_pops_are_free_of_probe_rpcs():
    kernel, net, world, elements = standard_world(n_servers=2, members=6)
    repo = Repository(world, CLIENT)
    drain_pipe(kernel, repo, elements, use_cache=False,
               window=6, batch_size=2, validation="probe")
    assert kernel.obs.metrics.counter("fetch.batch.probes").value == 0


def test_probe_validation_reclassifies_buffered_removal_as_gone():
    kernel, net, world, elements = standard_world(n_servers=2, members=3)
    repo = Repository(world, CLIENT)
    victim = elements[2]               # farthest in submission order

    def proc():
        pipe = FetchPipeline(repo, use_cache=False, window=3, batch_size=1,
                             validation="probe")
        pipe.start()
        pipe.submit(elements)
        pipe.seal()
        yield Sleep(1.0)               # everything fetched and buffered
        yield from repo.remove("coll", victim)   # epoch moves, object gone
        out = []
        while True:
            result = yield from pipe.next_result()
            if result is None:
                break
            out.append(result)
        pipe.stop()
        return out

    results = kernel.run_process(proc())
    by_name = {r.element.name: r for r in results}
    assert by_name[victim.name].gone
    assert sum(r.ok for r in results) == 2
    assert kernel.obs.metrics.counter("fetch.batch.probes").value > 0


# ---------------------------------------------------------------------------
# engine mode (the prefetch-engine contract)
# ---------------------------------------------------------------------------

def test_engine_mode_retries_through_a_heal():
    kernel, net, world, elements = standard_world(n_servers=2, members=2)
    repo = Repository(world, CLIENT)
    net.isolate("s0")

    def healer():
        yield Sleep(0.6)
        net.rejoin("s0")

    def proc():
        kernel.spawn(healer(), daemon=True)
        pipe = FetchPipeline(repo, use_cache=False, window=2, batch_size=1,
                             retry_interval=0.2, give_up_after=5.0)
        pipe.start()
        pipe.submit(elements)
        pipe.seal()
        out = []
        while True:
            result = yield from pipe.next_result()
            if result is None:
                break
            out.append(result)
        pipe.stop()
        return (pipe, out)

    pipe, results = kernel.run_process(proc())
    assert all(r.ok for r in results)
    assert pipe.retries > 0


def test_engine_mode_gives_up_after_budget():
    kernel, net, world, elements = standard_world(n_servers=2, members=2)
    repo = Repository(world, CLIENT)
    net.isolate("s0")                  # element m000 never reachable
    pipe, results = drain_pipe(kernel, repo, elements,
                               use_cache=False, window=2, batch_size=1,
                               retry_interval=0.2, give_up_after=1.0)
    statuses = {r.element.name: r.status for r in results}
    assert statuses["m000"] == "unreachable"
    assert statuses["m001"] == "ok"
    assert pipe.gave_up == 1


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

def test_pipeline_drains_are_deterministic():
    def one_run():
        kernel, net, world, elements = standard_world(
            n_servers=4, members=10, seed=7)
        repo = Repository(world, CLIENT)
        pipe, results = drain_pipe(kernel, repo, elements,
                                   use_cache=False, window=4, batch_size=2)
        return [(r.element.name, r.status, r.fetched_at) for r in results]

    assert one_run() == one_run()
