"""Trace serialization round-trips and offline re-checking."""

import json


from repro.spec import (
    check_conformance,
    spec_by_id,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from repro.weaksets import DynamicSet, SnapshotSet

from helpers import CLIENT, drain_all, standard_world


def recorded_trace(cls=DynamicSet, **kwargs):
    kernel, net, world, elements = standard_world(members=5, **kwargs)
    ws = cls(world, CLIENT, "coll")
    drain_all(kernel, ws)
    return ws.last_trace, world


def test_round_trip_dict():
    trace, world = recorded_trace()
    data = trace_to_dict(trace)
    rebuilt = trace_from_dict(data)
    assert rebuilt.coll_id == trace.coll_id
    assert rebuilt.client == trace.client
    assert rebuilt.impl_name == trace.impl_name
    assert len(rebuilt.invocations) == len(trace.invocations)
    for a, b in zip(rebuilt.invocations, trace.invocations):
        assert a.yielded_pre == b.yielded_pre
        assert a.yielded_post == b.yielded_post
        assert type(a.outcome) is type(b.outcome)
        assert a.snapshots == b.snapshots


def test_round_trip_json_is_valid_json():
    trace, world = recorded_trace()
    text = trace_to_json(trace, indent=2)
    json.loads(text)              # parses
    rebuilt = trace_from_json(text)
    assert rebuilt.yielded_last == trace.yielded_last
    assert rebuilt.terminated == trace.terminated


def test_offline_conformance_check_matches_online():
    """A deserialized trace produces the same verdicts (given the
    membership history) — the offline-checking workflow."""
    trace, world = recorded_trace(cls=SnapshotSet)
    history = world.membership_history("coll")
    rebuilt = trace_from_json(trace_to_json(trace))
    for spec_id in ["fig3", "fig4", "fig5", "fig6"]:
        online = check_conformance(trace, spec_by_id(spec_id), history=history)
        offline = check_conformance(rebuilt, spec_by_id(spec_id), history=history)
        assert online.conformant == offline.conformant, spec_id


def test_failed_trace_round_trips():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    net.crash("s1")
    ws = SnapshotSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    trace = ws.last_trace
    assert trace.failed
    rebuilt = trace_from_json(trace_to_json(trace))
    assert rebuilt.failed
    assert rebuilt.invocations[-1].outcome.reason


def test_non_serializable_values_are_dropped_not_fatal():
    """Element values may be arbitrary objects; serialization keeps
    primitives and drops the rest (the checker never needs values)."""
    kernel, net, world, _ = standard_world(members=0)
    world.seed_member("coll", "obj", value=object(), home="s1")
    ws = DynamicSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    text = trace_to_json(ws.last_trace)
    rebuilt = trace_from_json(text)
    [inv] = [i for i in rebuilt.invocations if i.outcome.suspends]
    assert inv.outcome.value is None
