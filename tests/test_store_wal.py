"""Write-ahead intent log + recovery: crash-consistent multi-step mutations."""

import pytest

from repro.errors import FailureException
from repro.net.failures import FaultSchedule
from repro.sim.events import Sleep
from repro.store import Repository
from repro.store.wal import ABORTED, APPLIED, PENDING

from helpers import CLIENT, PRIMARY, standard_world


def test_erase_is_intent_logged_and_committed():
    kernel, net, world, elements = standard_world(members=4)
    victim = elements[1]                    # homed on s1, remote from primary
    repo = Repository(world, CLIENT)

    def proc():
        yield from repo.remove("coll", victim)

    kernel.run_process(proc())
    wal = world.server(PRIMARY).wal
    [record] = wal.records
    assert record.kind == "erase" and record.origin == "remove"
    assert record.status is APPLIED
    assert record.done("begin")
    assert record.done("home-deleted")
    assert record.done("membership")
    assert world.check_invariants() == []


def test_failed_erase_aborts_intent_and_keeps_member():
    kernel, net, world, elements = standard_world(members=4)
    victim = elements[2]                    # homed on s2
    net.isolate("s2")
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)
        except FailureException:
            return "failed"

    assert kernel.run_process(proc()) == "failed"
    wal = world.server(PRIMARY).wal
    [record] = wal.records
    assert record.status is ABORTED
    assert not record.done("home-deleted")
    assert victim in world.true_members("coll")   # deviation #3: remove fails whole
    net.rejoin("s2")
    assert world.check_invariants() == []


def test_crash_point_freezes_intent_mid_erase():
    """Crash between the home delete and the membership pop: the exact
    window that used to break "member => live object at home"."""
    kernel, net, world, elements = standard_world(members=4)
    victim = elements[0]                    # homed on the primary itself
    server = world.server(PRIMARY)
    server.wal.arm_crash("home-deleted")
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)
            return "removed"
        except FailureException:
            return "crashed"

    assert kernel.run_process(proc()) == "crashed"
    assert not net.node(PRIMARY).up
    [record] = server.wal.pending()
    assert record.status is PENDING
    assert record.done("home-deleted") and not record.done("membership")
    # the inconsistent window is real: member listed, home object dead
    assert victim.name in server.collections["coll"].members
    assert not server.has_object(victim.oid)
    assert any("no live object" in p for p in world.check_invariants())


def test_recovery_replays_interrupted_erase():
    kernel, net, world, elements = standard_world(members=4)
    victim = elements[0]
    server = world.server(PRIMARY)
    server.wal.arm_crash("home-deleted")
    schedule = FaultSchedule().recover_at(2.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)
        except FailureException:
            pass
        yield Sleep(8.0)                    # recovery replay + scrub settle

    kernel.run_process(proc())
    assert net.node(PRIMARY).up
    assert server.wal.pending() == []
    assert victim not in world.true_members("coll")   # removal rolled forward
    assert world.check_invariants() == []
    metrics = kernel.obs.metrics
    assert metrics.value("recovery.replays") >= 1
    assert metrics.value("recovery.intents_replayed") >= 1
    assert metrics.get("recovery.latency").count >= 1


def test_crash_at_begin_rolls_whole_erase_forward():
    kernel, net, world, elements = standard_world(members=4)
    victim = elements[1]                    # homed on s1: replay needs real RPC
    server = world.server(PRIMARY)
    server.wal.arm_crash("begin")
    schedule = FaultSchedule().recover_at(1.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)
        except FailureException:
            pass
        yield Sleep(8.0)

    kernel.run_process(proc())
    assert victim not in world.true_members("coll")
    assert not world.server("s1").has_object(victim.oid)
    assert world.check_invariants() == []


def test_wal_disabled_crash_leaves_dangling_member():
    """The ablation: same crash, no recovery protocol, lasting violation."""
    kernel, net, world, elements = standard_world(members=4, recovery_enabled=False)
    victim = elements[0]
    server = world.server(PRIMARY)
    server.wal.arm_crash("home-deleted")    # crash points fire either way
    schedule = FaultSchedule().recover_at(2.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)
        except FailureException:
            pass
        yield Sleep(8.0)

    kernel.run_process(proc())
    assert net.node(PRIMARY).up
    assert server.wal.records == []         # nothing was retained
    problems = world.check_invariants()
    assert any("no live object" in p for p in problems)
    assert kernel.obs.metrics.value("recovery.replays") == 0


def test_blocked_replay_is_retried_by_scrub():
    """Recovery blocked by an unreachable holder leaves the intent
    pending; a later scrub round finishes the roll-forward."""
    kernel, net, world, elements = standard_world(members=4, scrub_interval=1.0)
    victim = elements[1]                    # homed on s1
    server = world.server(PRIMARY)
    server.wal.arm_crash("begin")           # crash before any delete
    net.isolate("s1")                       # and the home is unreachable
    schedule = (FaultSchedule()
                .recover_at(1.0, PRIMARY)   # replay runs, but s1 is cut off
                .rejoin_at(12.0, "s1"))
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", victim)   # times out at 5.0s
        except FailureException:
            pass
        yield Sleep(1.0)                    # t~6: replay + scrubs all blocked
        blocked_mid_way = len(world.server(PRIMARY).wal.pending())
        yield Sleep(10.0)                   # s1 rejoins at 12; scrub finishes
        return blocked_mid_way

    blocked_mid_way = kernel.run_process(proc())
    assert blocked_mid_way == 1             # replay could not reach s1
    assert server.wal.pending() == []       # scrub finished it after the heal
    assert victim not in world.true_members("coll")
    assert world.check_invariants() == []
    assert kernel.obs.metrics.value("recovery.intents_blocked") >= 1


def test_seal_is_intent_logged():
    kernel, net, world, _ = standard_world(policy="immutable")
    repo = Repository(world, CLIENT)

    def proc():
        yield from repo.seal("coll")

    kernel.run_process(proc())
    wal = world.server(PRIMARY).wal
    assert any(r.kind == "seal" and r.status is APPLIED for r in wal.records)


def test_armed_crash_point_is_one_shot():
    kernel, net, world, elements = standard_world(members=4)
    server = world.server(PRIMARY)
    server.wal.arm_crash("home-deleted")
    assert server.wal.armed() == ["home-deleted"]
    schedule = FaultSchedule().recover_at(1.0, PRIMARY)
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", elements[0])
        except FailureException:
            pass
        yield Sleep(4.0)
        yield from repo.remove("coll", elements[1])   # must not crash again
        yield Sleep(4.0)

    kernel.run_process(proc())
    assert server.wal.armed() == []
    assert net.node(PRIMARY).up
    assert elements[0] not in world.true_members("coll")
    assert elements[1] not in world.true_members("coll")
    assert world.check_invariants() == []


def test_crash_on_wal_step_schedule_helper():
    kernel, net, world, elements = standard_world(members=4)
    schedule = (FaultSchedule()
                .crash_on_wal_step(0.0, PRIMARY, "home-deleted")
                .recover_at(3.0, PRIMARY))
    kernel.spawn(schedule.run(net), name="schedule", daemon=True)
    repo = Repository(world, CLIENT)

    def proc():
        yield Sleep(0.5)
        try:
            yield from repo.remove("coll", elements[0])
            return "removed"
        except FailureException:
            return "crashed"

    outcome = kernel.run_process(proc())
    assert outcome == "crashed"
    kernel.run(until=12.0)
    assert net.node(PRIMARY).up
    assert elements[0] not in world.true_members("coll")
    assert world.check_invariants() == []


@pytest.mark.parametrize("enabled", [True, False])
def test_intent_retention_follows_recovery_flag(enabled):
    kernel, net, world, elements = standard_world(members=2,
                                                  recovery_enabled=enabled)
    repo = Repository(world, CLIENT)

    def proc():
        yield from repo.remove("coll", elements[0])

    kernel.run_process(proc())
    wal = world.server(PRIMARY).wal
    assert bool(wal.records) is enabled
    assert elements[0] not in world.true_members("coll")
