"""Overload soaks: the E23 knee crossing across seeds, at reduced length.

Marked ``overload`` so CI can select (``-m overload``) or deselect
(``-m "not overload"``) the soak explicitly; like the other soaks it
also runs in the default suite because every run is deterministic — a
failure is a reproducible counterexample, not flake.  Each soak
replays the exact E23 stage schedule — same arrival rates, same finite
capacity, so the same knee physics — with stage *durations* scaled
down 4x (scaling rates would scale the overload away).
"""

import pytest

from repro.bench.exp_overload import run_overload

pytestmark = pytest.mark.overload

#: Quarter-length stages: ~4k arrivals per arm, the knee still crossed.
SOAK_SCALE = 0.25


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_overload_soak_protection_holds(seed):
    result = run_overload(seed=seed, duration_scale=SOAK_SCALE)
    print()
    print(result)
    m = result.overload_metrics

    # Protected arm: no post-knee decline, bounded p95 for successes,
    # and the machinery demonstrably engaged.
    assert m["protected.goodput_final"] >= 0.8 * m["protected.goodput_peak"], m
    assert m["protected.p95_ok_final_s"] <= 1.0, m
    assert m["protected.shed"] > 0
    assert m["protected.brownout_served"] > 0
    assert m["protected.audit_violations"] == 0

    # Ablation arm: collapse, visible as falling goodput or as
    # successful-session latency blowing past the knee (at short soak
    # lengths the backlog shows up in latency before throughput).
    collapsed = (m["ablation.goodput_final"] <= 0.5 * m["ablation.goodput_peak"]
                 or m["ablation.p95_ok_final_s"] >= 2.0)
    assert collapsed, m
    assert m["ablation.shed"] == 0

    # More sessions fail without protection than with it.
    protected_failures = sum(r["failures"] for r in result.rows
                             if r["arm"] == "protected"
                             and r["stage"] != "total")
    ablation_failures = sum(r["failures"] for r in result.rows
                            if r["arm"] == "ablation"
                            and r["stage"] != "total")
    assert ablation_failures > protected_failures, (
        protected_failures, ablation_failures)

    # Crash leg: overload + primary crash + recovery leaks nothing.
    assert m["crash.invariant_leaks"] == 0, m
    assert m["crash.conformant"] == 1, m
    assert m["crash.shed"] > 0


def test_overload_soak_is_deterministic():
    """Same seed, same schedule — bit-identical verdict metrics."""
    first = run_overload(seed=0, duration_scale=SOAK_SCALE)
    second = run_overload(seed=0, duration_scale=SOAK_SCALE)
    m1 = {k: v for k, v in first.overload_metrics.items()
          if k != "elapsed_wall_s"}
    m2 = {k: v for k, v in second.overload_metrics.items()
          if k != "elapsed_wall_s"}
    assert m1 == m2
