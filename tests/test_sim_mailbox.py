"""Mailbox: the FIFO channel primitive, plus TraceLog behaviours."""

import pytest

from repro.errors import SimulationError, TimeoutFailure
from repro.sim import CLOSED, Kernel, Mailbox, Sleep, TraceLog


# ---------------------------------------------------------------------------
# Mailbox
# ---------------------------------------------------------------------------

def test_put_then_get():
    mb = Mailbox()
    mb.put(1)
    mb.put(2)

    def consumer():
        a = yield from mb.get()
        b = yield from mb.get()
        return a, b

    assert Kernel().run_process(consumer()) == (1, 2)


def test_get_blocks_until_put():
    mb = Mailbox()
    kernel = Kernel()

    def producer():
        yield Sleep(2.0)
        mb.put("late")

    def consumer():
        value = yield from mb.get()
        return value, kernel.now

    kernel.spawn(producer())
    value, t = kernel.run_process(consumer())
    assert value == "late"
    assert t == pytest.approx(2.0)


def test_fifo_order_with_many_items():
    mb = Mailbox()
    for i in range(10):
        mb.put(i)

    def consumer():
        out = []
        for _ in range(10):
            out.append((yield from mb.get()))
        return out

    assert Kernel().run_process(consumer()) == list(range(10))


def test_multiple_consumers_each_get_one():
    mb = Mailbox()
    kernel = Kernel()
    got = []

    def consumer():
        value = yield from mb.get()
        got.append(value)

    kernel.spawn(consumer())
    kernel.spawn(consumer())
    kernel.run(until=0.1)
    mb.put("a")
    mb.put("b")
    kernel.run(until=1.0)
    assert sorted(got) == ["a", "b"]


def test_close_wakes_consumers_with_sentinel():
    mb = Mailbox()
    kernel = Kernel()

    def consumer():
        return (yield from mb.get())

    proc = kernel.spawn(consumer())
    kernel.run(until=0.1)
    mb.close()
    kernel.run(until=0.2)
    assert proc.result is CLOSED


def test_close_drains_remaining_items_first():
    mb = Mailbox()
    mb.put(1)
    mb.close()

    def consumer():
        first = yield from mb.get()
        second = yield from mb.get()
        return first, second

    assert Kernel().run_process(consumer()) == (1, CLOSED)


def test_put_after_close_rejected():
    mb = Mailbox()
    mb.close()
    with pytest.raises(SimulationError):
        mb.put(1)


def test_get_timeout():
    mb = Mailbox()

    def consumer():
        try:
            yield from mb.get(timeout=1.0)
        except TimeoutFailure:
            return "timed out"

    assert Kernel().run_process(consumer()) == "timed out"


def test_get_nowait():
    mb = Mailbox()
    with pytest.raises(SimulationError):
        mb.get_nowait()
    mb.put(5)
    assert mb.get_nowait() == 5
    mb.close()
    assert mb.get_nowait() is CLOSED


def test_len_and_repr():
    mb = Mailbox("test")
    assert len(mb) == 0
    mb.put(1)
    assert len(mb) == 1
    assert "test" in repr(mb)


# ---------------------------------------------------------------------------
# TraceLog
# ---------------------------------------------------------------------------

def test_tracelog_disabled_records_nothing():
    log = TraceLog(enabled=False)
    log.record("event", x=1)
    assert len(log) == 0


def test_tracelog_subscribers_see_records_even_when_disabled():
    log = TraceLog(enabled=False)
    seen = []
    unsubscribe = log.subscribe(seen.append)
    log.record("event", x=1)
    assert len(seen) == 1 and seen[0].kind == "event"
    assert len(log) == 0            # still not stored
    unsubscribe()
    log.record("event", x=2)
    assert len(seen) == 1


def test_tracelog_filter_and_dump():
    log = TraceLog(enabled=True)
    log.record("a", v=1)
    log.record("b", v=2)
    log.record("a", v=3)
    assert len(list(log.records("a"))) == 2
    dump = log.dump()
    assert "a" in dump and "v=2" in dump
