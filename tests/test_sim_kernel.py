"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import ProcessKilled, SimulationError, TimeoutFailure
from repro.sim import Fork, Join, Kernel, Now, Signal, Sleep, Wait


def test_run_process_returns_value():
    def proc():
        yield Sleep(1.0)
        return 42

    k = Kernel()
    assert k.run_process(proc()) == 42
    assert k.now == pytest.approx(1.0)


def test_sleep_advances_virtual_time_only():
    times = []

    def proc():
        t0 = yield Now()
        yield Sleep(5.0)
        t1 = yield Now()
        times.extend([t0, t1])

    Kernel().run_process(proc())
    assert times == [0.0, 5.0]


def test_negative_sleep_rejected():
    with pytest.raises(SimulationError):
        Sleep(-1.0)


def test_processes_interleave_deterministically():
    order = []

    def worker(name, delay):
        yield Sleep(delay)
        order.append(name)

    k = Kernel()
    k.spawn(worker("b", 2.0))
    k.spawn(worker("a", 1.0))
    k.spawn(worker("c", 3.0))
    k.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_run_in_spawn_order():
    order = []

    def worker(name):
        yield Sleep(1.0)
        order.append(name)

    k = Kernel()
    for name in "abcde":
        k.spawn(worker(name))
    k.run()
    assert order == list("abcde")


def test_signal_wait_and_fire():
    sig = Signal("s")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append(value)

    def firer():
        yield Sleep(2.0)
        sig.fire("payload")

    k = Kernel()
    k.spawn(waiter())
    k.spawn(firer())
    k.run()
    assert got == ["payload"]


def test_wait_on_already_fired_signal_resumes_immediately():
    sig = Signal()
    sig.fire(7)

    def proc():
        value = yield Wait(sig)
        return value

    assert Kernel().run_process(proc()) == 7


def test_signal_failure_is_rethrown_in_waiter():
    sig = Signal()

    def proc():
        try:
            yield Wait(sig)
        except ValueError as exc:
            return str(exc)

    k = Kernel()
    p = k.spawn(proc())
    sig.fail(ValueError("boom"))
    k.run()
    assert p.result == "boom"


def test_signal_cannot_fire_twice():
    sig = Signal()
    sig.fire(1)
    with pytest.raises(SimulationError):
        sig.fire(2)


def test_wait_timeout_raises_timeout_failure():
    sig = Signal()

    def proc():
        try:
            yield Wait(sig, timeout=3.0)
        except TimeoutFailure:
            t = yield Now()
            return t

    assert Kernel().run_process(proc()) == pytest.approx(3.0)


def test_wait_timeout_not_triggered_if_signal_fires_first():
    sig = Signal()

    def firer():
        yield Sleep(1.0)
        sig.fire("ok")

    def proc():
        value = yield Wait(sig, timeout=10.0)
        return value

    k = Kernel()
    k.spawn(firer())
    assert k.run_process(proc()) == "ok"


def test_fork_and_join():
    def child(x):
        yield Sleep(2.0)
        return x * 2

    def parent():
        proc = yield Fork(child(21))
        result = yield Join(proc)
        return result

    assert Kernel().run_process(parent()) == 42


def test_join_rethrows_child_exception():
    def child():
        yield Sleep(1.0)
        raise RuntimeError("child died")

    def parent():
        proc = yield Fork(child())
        try:
            yield Join(proc)
        except RuntimeError as exc:
            return f"caught: {exc}"

    assert Kernel().run_process(parent()) == "caught: child died"


def test_join_timeout():
    def child():
        yield Sleep(100.0)

    def parent():
        proc = yield Fork(child())
        try:
            yield Join(proc, timeout=1.0)
        except TimeoutFailure:
            return "timed out"

    assert Kernel().run_process(parent()) == "timed out"


def test_yield_from_composes_subgenerators():
    def fetch(delay, value):
        yield Sleep(delay)
        return value

    def proc():
        a = yield from fetch(1.0, 10)
        b = yield from fetch(2.0, 32)
        return a + b

    k = Kernel()
    assert k.run_process(proc()) == 42
    assert k.now == pytest.approx(3.0)


def test_yielding_garbage_raises_in_process():
    def proc():
        yield "not an effect"

    k = Kernel()
    p = k.spawn(proc())
    k.run()
    assert isinstance(p.error, SimulationError)


def test_run_process_detects_deadlock():
    sig = Signal()

    def proc():
        yield Wait(sig)

    k = Kernel()
    with pytest.raises(SimulationError, match="deadlock|finished"):
        k.run_process(proc())


def test_run_until_stops_the_clock():
    def proc():
        yield Sleep(100.0)

    k = Kernel()
    k.spawn(proc())
    k.run(until=10.0)
    assert k.now == pytest.approx(10.0)
    k.run()
    assert k.now == pytest.approx(100.0)


def test_kill_process_runs_finally_blocks():
    cleaned = []

    def proc():
        try:
            yield Sleep(100.0)
        finally:
            cleaned.append(True)

    k = Kernel()
    p = k.spawn(proc())
    k.run(until=1.0)
    p._kill()
    assert cleaned == [True]
    assert isinstance(p.error, ProcessKilled)


def test_call_soon_and_cancel():
    fired = []
    k = Kernel()
    k.call_soon(lambda: fired.append("a"), delay=1.0)
    cancel = k.call_soon(lambda: fired.append("b"), delay=2.0)
    cancel()
    k.run()
    assert fired == ["a"]


def test_spawn_requires_generator():
    k = Kernel()
    with pytest.raises(SimulationError):
        k.spawn(lambda: None)  # type: ignore[arg-type]


def test_trace_records_spawn_and_finish():
    def proc():
        yield Sleep(1.0)

    k = Kernel(trace=True)
    k.spawn(proc(), name="worker")
    k.run()
    kinds = [r.kind for r in k.trace.records()]
    assert "spawn" in kinds and "finish" in kinds


def test_blocked_processes_reports_waiters():
    sig = Signal()

    def waiter():
        yield Wait(sig)

    def sleeper():
        yield Sleep(100.0)

    k = Kernel()
    w = k.spawn(waiter())
    k.spawn(sleeper(), daemon=True)
    k.run(until=1.0)
    blocked = k.blocked_processes()
    assert w in blocked
    assert all(not p.daemon for p in blocked)


def test_process_result_before_finish_raises():
    def proc():
        yield Sleep(10.0)

    k = Kernel()
    p = k.spawn(proc())
    k.run(until=1.0)
    with pytest.raises(SimulationError):
        _ = p.result


def test_join_already_finished_process():
    def child():
        yield Sleep(0.5)
        return "done"

    def parent():
        c = yield Fork(child())
        yield Sleep(2.0)          # child finishes long before the join
        return (yield Join(c))

    assert Kernel().run_process(parent()) == "done"


def test_yielding_bare_signal_waits_on_it():
    sig = Signal()

    def firer():
        yield Sleep(1.0)
        sig.fire("bare")

    def waiter():
        value = yield sig      # sugar: bare signal == Wait(signal)
        return value

    k = Kernel()
    k.spawn(firer())
    assert k.run_process(waiter()) == "bare"


def test_kill_twice_is_idempotent():
    def proc():
        yield Sleep(100.0)

    k = Kernel()
    p = k.spawn(proc())
    k.run(until=0.1)
    p._kill()
    p._kill()                  # second kill is a no-op
    assert isinstance(p.error, ProcessKilled)


def test_fork_names_and_daemon_flag():
    def child():
        yield Sleep(100.0)

    def parent():
        c = yield Fork(child(), "my-child", True)
        return c

    k = Kernel()
    p = k.spawn(parent())
    k.run(until=0.1)
    child_proc = p.result
    assert child_proc.name == "my-child"
    assert child_proc.daemon


def test_kernel_repr_mentions_time_and_procs():
    k = Kernel()
    k.spawn((Sleep(1.0) for _ in range(1)))
    text = repr(k)
    assert "Kernel(" in text and "procs=1" in text
