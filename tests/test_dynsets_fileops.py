"""stat / read_file and the explain_trace narrator."""


from repro.errors import FailureException, NoSuchPathError
from repro.dynsets import FileSystem, read_file, stat
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.spec import explain_trace, spec_by_id
from repro.store import Repository, World
from repro.weaksets import DynamicSet, SnapshotSet

from helpers import CLIENT, drain_all, standard_world


def make_fs():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["client", "root", "n1"], FixedLatency(0.01)))
    world = World(net)
    fs = FileSystem(world, root_node="root")
    fs.mkdir("/docs", node="n1")
    fs.create_file("/docs/paper.txt", content="weak sets", home="n1", size=9)
    return kernel, net, world, fs


# ---------------------------------------------------------------------------
# stat / read_file
# ---------------------------------------------------------------------------

def test_stat_file():
    kernel, net, world, fs = make_fs()

    def proc():
        return (yield from stat(fs, "client", "/docs/paper.txt"))

    result = kernel.run_process(proc())
    assert result.kind == "file"
    assert result.size == 9
    assert result.home == "n1"
    assert not result.is_dir


def test_stat_directory_is_local_metadata():
    kernel, net, world, fs = make_fs()

    def proc():
        return (yield from stat(fs, "client", "/docs"))

    result = kernel.run_process(proc())
    assert result.is_dir
    assert result.home == "n1"


def test_read_file_contents():
    kernel, net, world, fs = make_fs()

    def proc():
        return (yield from read_file(fs, "client", "/docs/paper.txt"))

    assert kernel.run_process(proc()) == "weak sets"


def test_read_missing_path_raises():
    kernel, net, world, fs = make_fs()

    def proc():
        try:
            yield from read_file(fs, "client", "/docs/none.txt")
        except NoSuchPathError:
            return "missing"

    assert kernel.run_process(proc()) == "missing"


def test_read_directory_rejected():
    kernel, net, world, fs = make_fs()

    def proc():
        try:
            yield from read_file(fs, "client", "/docs")
        except NoSuchPathError:
            return "not a file"

    assert kernel.run_process(proc()) == "not a file"


def test_stat_unreachable_home_fails():
    kernel, net, world, fs = make_fs()
    net.crash("n1")

    def proc():
        try:
            yield from stat(fs, "client", "/docs/paper.txt")
        except FailureException:
            return "failure"

    assert kernel.run_process(proc()) == "failure"


def test_stat_deleted_file_is_no_such_path():
    kernel, net, world, fs = make_fs()
    element = fs.entry("/docs/paper.txt")
    repo = Repository(world, "client")

    def proc():
        yield from repo.remove("dir:/docs", element)
        try:
            yield from stat(fs, "client", "/docs/paper.txt")
        except NoSuchPathError:
            return "gone"

    assert kernel.run_process(proc()) == "gone"


# ---------------------------------------------------------------------------
# explain_trace
# ---------------------------------------------------------------------------

def test_explain_conformant_trace_all_justified():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    explanations = explain_trace(ws.last_trace, spec_by_id("fig6"))
    assert len(explanations) == 5           # 4 yields + returns
    assert all(e.justified for e in explanations)
    assert all("justified by σ@" in e.detail for e in explanations)
    assert "✓" in str(explanations[0])


def test_explain_violating_trace_points_at_the_bad_invocation():
    kernel, net, world, elements = standard_world(members=3)
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "zz-missed", value="M")
        yield from iterator.drain()

    kernel.run_process(proc())
    # fig6 demands the addition be yielded; the snapshot returns without it
    explanations = explain_trace(ws.last_trace, spec_by_id("fig6"))
    bad = [e for e in explanations if not e.justified]
    assert bad
    assert bad[-1].outcome == "returns"
    assert "requires suspends" in bad[-1].detail


def test_explain_first_basis_picks_working_candidate():
    kernel, net, world, elements = standard_world(members=4)
    ws = SnapshotSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    explanations = explain_trace(ws.last_trace, spec_by_id("fig4"))
    assert all(e.justified for e in explanations)


def test_explain_empty_trace():
    from repro.spec import IterationTrace
    trace = IterationTrace(coll_id="c", client="x")
    assert explain_trace(trace, spec_by_id("fig6")) == []
