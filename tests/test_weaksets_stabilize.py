"""iterate_until_stable: the paper's run-it-again idiom."""


from repro.sim import Sleep
from repro.weaksets import DynamicSet, GrowOnlySet, iterate_until_stable

from helpers import CLIENT, standard_world


def test_stable_in_two_rounds_on_quiet_world():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")

    def proc():
        return (yield from iterate_until_stable(ws))

    result = kernel.run_process(proc())
    assert result.stable
    assert result.rounds == 2
    assert result.final == frozenset(elements)
    assert result.discrepancies == frozenset()


def test_converges_after_one_mutation():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")
    state = {"mutated": False}

    def mutate_once():
        yield Sleep(0.15)
        if not state["mutated"]:
            state["mutated"] = True
            yield from ws.repo.add("coll", "zz-new", value="N")

    def proc():
        return (yield from iterate_until_stable(ws, max_rounds=6))

    kernel.spawn(mutate_once(), daemon=True)
    result = kernel.run_process(proc())
    assert result.stable
    assert len(result.final) == 5
    # the discrepancy surfaced in earlier answers before stabilizing
    assert result.rounds >= 2


def test_unstable_under_continuous_churn():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")
    counter = {"n": 0}

    def churn():
        while True:
            yield Sleep(0.2)
            counter["n"] += 1
            yield from ws.repo.add("coll", f"zz-{counter['n']}", value=counter["n"])

    def proc():
        return (yield from iterate_until_stable(ws, max_rounds=3,
                                                pause_between=0.2))

    kernel.spawn(churn(), daemon=True)
    result = kernel.run_process(proc())
    assert not result.stable
    assert result.rounds == 3
    assert result.discrepancies          # the honest answer: still moving


def test_failed_rounds_do_not_count_as_agreement():
    kernel, net, world, elements = standard_world(
        n_servers=3, members=3, policy="grow-only")
    net.crash("s1")   # one member unreachable: fig5 runs fail
    ws = GrowOnlySet(world, CLIENT, "coll")

    def proc():
        return (yield from iterate_until_stable(ws, max_rounds=3))

    result = kernel.run_process(proc())
    assert not result.stable
    assert result.failed_rounds == 3
    assert result.answers == []
