"""Lower-level transport behaviours: drops, late replies, counters."""


from repro.errors import NodeCrashFailure, TimeoutFailure
from repro.net import Address, FixedLatency, Message, Network, full_mesh
from repro.sim import Kernel, Sleep


class EchoService:
    def echo(self, value):
        return value

    def slow(self, value, delay):
        yield Sleep(delay)
        return value


def make_net(**kwargs):
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)), **kwargs)
    net.register_service("b", "echo", EchoService())
    return kernel, net


def test_message_reply_envelope():
    req = Message(src=Address("a", "client"), dst=Address("b", "echo"),
                  method="echo", payload=((1,), {}))
    rep = req.reply("result")
    assert rep.is_reply
    assert rep.reply_to == req.msg_id
    assert rep.src == req.dst and rep.dst == req.src
    assert rep.method.endswith("!ok")
    err = req.reply(ValueError("x"), error=True)
    assert err.method.endswith("!error")


def test_message_ids_unique():
    msgs = [Message(src=Address("a", "c"), dst=Address("b", "s"), method="m")
            for _ in range(10)]
    ids = [m.msg_id for m in msgs]
    assert len(set(ids)) == 10


def test_counters_track_sends_and_drops():
    kernel, net = make_net()

    def proc():
        yield from net.call("a", "b", "echo", "echo", 1)

    kernel.run_process(proc())
    sent_before_failures = net.transport.messages_sent
    assert sent_before_failures >= 2        # request + reply
    assert net.transport.messages_dropped == 0

    net.crash("b")

    def proc2():
        try:
            yield from net.call("a", "b", "echo", "echo", 1)
        except NodeCrashFailure:
            pass

    kernel.run_process(proc2())
    # fail-fast means the request is never sent; counters unchanged
    assert net.transport.messages_sent == sent_before_failures


def test_drop_at_send_when_not_fail_fast():
    kernel, net = make_net(fail_fast=False)
    net.crash("b")

    def proc():
        try:
            yield from net.call("a", "b", "echo", "echo", 1, timeout=0.5)
        except NodeCrashFailure:
            return "classified"

    # the timeout gets classified using current transport knowledge
    assert kernel.run_process(proc()) == "classified"
    assert net.transport.messages_dropped >= 1


def test_late_reply_after_caller_timeout_is_harmless():
    kernel, net = make_net()

    def proc():
        try:
            yield from net.call("a", "b", "echo", "slow", "x", 2.0, timeout=0.5)
        except TimeoutFailure:
            return "timed out"

    assert kernel.run_process(proc()) == "timed out"
    # let the slow handler finish and send its (now unwanted) reply
    kernel.run(until=5.0)
    # nothing blew up; pending-reply table is clean
    assert net.transport._pending_replies == {}


def test_crash_mid_flight_drops_at_delivery():
    kernel, net = make_net()

    def crasher():
        yield Sleep(0.005)              # while the request is in flight
        net.crash("b")

    def proc():
        try:
            yield from net.call("a", "b", "echo", "echo", 1, timeout=0.5)
        except (NodeCrashFailure, TimeoutFailure):
            return "failed"

    kernel.spawn(crasher(), daemon=True)
    assert kernel.run_process(proc()) == "failed"
    assert net.transport.messages_dropped >= 1


def test_node_crash_hooks_invoked():
    kernel, net = make_net()
    events = []

    class HookedService:
        def on_crash(self):
            events.append("crash")

        def on_recover(self):
            events.append("recover")

    net.register_service("a", "hooked", HookedService())
    net.crash("a")
    net.crash("a")          # idempotent: hook fires once
    net.recover("a")
    assert events == ["crash", "recover"]
    assert net.node("a").crash_count == 1
