"""DynamicSet (Figure 6): optimistic, grow-and-shrink, never fails."""


from repro.sim import Sleep
from repro.spec import Failed, Returned, check_conformance, spec_by_id, weak_guarantee_violations
from repro.weaksets import DynamicSet

from helpers import CLIENT, drain_all, standard_world


def test_yields_everything_on_quiet_world():
    kernel, net, world, elements = standard_world(members=6)
    ws = DynamicSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert frozenset(result.elements) == frozenset(elements)
    assert isinstance(result.outcome, Returned)
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert report.conformant, report.counterexample()


def test_sees_additions_and_tolerates_removals():
    kernel, net, world, elements = standard_world(members=4)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        victim = next(e for e in elements if e != first.element)
        yield from ws.repo.remove("coll", victim)
        late = yield from ws.repo.add("coll", "zz-late", value="L")
        rest = yield from iterator.drain()
        return victim, late, [first.element] + rest.elements

    victim, late, got = kernel.run_process(proc())
    assert late in got                       # addition seen (first-bound)
    assert victim not in got                 # removal respected (home is authoritative)
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert report.conformant, report.counterexample()


def test_blocks_through_partition_and_finishes_after_heal():
    """Optimism: inaccessible members are waited out, not failed."""
    kernel, net, world, elements = standard_world(n_servers=3, members=6)
    ws = DynamicSet(world, CLIENT, "coll", retry_interval=0.2)
    iterator = ws.elements()

    def healer():
        yield Sleep(5.0)
        net.heal()

    def proc():
        first = yield from iterator.invoke()
        net.split([CLIENT, "s0"], ["s1"], ["s2"])  # most homes now unreachable
        rest = yield from iterator.drain()
        return [first.element] + rest.elements, rest.outcome

    kernel.spawn(healer(), daemon=True)
    got, outcome = kernel.run_process(proc())
    assert isinstance(outcome, Returned)          # never failed
    assert frozenset(got) == frozenset(elements)  # everything eventually yielded
    assert iterator.retries > 0                   # it did block and retry
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert report.conformant, report.counterexample()


def test_returns_when_blocked_elements_are_removed():
    """Fig 6's branch condition re-evaluates s_pre: if the members the
    iterator was blocking on are removed (here, right after the
    partition heals, before the next retry), it returns without them."""
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    ws = DynamicSet(world, CLIENT, "coll", retry_interval=0.5)
    iterator = ws.elements()
    on_s1 = [e for e in elements if e.home == "s1"]
    assert on_s1

    from repro.store import Repository
    primary_repo = Repository(world, "s0")

    def heal_and_remove():
        # Heal between two retry ticks, remove immediately: the iterator's
        # next retry sees the post-removal membership.
        yield Sleep(2.95)
        net.heal()
        for e in on_s1:
            yield from primary_repo.remove("coll", e)

    def proc():
        first = yield from iterator.invoke()
        net.split([CLIENT, "s0", "s2"], ["s1"])   # block on s1's members
        rest = yield from iterator.drain()
        return [first.element] + rest.elements, rest.outcome

    kernel.spawn(heal_and_remove(), daemon=True)
    got, outcome = kernel.run_process(proc())
    assert isinstance(outcome, Returned)
    assert frozenset(got) == frozenset(elements) - frozenset(on_s1)
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    assert report.conformant, report.counterexample()


def test_give_up_after_bounds_blocking():
    kernel, net, world, elements = standard_world(n_servers=3, members=6)
    ws = DynamicSet(world, CLIENT, "coll", retry_interval=0.2, give_up_after=2.0)
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        net.split([CLIENT, "s0"], ["s1"], ["s2"])
        rest = yield from iterator.drain()
        return rest.outcome

    outcome = kernel.run_process(proc())
    assert isinstance(outcome, Failed)  # the escape hatch, not Fig 6 proper


def test_reads_from_nearest_replica():
    from repro.net import FixedLatency, Network, full_mesh
    from repro.sim import Kernel
    from repro.store import World

    kernel = Kernel()
    topo = full_mesh(["client", "p", "r"], latency_for=lambda a, b: (
        FixedLatency(0.001) if {a, b} == {"client", "r"} else FixedLatency(0.2)
    ))
    net = Network(kernel, topo)
    world = World(net, replica_lag=0.1)
    world.create_collection("c", primary="p", replicas=["r"])
    e = world.seed_member("c", "x", value="X", home="r")
    ws = DynamicSet(world, "client", "c")
    result = drain_all(kernel, ws)
    assert result.elements == [e]
    # 1 membership read via r (fast) + fetch from r (fast) + the
    # final primary confirmation (slow, one RTT ~0.4s): well under the
    # all-primary alternative (3 slow RTTs).
    assert result.total_time < 0.8


def test_weak_guarantee_holds():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "during", value="D")
        yield from iterator.drain()

    kernel.run_process(proc())
    history = world.membership_history("coll")
    assert weak_guarantee_violations(ws.last_trace, history) == []


def test_two_concurrent_queries_may_see_different_sets():
    """'Two people running the same query at the same time may obtain
    different sets of elements.'"""
    kernel, net, world, elements = standard_world(members=4)
    ws_a = DynamicSet(world, CLIENT, "coll")
    ws_b = DynamicSet(world, "s3", "coll")
    it_a, it_b = ws_a.elements(), ws_b.elements()
    results = {}

    def run_a():
        result = yield from it_a.drain()
        results["a"] = frozenset(result.elements)

    def run_b():
        # b starts slightly later: by then a has already yielded m000;
        # b removes it before its own query examines it.
        yield Sleep(0.1)
        victim = next(e for e in elements if e.name == "m000")
        yield from ws_b.repo.remove("coll", victim)
        result = yield from it_b.drain()
        results["b"] = frozenset(result.elements)

    kernel.spawn(run_a())
    kernel.spawn(run_b())
    kernel.run(until=60.0)
    assert results["a"] != results["b"]
    m000 = next(e for e in elements if e.name == "m000")
    assert m000 in results["a"]          # a saw it before the removal
    assert m000 not in results["b"]      # b's overlapping query did not
