"""The `python -m repro` front door."""

from repro.__main__ import main


def test_overview(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "Specifying Weak Sets" in out
    for spec_id in ["fig1", "fig3", "fig4", "fig5", "fig6"]:
        assert spec_id in out


def test_specs_mode(capsys):
    assert main(["--specs"]) == 0
    out = capsys.readouterr().out
    assert "remembers yielded" in out
    assert "Figure 6" in out


def test_demo_mode(capsys):
    assert main(["--demo"]) == 0
    out = capsys.readouterr().out
    assert "CONFORMS" in out
    assert "yielded 4 items" in out
