"""RPC anti-entropy: replicas pull version diffs instead of god-mode copies."""

from repro.errors import FailureException
from repro.sim.events import Sleep
from repro.store import Element, Repository, apply_delta
from repro.store.server import CollectionState

from helpers import CLIENT, PRIMARY, standard_world


def replica_members(world, node, coll_id="coll"):
    return dict(world.server(node).collections[coll_id].members)


# ---------------------------------------------------------------------------
# the sync protocol end to end
# ---------------------------------------------------------------------------

def test_replica_pulls_adds_over_rpc():
    kernel, net, world, _ = standard_world(replicas=2, replica_lag=0.2)
    repo = Repository(world, CLIENT)
    sent_before = net.transport.stats.total_sent

    def proc():
        yield from repo.add("coll", "fresh", value="x", home="s3")
        yield Sleep(1.0)                      # a few replica_lag periods

    kernel.run_process(proc())
    for node in ("s1", "s2"):
        assert "fresh" in replica_members(world, node)
    metrics = kernel.obs.metrics
    assert metrics.value("sync.rounds") > 0
    assert metrics.value("sync.entries") > 0
    # sync is real traffic now, not a memory copy
    assert net.transport.stats.total_sent > sent_before
    assert world.check_invariants() == []


def test_removal_propagates_as_tombstone():
    kernel, net, world, elements = standard_world(members=4, replicas=1,
                                                  replica_lag=0.2)
    victim = elements[2]
    repo = Repository(world, CLIENT)

    def proc():
        yield Sleep(0.5)                      # replica catches up with seeds
        assert victim.name in replica_members(world, "s1")
        yield from repo.remove("coll", victim)
        yield Sleep(1.0)

    kernel.run_process(proc())
    replica_state = world.server("s1").collections["coll"]
    assert victim.name not in replica_state.members
    assert victim.name in replica_state.removed
    assert world.check_invariants() == []


def test_partitioned_replica_goes_stale_then_catches_up():
    kernel, net, world, _ = standard_world(replicas=1, replica_lag=0.2)
    repo = Repository(world, CLIENT)
    metrics = kernel.obs.metrics

    def proc():
        net.isolate("s1")
        yield from repo.add("coll", "late", value="x", home="s2")
        yield Sleep(1.5)
        stale = "late" not in replica_members(world, "s1")
        failures_while_cut = metrics.value("sync.failures")
        net.rejoin("s1")
        yield Sleep(1.5)
        return stale, failures_while_cut

    stale, failures_while_cut = kernel.run_process(proc())
    assert stale                              # last synchronized state served
    assert failures_while_cut > 0             # each failed round was counted
    assert "late" in replica_members(world, "s1")
    assert world.check_invariants() == []


def test_crashed_replica_catches_up_after_recovery():
    kernel, net, world, _ = standard_world(replicas=1, replica_lag=0.2)
    repo = Repository(world, CLIENT)

    def proc():
        net.crash("s1")
        yield from repo.add("coll", "late", value="x", home="s2")
        yield Sleep(1.0)
        net.recover("s1")
        yield Sleep(1.0)

    kernel.run_process(proc())
    assert "late" in replica_members(world, "s1")
    assert world.check_invariants() == []


def test_sync_uses_rpc_not_direct_mutation():
    """The syncer's calls go through the wire: rpc.attempts from replicas
    to the primary, visible as sync.round spans with rpc children."""
    kernel, net, world, _ = standard_world(replicas=1, replica_lag=0.2)

    def proc():
        yield Sleep(1.0)

    kernel.run_process(proc())
    tracer = kernel.obs.tracer
    rounds = tracer.spans("sync.round")
    assert rounds
    attempts = tracer.spans("rpc.attempt")
    synced = [a for a in attempts
              if any(s.name == "sync.round" for s in tracer.ancestors(a))]
    assert synced                             # real wire attempts under sync


# ---------------------------------------------------------------------------
# apply_delta unit behaviour
# ---------------------------------------------------------------------------

def _state():
    return CollectionState(coll_id="c", policy="any", is_primary=False)


def test_apply_delta_orders_removes_before_adds():
    state = _state()
    old = Element("x", "oid-1", "s1")
    new = Element("x", "oid-2", "s1")
    state.members["x"] = old
    state.member_versions["x"] = 1
    applied = apply_delta(state, {
        "version": 4, "sealed": False, "ghosts": [],
        "removes": [("x", 2, old)],
        "adds": [("x", new, 3)],              # re-added under the same name
    })
    assert applied == 2
    assert state.members["x"] == new          # the re-add wins
    assert state.version == 4


def test_apply_delta_ignores_stale_tombstone():
    state = _state()
    new = Element("x", "oid-2", "s1")
    state.members["x"] = new
    state.member_versions["x"] = 5            # re-add already applied
    applied = apply_delta(state, {
        "version": 6, "sealed": False, "ghosts": [],
        "removes": [("x", 2, Element("x", "oid-1", "s1"))],
        "adds": [],
    })
    assert applied == 1
    assert state.members["x"] == new          # stale tombstone did nothing
    assert "x" not in state.removed


def test_apply_delta_remove_wins_version_tie():
    """Pin the tie-break: the skip guard is strictly ``known > version``,
    so a tombstone at exactly the member's known version still applies.
    A tie means the remove happened *at* the version this replica last
    heard about the member — the remove is news, not staleness."""
    state = _state()
    old = Element("x", "oid-1", "s1")
    state.members["x"] = old
    state.member_versions["x"] = 2            # known == tombstone version
    applied = apply_delta(state, {
        "version": 3, "sealed": False, "ghosts": [],
        "removes": [("x", 2, old)],
        "adds": [],
    })
    assert applied == 1
    assert "x" not in state.members           # the tie goes to the remove
    assert "x" in state.removed


def test_apply_delta_carries_seal_and_ghosts():
    state = _state()
    applied = apply_delta(state, {
        "version": 9, "sealed": True, "ghosts": ["g1"],
        "removes": [], "adds": [],
    })
    assert applied == 0
    assert state.sealed and state.ghosts == {"g1"}


def test_sync_delta_full_resync_for_future_replica():
    """A replica claiming a version the primary never issued (e.g. after
    a primary rollback in some other test universe) gets a full diff."""
    kernel, net, world, elements = standard_world(members=3, replicas=1)
    server = world.server(PRIMARY)

    def proc():
        delta = yield from server.sync_delta("coll", 10_000)
        return delta

    delta = kernel.run_process(proc())
    assert {name for name, _, _ in delta["adds"]} == {e.name for e in elements}


def test_sync_delta_is_incremental():
    kernel, net, world, elements = standard_world(members=3, replicas=1)
    server = world.server(PRIMARY)
    state = server.collections["coll"]

    def proc():
        delta = yield from server.sync_delta("coll", state.version)
        return delta

    delta = kernel.run_process(proc())
    assert not delta["adds"] and not delta["removes"]


def test_remove_unreachable_then_sync_failure_counted():
    kernel, net, world, elements = standard_world(members=4, replicas=1,
                                                  replica_lag=0.2)
    repo = Repository(world, CLIENT)
    victim = elements[2]                      # homed on s2

    def proc():
        net.isolate("s2")
        try:
            yield from repo.remove("coll", victim)
        except FailureException:
            pass
        net.rejoin("s2")
        yield Sleep(1.0)

    kernel.run_process(proc())
    # the failed remove changed nothing, so the replica agrees with the
    # primary and invariants hold through the partition and back
    assert victim.name in replica_members(world, "s1")
    assert world.check_invariants() == []
