"""Metric instruments: counters, gauges, histogram bucketing edge cases."""

import math

import pytest

from repro.obs import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


# ---------------------------------------------------------------------------
# counters and gauges
# ---------------------------------------------------------------------------

def test_counter_accumulates_and_rejects_decrease():
    c = Counter("x")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)
    assert c.value == 3.5


def test_gauge_moves_both_ways():
    g = Gauge("depth")
    g.set(7)
    g.add(-3)
    assert g.value == 4


# ---------------------------------------------------------------------------
# histogram bucketing edge cases
# ---------------------------------------------------------------------------

def test_histogram_boundary_values_are_inclusive_upper():
    h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
    h.observe(1.0)          # exactly on a bound -> that bucket
    h.observe(1.0000001)    # just past -> next bucket
    h.observe(2.0)
    assert h.counts == [1, 2, 0, 0]


def test_histogram_below_first_bound_and_negative():
    h = Histogram("lat", bounds=(1.0, 2.0))
    h.observe(0.0)
    h.observe(-5.0)         # clock skew would be a bug, but never lost
    assert h.counts[0] == 2
    assert h.vmin == -5.0


def test_histogram_overflow_lands_in_inf_bucket():
    h = Histogram("lat", bounds=(1.0, 2.0))
    h.observe(100.0)
    assert h.counts == [0, 0, 1]
    assert h.count == 1
    assert h.vmax == 100.0


def test_histogram_rejects_nan():
    h = Histogram("lat")
    with pytest.raises(ValueError):
        h.observe(float("nan"))
    assert h.count == 0


def test_histogram_accepts_infinity_into_overflow():
    h = Histogram("lat", bounds=(1.0,))
    h.observe(math.inf)
    assert h.counts == [0, 1]
    assert h.vmax == math.inf


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("h", bounds=())
    with pytest.raises(ValueError):
        Histogram("h", bounds=(1.0, 1.0))       # duplicates
    with pytest.raises(ValueError):
        Histogram("h", bounds=(2.0, 1.0))       # decreasing


def test_histogram_mean_min_max():
    h = Histogram("lat", bounds=(10.0,))
    for v in (1.0, 2.0, 3.0):
        h.observe(v)
    assert h.mean == 2.0
    assert (h.vmin, h.vmax) == (1.0, 3.0)


def test_histogram_quantiles_interpolate_and_clamp():
    h = Histogram("lat", bounds=(1.0, 2.0, 4.0))
    for v in (0.5, 1.5, 1.6, 3.0):
        h.observe(v)
    assert h.quantile(0.0) == 0.5               # clamps to observed min
    assert h.quantile(1.0) == 3.0               # clamps to observed max
    mid = h.quantile(0.5)
    assert 1.0 <= mid <= 2.0                    # inside the containing bucket
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_quantile_empty_and_single():
    h = Histogram("lat")
    assert h.quantile(0.5) == 0.0
    h.observe(0.3)
    assert h.quantile(0.5) == pytest.approx(0.3)


def test_default_buckets_are_strictly_increasing():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(set(DEFAULT_LATENCY_BUCKETS))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_registry_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h") is reg.histogram("h")
    assert len(reg) == 2
    assert "a" in reg and "missing" not in reg


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(TypeError):
        reg.gauge("a")


def test_registry_value_reads_without_creating():
    reg = MetricsRegistry()
    assert reg.value("never.touched") == 0
    assert reg.get("never.touched") is None
    assert len(reg) == 0
    reg.counter("c").inc(3)
    assert reg.value("c") == 3
    reg.histogram("h").observe(1.0)
    with pytest.raises(TypeError):
        reg.value("h")                          # histograms via get()


def test_registry_snapshot_is_sorted_and_json_ready():
    import json
    reg = MetricsRegistry()
    reg.counter("b").inc()
    reg.gauge("a").set(2)
    reg.histogram("c").observe(0.01)
    snap = reg.snapshot()
    assert list(snap) == ["a", "b", "c"]
    assert json.loads(json.dumps(snap)) == snap
