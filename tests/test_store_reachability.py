"""Tests reproducing the paper's Figure 2 reachability example."""

from repro.store import figure2_world


def test_figure2_all_reachable_initially():
    fig = figure2_world()
    # "reachable(a_sigma) = {alpha, beta, gamma}"
    assert fig.reachable_from_n() == frozenset({fig.alpha, fig.beta, fig.gamma})


def test_figure2_partition_hides_gamma():
    fig = figure2_world()
    fig.partition_n_from_c()
    # "if ... there is a partition between N and C in state sigma' then
    #  reachable(a_sigma') = {alpha, beta}"
    assert fig.reachable_from_n() == frozenset({fig.alpha, fig.beta})
    # existence is unaffected: gamma is still a member
    assert fig.gamma in fig.world.true_members(fig.collection)


def test_figure2_heal_restores_reachability():
    fig = figure2_world()
    fig.partition_n_from_c()
    fig.heal()
    assert fig.reachable_from_n() == frozenset({fig.alpha, fig.beta, fig.gamma})


def test_figure2_crash_has_same_effect_as_partition():
    fig = figure2_world()
    fig.net.crash("C")
    assert fig.reachable_from_n() == frozenset({fig.alpha, fig.beta})
    fig.net.recover("C")
    assert len(fig.reachable_from_n()) == 3


def test_reachability_is_observer_relative():
    fig = figure2_world()
    fig.partition_n_from_c()
    # From inside C's partition, *only* gamma is reachable.
    from_c = fig.world.reachable_members(fig.collection, "C")
    assert from_c == frozenset({fig.gamma})


def test_crashed_observer_reaches_nothing():
    fig = figure2_world()
    fig.net.crash("N")
    assert fig.world.reachable_members(fig.collection, "N") == frozenset()


def test_observer_always_reaches_its_own_objects():
    fig = figure2_world()
    # Isolate A: from A, alpha (stored on A itself) is still reachable.
    fig.net.isolate("A")
    from_a = fig.world.reachable_members(fig.collection, "A")
    assert from_a == frozenset({fig.alpha})
