"""Tests for the object store: servers, collections, replication, truth."""

import pytest

from repro.errors import (
    FailureException,
    MutationNotAllowed,
    NoSuchCollectionError,
    NoSuchObjectError,
    SimulationError,
)
from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel, Sleep
from repro.store import Repository, World


def make_world(nodes=("client", "p", "r1", "r2"), seed=0, **kwargs):
    kernel = Kernel(seed=seed)
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net, **kwargs)
    return kernel, net, world


def run(kernel, gen):
    return kernel.run_process(gen)


# ---------------------------------------------------------------------------
# collection setup and seeding
# ---------------------------------------------------------------------------

def test_create_collection_and_seed():
    kernel, net, world = make_world()
    world.create_collection("files", primary="p", replicas=["r1"])
    e1 = world.seed_member("files", "a.txt", value="A", home="r2")
    e2 = world.seed_member("files", "b.txt", value="B")
    truth = world.true_members("files")
    assert truth == frozenset({e1, e2})
    assert e1.home == "r2"
    assert e2.home == "p"  # defaults to the primary


def test_duplicate_collection_rejected():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    with pytest.raises(SimulationError):
        world.create_collection("c", primary="r1")


def test_primary_cannot_be_replica():
    kernel, net, world = make_world()
    with pytest.raises(SimulationError):
        world.create_collection("c", primary="p", replicas=["p"])


def test_unknown_collection_raises():
    kernel, net, world = make_world()
    with pytest.raises(NoSuchCollectionError):
        world.true_members("nope")


def test_duplicate_seed_name_rejected():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    world.seed_member("c", "x")
    with pytest.raises(SimulationError):
        world.seed_member("c", "x")


# ---------------------------------------------------------------------------
# repository reads
# ---------------------------------------------------------------------------

def test_read_membership_from_primary():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x", value=1)
    repo = Repository(world, "client")

    def proc():
        view = yield from repo.read_membership("c", source="primary")
        return view

    view = run(kernel, proc())
    assert view.members == frozenset({e})
    assert view.source == "p"


def test_fetch_object_value():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x", value="payload", home="r1")
    repo = Repository(world, "client")

    def proc():
        return (yield from repo.fetch(e))

    assert run(kernel, proc()) == "payload"


def test_fetch_unreachable_home_fails():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x", value="v", home="r1")
    net.isolate("r1")
    repo = Repository(world, "client")

    def proc():
        try:
            yield from repo.fetch(e)
        except FailureException:
            return "failed"

    assert run(kernel, proc()) == "failed"


def test_nearest_host_prefers_low_latency():
    kernel = Kernel()
    topo = full_mesh(["client", "p", "r1"], latency_for=lambda a, b: (
        FixedLatency(0.001) if {a, b} == {"client", "r1"} else FixedLatency(0.1)
    ))
    net = Network(kernel, topo)
    world = World(net)
    world.create_collection("c", primary="p", replicas=["r1"])
    repo = Repository(world, "client")
    assert repo.nearest_host("c") == "r1"
    net.isolate("r1")
    assert repo.nearest_host("c") == "p"
    net.split(["client"])
    assert repo.nearest_host("c") is None


# ---------------------------------------------------------------------------
# repository writes + ground truth
# ---------------------------------------------------------------------------

def test_add_and_remove_via_rpc():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    repo = Repository(world, "client")

    def proc():
        e = yield from repo.add("c", "new.txt", value="N", home="r1")
        assert world.true_members("c") == frozenset({e})
        value = yield from repo.fetch(e)
        assert value == "N"
        yield from repo.remove("c", e)
        return e

    e = run(kernel, proc())
    assert world.true_members("c") == frozenset()

    # the data object was tombstoned at its home
    def proc2():
        try:
            yield from repo.fetch(e)
        except NoSuchObjectError:
            return "gone"

    assert run(kernel, proc2()) == "gone"


def test_remove_is_idempotent():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x")
    repo = Repository(world, "client")

    def proc():
        yield from repo.remove("c", e)
        yield from repo.remove("c", e)  # second remove is a no-op
        return True

    assert run(kernel, proc())


def test_remove_with_unreachable_member_home_fails_and_keeps_member():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x", home="r1")
    net.isolate("r1")
    repo = Repository(world, "client")

    def proc():
        try:
            yield from repo.remove("c", e)
        except FailureException:
            return "failed"

    assert run(kernel, proc()) == "failed"
    assert e in world.true_members("c")  # membership unchanged


def test_grow_only_policy_rejects_remove():
    kernel, net, world = make_world()
    world.create_collection("g", primary="p", policy="grow-only")
    e = world.seed_member("g", "x")
    repo = Repository(world, "client")

    def proc():
        try:
            yield from repo.remove("g", e)
        except MutationNotAllowed:
            return "rejected"

    assert run(kernel, proc()) == "rejected"
    assert e in world.true_members("g")


def test_immutable_policy_rejects_mutation_after_seal():
    kernel, net, world = make_world()
    world.create_collection("i", primary="p", policy="immutable")
    world.seed_member("i", "x")
    world.seal("i")
    repo = Repository(world, "client")

    def proc():
        try:
            yield from repo.add("i", "y")
        except MutationNotAllowed:
            return "rejected"

    assert run(kernel, proc()) == "rejected"


# ---------------------------------------------------------------------------
# replication and staleness
# ---------------------------------------------------------------------------

def test_replica_catches_up_after_lag():
    kernel, net, world = make_world(replica_lag=0.5)
    world.create_collection("c", primary="p", replicas=["r1"])
    repo = Repository(world, "client")

    def proc():
        e = yield from repo.add("c", "x", value=1)
        stale = yield from repo.read_membership("c", source="r1")
        assert e not in stale.members  # replica has not synced yet
        yield Sleep(1.0)
        fresh = yield from repo.read_membership("c", source="r1")
        assert e in fresh.members
        return True

    assert run(kernel, proc())


def test_partitioned_replica_stays_stale():
    kernel, net, world = make_world(replica_lag=0.2)
    world.create_collection("c", primary="p", replicas=["r1"])
    e0 = world.seed_member("c", "old")
    net.split(["p", "client"], ["r1"])
    repo = Repository(world, "client")

    def proc():
        e1 = yield from repo.add("c", "new")
        yield Sleep(2.0)  # plenty of anti-entropy rounds, all blocked
        return e1

    e1 = run(kernel, proc())
    replica_state = world.server("r1").collections["c"]
    assert replica_state.value() == frozenset({e0})
    net.heal()

    def wait():
        yield Sleep(1.0)

    kernel.run_process(wait())
    assert replica_state.value() == frozenset({e0, e1})


def test_membership_survives_primary_crash():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e = world.seed_member("c", "x")
    net.crash("p")
    assert world.true_members("c") == frozenset({e})  # durable storage
    net.recover("p")
    repo = Repository(world, "client")

    def proc():
        view = yield from repo.read_membership("c", source="primary")
        return view.members

    assert run(kernel, proc()) == frozenset({e})


def test_membership_history_records_every_value():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    e1 = world.seed_member("c", "a")
    e2 = world.seed_member("c", "b")
    repo = Repository(world, "client")

    def proc():
        yield from repo.remove("c", e1)

    run(kernel, proc())
    values = [v for (_, v) in world.membership_history("c")]
    assert values == [
        frozenset(),
        frozenset({e1}),
        frozenset({e1, e2}),
        frozenset({e2}),
    ]


def test_on_change_fires_for_membership_and_connectivity():
    kernel, net, world = make_world()
    world.create_collection("c", primary="p")
    events = []
    world.on_change(lambda: events.append(world.now))
    world.seed_member("c", "x")
    assert len(events) == 1
    net.isolate("r1")
    assert len(events) == 2
