"""Shared fixtures for weak-set tests: standard worlds and drivers."""

from __future__ import annotations

from typing import Optional

from repro.net import FixedLatency, Network, full_mesh
from repro.sim import Kernel
from repro.store import World
from repro.weaksets import install_lock_service

CLIENT = "client"
PRIMARY = "s0"


def standard_world(n_servers: int = 4, policy: str = "any", seed: int = 0,
                   latency: float = 0.01, members: int = 0,
                   replicas: int = 0, with_locks: bool = False,
                   replica_lag: float = 0.5, coll_id: str = "coll",
                   **world_kwargs):
    """A client plus ``n_servers`` object servers in a full mesh.

    Members are spread round-robin over the servers.  Returns
    (kernel, net, world, elements) where elements is the seeded list.
    """
    nodes = [CLIENT] + [f"s{i}" for i in range(n_servers)]
    kernel = Kernel(seed=seed)
    net = Network(kernel, full_mesh(nodes, FixedLatency(latency)))
    world = World(net, replica_lag=replica_lag, **world_kwargs)
    replica_nodes = [f"s{i}" for i in range(1, 1 + replicas)]
    world.create_collection(coll_id, primary=PRIMARY, replicas=replica_nodes,
                            policy=policy)
    elements = []
    for i in range(members):
        home = f"s{i % n_servers}"
        elements.append(world.seed_member(coll_id, f"m{i:03d}", value=f"v{i}", home=home))
    if with_locks:
        install_lock_service(world, PRIMARY)
    return kernel, net, world, elements


def sharded_world(n_shards: int = 3, mirrors: int = 0, policy: str = "any",
                  seed: int = 0, latency: float = 0.01, members: int = 0,
                  replica_lag: float = 0.5, coll_id: str = "coll",
                  spare: int = 1, **world_kwargs):
    """A client, ``n_shards`` shard servers, ``mirrors`` mirror nodes,
    and ``spare`` idle servers (rebalance targets) in a full mesh.

    Shards are ``s0..``, mirrors ``m0..``, spares ``x0..``.  Members are
    seeded with homes round-robin over the shard servers; their registry
    row lands wherever the ring says.  Returns (kernel, net, world,
    elements).
    """
    shard_nodes = tuple(f"s{i}" for i in range(n_shards))
    mirror_nodes = tuple(f"m{i}" for i in range(mirrors))
    spare_nodes = tuple(f"x{i}" for i in range(spare))
    nodes = [CLIENT, *shard_nodes, *mirror_nodes, *spare_nodes]
    kernel = Kernel(seed=seed)
    net = Network(kernel, full_mesh(nodes, FixedLatency(latency)))
    world = World(net, replica_lag=replica_lag, **world_kwargs)
    world.create_collection(coll_id, replicas=mirror_nodes, policy=policy,
                            shards=shard_nodes)
    elements = []
    for i in range(members):
        home = f"s{i % n_shards}"
        elements.append(world.seed_member(coll_id, f"m{i:03d}",
                                          value=f"v{i}", home=home))
    return kernel, net, world, elements


def drain_all(kernel, weakset, max_yields: Optional[int] = None):
    """Run one full iteration of ``weakset`` and return its DrainResult."""
    iterator = weakset.elements()

    def proc():
        return (yield from iterator.drain(max_yields=max_yields))

    return kernel.run_process(proc())
