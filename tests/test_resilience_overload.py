"""Client-side overload protection: retry budgets, retry_after,
AIMD adaptive concurrency, busy-aware failure detection, brownout."""

import pytest

from repro.errors import ServerBusyFailure, TimeoutFailure
from repro.net import (AIMDPolicy, AdaptiveLimiter, BoundedExecutor,
                       Deadline, ExecutorPolicy, FailureDetector,
                       FixedLatency, Network, PingService, ResilientClient,
                       RetryBudget, RetryBudgetPolicy, RetryPolicy,
                       full_mesh)
from repro.sim import Kernel, Sleep
from repro.store import Repository, World


# ---------------------------------------------------------------------------
# RetryBudget (token bucket)
# ---------------------------------------------------------------------------
def test_retry_budget_token_accounting():
    budget = RetryBudget(RetryBudgetPolicy(ratio=0.5, burst=2.0))
    assert budget.tokens == 2.0
    assert budget.withdraw() and budget.withdraw()
    assert not budget.withdraw()               # empty
    for _ in range(10):
        budget.deposit()
    assert budget.tokens == 2.0                # capped at burst
    assert budget.withdraw()
    budget.deposit()
    assert budget.tokens == pytest.approx(1.5)


def test_retry_budget_bounds_retry_fraction():
    # ratio=0.1: ten first attempts earn one retry.
    budget = RetryBudget(RetryBudgetPolicy(ratio=0.1, burst=1.0))
    assert budget.withdraw()                   # burn the initial burst
    assert not budget.withdraw()
    for _ in range(10):
        budget.deposit()
    assert budget.withdraw()
    assert not budget.withdraw()


# ---------------------------------------------------------------------------
# AdaptiveLimiter (AIMD)
# ---------------------------------------------------------------------------
def test_aimd_additive_increase_and_multiplicative_decrease():
    limiter = AdaptiveLimiter(AIMDPolicy(min_window=1, max_window=16,
                                         initial=8, cooldown=0.0))
    assert limiter.window == 8
    for i in range(100):
        limiter.on_success(0.01, float(i))
    assert limiter.window == 16                # capped
    limiter.on_overload(200.0)
    assert limiter.window == 8                 # halved
    for t in range(4):
        limiter.on_overload(300.0 + t)
    assert limiter.window == 1                 # floored at min_window


def test_aimd_cooldown_rate_limits_decreases():
    limiter = AdaptiveLimiter(AIMDPolicy(initial=16, cooldown=1.0))
    limiter.on_overload(10.0)
    assert limiter.window == 8
    limiter.on_overload(10.1)                  # inside cooldown: ignored
    assert limiter.window == 8
    limiter.on_overload(11.5)
    assert limiter.window == 4


def test_aimd_latency_threshold_counts_as_congestion():
    limiter = AdaptiveLimiter(AIMDPolicy(initial=8, cooldown=0.0,
                                         latency_threshold=0.5))
    limiter.on_success(0.1, 1.0)               # fine
    assert limiter.window == 8
    limiter.on_success(2.0, 2.0)               # too slow: decrease
    assert limiter.window == 4


def test_aimd_publishes_window_gauge():
    kernel = Kernel()
    limiter = AdaptiveLimiter(AIMDPolicy(initial=4, cooldown=0.0),
                              metrics=kernel.obs.metrics)
    assert kernel.obs.metrics.value("overload.limiter_window") == 4
    limiter.on_overload(1.0)
    assert kernel.obs.metrics.value("overload.limiter_window") == 2


# ---------------------------------------------------------------------------
# ResilientClient: retry_after + retry budget
# ---------------------------------------------------------------------------
class SlowService:
    def work(self, delay):
        yield Sleep(delay)
        return "done"


def make_busy_net(retry_after_floor=0.2):
    kernel = Kernel(seed=19)
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.001)))
    net.register_service("b", "svc", SlowService())
    net.node("b").executor = BoundedExecutor(
        kernel, ExecutorPolicy(concurrency=1, queue_limit=0,
                               retry_after_floor=retry_after_floor),
        name="b")
    return kernel, net


def test_retry_honors_server_retry_after_hint():
    kernel, net = make_busy_net(retry_after_floor=0.2)
    client = ResilientClient(
        net, policy=RetryPolicy(max_attempts=10, base_delay=0.001,
                                max_delay=0.002))

    def blocker():
        yield from net.call("a", "b", "svc", "work", 0.3, timeout=5.0)

    def caller():
        yield Sleep(0.01)           # let the blocker occupy the worker
        result = yield from client.call("a", "b", "svc", "work", 0.01,
                                        timeout=5.0)
        return (result, kernel.now)

    kernel.spawn(blocker(), name="blocker")
    result, finished_at = kernel.run_process(caller())
    assert result == "done"
    # Without the hint, 10 attempts at ~1ms backoff would have burned
    # out within ~20ms; honoring retry_after=0.2 spaced them past the
    # blocker's 0.3s occupancy.
    assert finished_at > 0.3
    assert net.transport.stats.retries > 0


def test_retry_budget_exhaustion_stops_the_storm():
    kernel, net = make_busy_net()
    client = ResilientClient(
        net, policy=RetryPolicy(max_attempts=10, base_delay=0.001,
                                max_delay=0.002),
        retry_budget=RetryBudgetPolicy(ratio=0.1, burst=1.0))

    def blocker():
        yield from net.call("a", "b", "svc", "work", 5.0, timeout=10.0)

    def caller():
        yield Sleep(0.01)
        with pytest.raises(ServerBusyFailure):
            yield from client.call("a", "b", "svc", "work", 0.01,
                                   timeout=5.0)

    kernel.spawn(blocker(), name="blocker")
    kernel.run_process(caller())
    # One burst token bought one retry; the second retry was refused.
    assert net.transport.stats.retries == 1
    assert net.transport.stats.retry_budget_exhausted == 1
    assert kernel.obs.metrics.value("overload.retry_budget_exhausted") == 1


def test_retry_sleep_capped_by_deadline():
    kernel, net = make_busy_net(retry_after_floor=10.0)
    client = ResilientClient(
        net, policy=RetryPolicy(max_attempts=5, base_delay=0.01,
                                max_delay=0.02))

    def blocker():
        yield from net.call("a", "b", "svc", "work", 5.0, timeout=10.0)

    def caller():
        yield Sleep(0.01)
        deadline = Deadline.after(kernel.now, 0.5)
        with pytest.raises((ServerBusyFailure, TimeoutFailure)):
            yield from client.call("a", "b", "svc", "work", 0.01,
                                   timeout=1.0, deadline=deadline)
        return kernel.now

    kernel.spawn(blocker(), name="blocker")
    finished_at = kernel.run_process(caller())
    # retry_after said "come back in 10s" but the deadline had ~0.5s
    # left: the sleep was clamped, not honored past the budget.
    assert finished_at < 1.0


def test_shed_is_breaker_neutral():
    """A shed reply proves the server is alive: breakers must not trip
    on ServerBusyFailure (that would turn overload into failover)."""
    from repro.net import BreakerPolicy
    kernel, net = make_busy_net()
    client = ResilientClient(
        net, policy=RetryPolicy(max_attempts=1),
        breaker=BreakerPolicy(failure_threshold=2, cooldown=10.0))

    def blocker():
        yield from net.call("a", "b", "svc", "work", 5.0, timeout=10.0)

    def caller():
        yield Sleep(0.01)
        for _ in range(10):
            with pytest.raises(ServerBusyFailure):
                yield from client.call("a", "b", "svc", "work", 0.01,
                                       timeout=5.0)
        return True

    kernel.spawn(blocker(), name="blocker")
    assert kernel.run_process(caller())
    breaker = client.breaker_for("a", "b")
    assert breaker.allow(kernel.now)           # still closed
    assert net.transport.stats.breaker_trips == 0


# ---------------------------------------------------------------------------
# FailureDetector: busy servers are alive
# ---------------------------------------------------------------------------
def test_failure_detector_not_fooled_by_overload():
    kernel = Kernel(seed=23)
    net = Network(kernel, full_mesh(["home", "busy"], FixedLatency(0.001)))
    net.register_service("busy", FailureDetector.SERVICE, PingService())
    net.register_service("busy", "svc", SlowService())
    net.node("busy").executor = BoundedExecutor(
        kernel, ExecutorPolicy(concurrency=1, queue_limit=0), name="busy")
    fd = FailureDetector(net, "home", ["busy"], period=0.1,
                         suspect_after=0.3, rpc_timeout=0.05)
    fd.start()

    def blocker():
        # Saturate the server for 2 virtual seconds solid.
        yield from net.call("home", "busy", "svc", "work", 2.0, timeout=5.0)

    kernel.spawn(blocker(), name="blocker")
    kernel.run(until=1.5)
    # Every ping was shed — yet the node was never declared dead, and
    # the ping timeout backed off instead.
    assert not fd.is_suspected("busy")
    assert fd._timeout_scale["busy"] > 1.0
    # A real crash is still detected, at any timeout scale.
    net.crash("busy")
    kernel.run(until=kernel.now + 3.0)
    assert fd.is_suspected("busy")


def test_failure_detector_scale_resets_on_pong():
    kernel = Kernel(seed=29)
    net = Network(kernel, full_mesh(["home", "n"], FixedLatency(0.001)))
    net.register_service("n", FailureDetector.SERVICE, PingService())
    fd = FailureDetector(net, "home", ["n"], period=0.1)
    fd._timeout_scale["n"] = 8.0               # as if overload just ended
    fd.start()
    kernel.run(until=0.5)
    assert fd._timeout_scale["n"] == 1.0
    assert not fd.is_suspected("n")


# ---------------------------------------------------------------------------
# brownout end-to-end: degraded membership reads through the Repository
# ---------------------------------------------------------------------------
def test_brownout_membership_read_is_tagged_stale():
    kernel = Kernel(seed=31)
    net = Network(kernel, full_mesh(["client", "p"], FixedLatency(0.001)))
    world = World(net, service_time=0.05,
                  executor=ExecutorPolicy(concurrency=1, queue_limit=8,
                                          brownout=True, brownout_depth=0))
    world.create_collection("c", primary="p")
    seeded = world.seed_member("c", "m1", value="v1")
    repo = Repository(world, "client")
    views = []

    def reader():
        view = yield from repo.read_membership("c", source="primary")
        views.append(view)

    def driver():
        for _ in range(4):
            kernel.spawn(reader(), name="r")
            yield Sleep(0.0001)

    kernel.spawn(driver(), name="driver")
    kernel.run(until=5.0)
    assert len(views) == 4
    fresh = [v for v in views if not v.stale]
    degraded = [v for v in views if v.stale]
    assert fresh and degraded
    # Brownout serves the *committed* snapshot: same members, legal
    # weak-set staleness, availability preserved.
    for view in degraded:
        assert view.members == frozenset({seeded})
    assert kernel.obs.metrics.value("overload.brownout_served") == len(degraded)


# ---------------------------------------------------------------------------
# AIMD limiter gates the pipelines
# ---------------------------------------------------------------------------
def test_limiter_caps_fetch_pipeline_window():
    from repro.store.fetchplan import FetchPipeline
    kernel = Kernel(seed=37)
    net = Network(kernel, full_mesh(["client", "p"], FixedLatency(0.001)))
    world = World(net, service_time=0.01)
    world.create_collection("c", primary="p")
    elements = [world.seed_member("c", f"m{i}", value=i) for i in range(12)]
    limiter = AdaptiveLimiter(AIMDPolicy(min_window=1, max_window=64,
                                         initial=1, increase=0.0,
                                         cooldown=0.0))
    repo = Repository(world, "client", limiter=limiter)
    pipeline = FetchPipeline(repo, use_cache=False, window=8, batch_size=1)
    max_in_flight = [0]

    original = pipeline._form_batch

    def tracking_form_batch():
        batch = original()
        max_in_flight[0] = max(max_in_flight[0], pipeline._in_flight)
        return batch

    pipeline._form_batch = tracking_form_batch

    def run():
        pipeline.start()
        pipeline.submit(elements)
        results = []
        while True:
            result = yield from pipeline.next_result()
            if result is None:
                break
            results.append(result)
        pipeline.stop()
        return results

    results = kernel.run_process(run())
    assert len(results) == 12 and all(r.ok for r in results)
    # Static window is 8, but the AIMD window (frozen at 1) governed.
    assert max_in_flight[0] == 1


def test_limiter_gates_write_pipeline_concurrency():
    kernel = Kernel(seed=41)
    net = Network(kernel, full_mesh(["client", "p"], FixedLatency(0.001)))
    world = World(net, service_time=0.01)
    world.create_collection("c", primary="p")
    limiter = AdaptiveLimiter(AIMDPolicy(min_window=1, max_window=64,
                                         initial=1, increase=0.0,
                                         cooldown=0.0))
    repo = Repository(world, "client", limiter=limiter)

    def run():
        return (yield from repo.add_many(
            "c", [f"w{i}" for i in range(6)], window=4, batch_size=1))

    added = kernel.run_process(run())
    assert len(added) == 6
    assert world.true_members("c") == frozenset(added)
