"""QuorumGrowOnlySet: Figure 5 with quorum reads of s_pre."""


from repro.sim import Sleep
from repro.spec import Returned, check_conformance, spec_by_id
from repro.weaksets import GrowOnlySet, QuorumGrowOnlySet

from helpers import CLIENT, PRIMARY, drain_all, standard_world


def quorum_world(**kwargs):
    # primary s0 + replicas s1, s2 => quorum is any 2 of 3
    return standard_world(policy="grow-only", replicas=2, **kwargs)


def test_iterates_like_fig5_on_quiet_world():
    kernel, net, world, elements = quorum_world(members=6)
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert report.conformant, report.counterexample()


def test_survives_primary_crash_where_plain_fig5_dies():
    kernel, net, world, elements = quorum_world(members=6)
    net.crash(PRIMARY)
    # seeded members all live on s0..s3; those on the crashed primary
    # are unreachable, so even the quorum variant eventually fails —
    # but it *reads membership* fine and yields everything reachable.
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    reachable = {e for e in elements if e.home != PRIMARY}
    assert frozenset(result.elements) == reachable

    # plain fig5 fails instantly: it cannot even read s_pre
    kernel2, net2, world2, elements2 = quorum_world(members=6)
    net2.crash(PRIMARY)
    plain = GrowOnlySet(world2, CLIENT, "coll")
    result2 = drain_all(kernel2, plain)
    assert result2.failed
    assert result2.elements == []


def test_completes_fully_when_no_member_on_primary():
    kernel, net, world, _ = quorum_world(members=0)
    elements = [world.seed_member("coll", f"x{i}", value=i, home=f"s{1 + i % 3}")
                for i in range(5)]
    net.crash(PRIMARY)
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(elements)


def test_fails_without_quorum():
    kernel, net, world, elements = quorum_world(members=4)
    net.crash("s0")
    net.crash("s1")      # 1 of 3 hosts left: no majority
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    assert "quorum" in str(result.outcome)


def test_merged_view_is_union_of_host_views():
    kernel, net, world, elements = quorum_world(members=3, replica_lag=0.2)
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")

    def proc():
        # add a member; replicas lag, but the quorum read includes the
        # primary, whose view has it
        e = yield from ws.repo.add("coll", "zz-new", value="N", home="s2")
        result = yield from ws.elements().drain()
        return e, result

    e, result = kernel.run_process(proc())
    assert e in result.elements


def test_sees_growth_during_run():
    kernel, net, world, elements = quorum_world(members=3)
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        late = yield from ws.repo.add("coll", "zz-late", value="L")
        yield Sleep(1.0)   # one anti-entropy round
        rest = yield from iterator.drain()
        return late, [first.element] + rest.elements

    late, got = kernel.run_process(proc())
    assert late in got


# ---------------------------------------------------------------------------
# Sharded collections: per-shard majorities
# ---------------------------------------------------------------------------

def test_sharded_quorum_reads_union_of_per_shard_majorities():
    from helpers import sharded_world

    # Members homed on mirror-free nodes so crashing a shard server
    # only costs its *registry* copy, not the data objects themselves.
    kernel, net, world, _ = sharded_world(policy="grow-only", mirrors=2)
    elements = [world.seed_member("coll", f"q{i}", value=i, home="m0")
                for i in range(8)]
    # One shard server down: its range still musters a majority from
    # the two mirrors (2 of 3 copies), so the read covers every range.
    net.crash("s1")
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert isinstance(result.outcome, Returned)
    assert frozenset(result.elements) == frozenset(elements)
    report = check_conformance(ws.last_trace, spec_by_id("fig5"), world)
    assert report.conformant, report.counterexample()


def test_sharded_quorum_fails_when_one_range_lacks_majority():
    from helpers import sharded_world

    kernel, net, world, _ = sharded_world(policy="grow-only", mirrors=2)
    for i in range(8):
        world.seed_member("coll", f"q{i}", value=i, home="m0")
    # A shard *and* a mirror down leaves that range with 1 of 3 copies:
    # no majority for the range means the whole read must fail — a
    # partial union would silently drop the range's members.
    net.crash("s1")
    net.crash("m0")
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    assert result.failed
    assert result.elements == []
