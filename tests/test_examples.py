"""Every example script runs clean end-to-end (they are part of the API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3        # the deliverable floor; we ship more


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_quickstart_output_shape():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "yielded 6 articles" in proc.stdout
    assert "CONFORMS" in proc.stdout
