"""Tests for partitions, fault injection, and the failure detector."""

import pytest

from repro.errors import SimulationError
from repro.net import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    FaultSchedule,
    FixedLatency,
    Network,
    PartitionManager,
    full_mesh,
)
from repro.sim import Kernel, Sleep


# ---------------------------------------------------------------------------
# PartitionManager
# ---------------------------------------------------------------------------

def test_initially_one_partition():
    pm = PartitionManager(["a", "b", "c"])
    assert pm.same_partition("a", "b")
    assert not pm.is_partitioned()


def test_split_and_heal():
    pm = PartitionManager(["a", "b", "c", "d"])
    pm.split(["a", "b"], ["c"])
    assert pm.same_partition("a", "b")
    assert not pm.same_partition("a", "c")
    assert not pm.same_partition("a", "d")  # d stayed in main group
    assert not pm.same_partition("c", "d")
    assert pm.is_partitioned()
    pm.heal()
    assert pm.same_partition("a", "c")
    assert not pm.is_partitioned()


def test_isolate_and_rejoin():
    pm = PartitionManager(["a", "b"])
    pm.isolate("a")
    assert not pm.same_partition("a", "b")
    pm.rejoin("a")
    assert pm.same_partition("a", "b")


def test_overlapping_split_rejected():
    pm = PartitionManager(["a", "b"])
    with pytest.raises(SimulationError):
        pm.split(["a"], ["a", "b"])


def test_unknown_node_rejected():
    pm = PartitionManager(["a"])
    with pytest.raises(SimulationError):
        pm.split(["zzz"])
    with pytest.raises(SimulationError):
        pm.group_of("zzz")


def test_version_bumps_on_change():
    pm = PartitionManager(["a", "b"])
    v0 = pm.version
    pm.isolate("a")
    assert pm.version > v0


# ---------------------------------------------------------------------------
# FaultSchedule
# ---------------------------------------------------------------------------

def test_fault_schedule_executes_in_order():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    sched = (FaultSchedule()
             .crash_at(1.0, "b")
             .recover_at(2.0, "b")
             .isolate_at(3.0, "a")
             .rejoin_at(4.0, "a"))
    observations = []

    def observer():
        for t in [0.5, 1.5, 2.5, 3.5, 4.5]:
            yield Sleep(t - kernel.now)
            observations.append((t, net.node("b").up, net.partitions.same_partition("a", "b")))

    kernel.spawn(sched.run(net), daemon=True)
    kernel.spawn(observer())
    kernel.run()
    assert observations == [
        (0.5, True, True),
        (1.5, False, True),
        (2.5, True, True),
        (3.5, True, False),
        (4.5, True, True),
    ]


def test_fault_schedule_link_actions():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    sched = FaultSchedule().cut_link_at(1.0, "a", "b").restore_link_at(2.0, "a", "b")
    kernel.spawn(sched.run(net), daemon=True)
    kernel.run(until=1.5)
    assert not net.can_reach("a", "b")
    kernel.run()
    assert net.can_reach("a", "b")


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

def test_injector_with_zero_rates_is_silent():
    kernel = Kernel(seed=1)
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    injector = FaultInjector(net, FaultPlan())
    injector.start()
    kernel.run(until=100.0)
    assert injector.injected == []


def test_injector_crashes_and_recovers_nodes():
    kernel = Kernel(seed=7)
    net = Network(kernel, full_mesh([f"n{i}" for i in range(5)], FixedLatency(0.01)))
    plan = FaultPlan(crash_rate=0.2, mean_downtime=0.5)
    injector = FaultInjector(net, plan)
    injector.start()
    kernel.run(until=60.0)
    kinds = {kind for (_, kind, _) in injector.injected}
    assert kinds == {"crash"}
    assert len(injector.injected) > 5
    # stop injecting; all pending downtimes elapse and everyone recovers
    injector.stop()
    kernel.run(until=200.0)
    assert all(net.node(n).up for n in net.nodes)


def test_injector_respects_protected_nodes():
    kernel = Kernel(seed=3)
    nodes = [f"n{i}" for i in range(4)]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    plan = FaultPlan(crash_rate=0.5, isolate_rate=0.5, mean_downtime=0.2,
                     protected=frozenset({"n0"}))
    FaultInjector(net, plan).start()
    kernel.run(until=30.0)
    assert net.node("n0").up
    targets = {target for (_, kind, target) in
               FaultInjector(net, plan).injected}  # fresh injector: empty
    assert "n0" not in targets


def test_injector_is_deterministic_per_seed():
    def run(seed):
        kernel = Kernel(seed=seed)
        net = Network(kernel, full_mesh([f"n{i}" for i in range(4)], FixedLatency(0.01)))
        injector = FaultInjector(net, FaultPlan(crash_rate=0.3, link_cut_rate=0.1,
                                                mean_downtime=0.5))
        injector.start()
        kernel.run(until=30.0)
        return injector.injected

    assert run(5) == run(5)
    assert run(5) != run(6)


# ---------------------------------------------------------------------------
# FailureDetector
# ---------------------------------------------------------------------------

def test_failure_detector_suspects_crashed_node_and_forgives():
    kernel = Kernel(seed=0)
    nodes = ["home", "s1", "s2"]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    FailureDetector.install_ping(net, ["s1", "s2"])
    fd = FailureDetector(net, "home", ["s1", "s2"],
                         period=0.2, suspect_after=0.6, rpc_timeout=0.1)
    fd.start()
    kernel.run(until=1.0)
    assert fd.suspected() == set()

    net.crash("s1")
    kernel.run(until=3.0)
    assert fd.is_suspected("s1")
    assert not fd.is_suspected("s2")

    net.recover("s1")
    kernel.run(until=6.0)
    assert not fd.is_suspected("s1")
    # transitions recorded: suspect then trust
    assert [(n, s) for (_, n, s) in fd.transitions] == [("s1", True), ("s1", False)]


def test_failure_detector_suspects_partitioned_node():
    kernel = Kernel(seed=0)
    net = Network(kernel, full_mesh(["home", "s1"], FixedLatency(0.01)))
    FailureDetector.install_ping(net, ["s1"])
    fd = FailureDetector(net, "home", ["s1"], period=0.2, suspect_after=0.6,
                         rpc_timeout=0.1)
    fd.start()
    net.isolate("s1")
    kernel.run(until=2.0)
    assert fd.is_suspected("s1")
