"""Tests for partitions, fault injection, and the failure detector."""

import pytest

from repro.errors import SimulationError
from repro.net import (
    FailureDetector,
    FaultInjector,
    FaultPlan,
    FaultSchedule,
    FixedLatency,
    Network,
    PartitionManager,
    full_mesh,
)
from repro.sim import Kernel, Sleep


# ---------------------------------------------------------------------------
# PartitionManager
# ---------------------------------------------------------------------------

def test_initially_one_partition():
    pm = PartitionManager(["a", "b", "c"])
    assert pm.same_partition("a", "b")
    assert not pm.is_partitioned()


def test_split_and_heal():
    pm = PartitionManager(["a", "b", "c", "d"])
    pm.split(["a", "b"], ["c"])
    assert pm.same_partition("a", "b")
    assert not pm.same_partition("a", "c")
    assert not pm.same_partition("a", "d")  # d stayed in main group
    assert not pm.same_partition("c", "d")
    assert pm.is_partitioned()
    pm.heal()
    assert pm.same_partition("a", "c")
    assert not pm.is_partitioned()


def test_isolate_and_rejoin():
    pm = PartitionManager(["a", "b"])
    pm.isolate("a")
    assert not pm.same_partition("a", "b")
    pm.rejoin("a")
    assert pm.same_partition("a", "b")


def test_overlapping_split_rejected():
    pm = PartitionManager(["a", "b"])
    with pytest.raises(SimulationError):
        pm.split(["a"], ["a", "b"])


def test_unknown_node_rejected():
    pm = PartitionManager(["a"])
    with pytest.raises(SimulationError):
        pm.split(["zzz"])
    with pytest.raises(SimulationError):
        pm.group_of("zzz")


def test_version_bumps_on_change():
    pm = PartitionManager(["a", "b"])
    v0 = pm.version
    pm.isolate("a")
    assert pm.version > v0


# ---------------------------------------------------------------------------
# FaultSchedule
# ---------------------------------------------------------------------------

def test_fault_schedule_executes_in_order():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    sched = (FaultSchedule()
             .crash_at(1.0, "b")
             .recover_at(2.0, "b")
             .isolate_at(3.0, "a")
             .rejoin_at(4.0, "a"))
    observations = []

    def observer():
        for t in [0.5, 1.5, 2.5, 3.5, 4.5]:
            yield Sleep(t - kernel.now)
            observations.append((t, net.node("b").up, net.partitions.same_partition("a", "b")))

    kernel.spawn(sched.run(net), daemon=True)
    kernel.spawn(observer())
    kernel.run()
    assert observations == [
        (0.5, True, True),
        (1.5, False, True),
        (2.5, True, True),
        (3.5, True, False),
        (4.5, True, True),
    ]


def test_fault_schedule_link_actions():
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    sched = FaultSchedule().cut_link_at(1.0, "a", "b").restore_link_at(2.0, "a", "b")
    kernel.spawn(sched.run(net), daemon=True)
    kernel.run(until=1.5)
    assert not net.can_reach("a", "b")
    kernel.run()
    assert net.can_reach("a", "b")


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------

def test_injector_with_zero_rates_is_silent():
    kernel = Kernel(seed=1)
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    injector = FaultInjector(net, FaultPlan())
    injector.start()
    kernel.run(until=100.0)
    assert injector.injected == []


def test_injector_crashes_and_recovers_nodes():
    kernel = Kernel(seed=7)
    net = Network(kernel, full_mesh([f"n{i}" for i in range(5)], FixedLatency(0.01)))
    plan = FaultPlan(crash_rate=0.2, mean_downtime=0.5)
    injector = FaultInjector(net, plan)
    injector.start()
    kernel.run(until=60.0)
    kinds = {kind for (_, kind, _) in injector.injected}
    assert kinds == {"crash"}
    assert len(injector.injected) > 5
    # stop injecting; all pending downtimes elapse and everyone recovers
    injector.stop()
    kernel.run(until=200.0)
    assert all(net.node(n).up for n in net.nodes)


def test_injector_respects_protected_nodes():
    kernel = Kernel(seed=3)
    nodes = [f"n{i}" for i in range(4)]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    plan = FaultPlan(crash_rate=0.5, isolate_rate=0.5, mean_downtime=0.2,
                     protected=frozenset({"n0"}))
    FaultInjector(net, plan).start()
    kernel.run(until=30.0)
    assert net.node("n0").up
    targets = {target for (_, kind, target) in
               FaultInjector(net, plan).injected}  # fresh injector: empty
    assert "n0" not in targets


def test_injector_is_deterministic_per_seed():
    def run(seed):
        kernel = Kernel(seed=seed)
        net = Network(kernel, full_mesh([f"n{i}" for i in range(4)], FixedLatency(0.01)))
        injector = FaultInjector(net, FaultPlan(crash_rate=0.3, link_cut_rate=0.1,
                                                mean_downtime=0.5))
        injector.start()
        kernel.run(until=30.0)
        return injector.injected

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_injector_targets_nodes_added_after_start():
    """The victim list is re-read every iteration, so topology growth
    after ``start()`` is visible to the injector."""
    kernel = Kernel(seed=11)
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.01)))
    plan = FaultPlan(crash_rate=2.0, mean_downtime=0.1,
                     protected=frozenset({"a"}))
    injector = FaultInjector(net, plan)
    injector.start()
    kernel.run(until=5.0)
    assert {t for (_, _, t) in injector.injected} == {"b"}

    # grow the cluster mid-run: wire a node the way Network.__init__ does
    from repro.net.node import Node
    net.topology.add_node("late")
    net.topology.add_link("a", "late", FixedLatency(0.01))
    net.nodes["late"] = Node("late", kernel)
    net.partitions.register("late")

    kernel.run(until=30.0)
    targets = {t for (_, _, t) in injector.injected}
    assert "late" in targets                 # the new node gets hurt too
    assert "a" not in targets
    injector.stop()
    kernel.run(until=60.0)
    assert all(net.node(n).up for n in net.nodes)


def test_injector_arms_wal_crash_points():
    """wal_crash_rate arms a crash point on a primary's intent log; the
    next logged erase fires it, and the node auto-recovers."""
    import sys
    sys.path.insert(0, "tests")  # reuse the store-world fixture
    from helpers import CLIENT, PRIMARY, standard_world
    from repro.errors import FailureException
    from repro.store import Repository

    kernel, net, world, elements = standard_world(members=4)
    plan = FaultPlan(wal_crash_rate=1.0, mean_downtime=1.0,
                     protected=frozenset({CLIENT}))
    injector = FaultInjector(net, plan)
    injector._arm_wal_crash(PRIMARY, "home-deleted")   # deterministic arm
    assert world.server(PRIMARY).wal.armed() == ["home-deleted"]
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.remove("coll", elements[0])
            return "removed"
        except FailureException:
            return "crashed"

    assert kernel.run_process(proc()) == "crashed"
    # by the time the client's timeout fired, the injector's downtime
    # (1.0s) already elapsed and the node auto-recovered
    kinds = [(kind, target) for (_, kind, target) in injector.injected]
    assert ("wal-crash", f"{PRIMARY}@home-deleted") in kinds
    kernel.run(until=kernel.now + 30.0)
    assert net.node(PRIMARY).up                       # injector recovered it
    kernel.run(until=kernel.now + 10.0)               # replay + scrub settle
    assert world.check_invariants() == []
    assert elements[0] not in world.true_members("coll")


def test_injector_wal_victims_are_store_primaries():
    import sys
    sys.path.insert(0, "tests")
    from helpers import CLIENT, PRIMARY, standard_world

    kernel, net, world, _ = standard_world(members=2, replicas=1)
    plan = FaultPlan(wal_crash_rate=1.0, protected=frozenset({CLIENT}))
    injector = FaultInjector(net, plan)
    victims = injector._wal_victims(injector._victims())
    assert victims == [PRIMARY]              # replicas and clients excluded


def test_injector_seeded_wal_crashes_fire_end_to_end():
    import sys
    sys.path.insert(0, "tests")
    from helpers import CLIENT, standard_world
    from repro.errors import FailureException
    from repro.store import Repository

    kernel, net, world, elements = standard_world(members=6, seed=13)
    plan = FaultPlan(wal_crash_rate=5.0, mean_downtime=0.5,
                     protected=frozenset({CLIENT}))
    injector = FaultInjector(net, plan)
    injector.start()
    repo = Repository(world, CLIENT)

    def proc():
        outcomes = []
        for e in elements:
            try:
                yield from repo.remove("coll", e)
                outcomes.append("ok")
            except FailureException:
                outcomes.append("failed")
            yield Sleep(0.5)
        return outcomes

    outcomes = kernel.run_process(proc())
    injector.stop()
    fired = [entry for entry in injector.injected if entry[1] == "wal-crash"]
    assert fired                             # at least one crash point fired
    assert "failed" in outcomes
    kernel.run(until=kernel.now + 30.0)      # recoveries + scrub settle
    assert all(net.node(n).up for n in net.nodes)
    assert world.check_invariants() == []


# ---------------------------------------------------------------------------
# FailureDetector
# ---------------------------------------------------------------------------

def test_failure_detector_suspects_crashed_node_and_forgives():
    kernel = Kernel(seed=0)
    nodes = ["home", "s1", "s2"]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    FailureDetector.install_ping(net, ["s1", "s2"])
    fd = FailureDetector(net, "home", ["s1", "s2"],
                         period=0.2, suspect_after=0.6, rpc_timeout=0.1)
    fd.start()
    kernel.run(until=1.0)
    assert fd.suspected() == set()

    net.crash("s1")
    kernel.run(until=3.0)
    assert fd.is_suspected("s1")
    assert not fd.is_suspected("s2")

    net.recover("s1")
    kernel.run(until=6.0)
    assert not fd.is_suspected("s1")
    # transitions recorded: suspect then trust
    assert [(n, s) for (_, n, s) in fd.transitions] == [("s1", True), ("s1", False)]


def test_failure_detector_suspects_partitioned_node():
    kernel = Kernel(seed=0)
    net = Network(kernel, full_mesh(["home", "s1"], FixedLatency(0.01)))
    FailureDetector.install_ping(net, ["s1"])
    fd = FailureDetector(net, "home", ["s1"], period=0.2, suspect_after=0.6,
                         rpc_timeout=0.1)
    fd.start()
    net.isolate("s1")
    kernel.run(until=2.0)
    assert fd.is_suspected("s1")
