"""E8: the Garcia-Molina & Wiederhold classification matches the paper."""

from repro.spec import ALL_FIGURES, classify, spec_by_id, taxonomy_table


def test_fig3_strong_first_vintage():
    c = classify(spec_by_id("fig3"))
    assert c.consistency == "strong (serializable)"
    assert c.currency == "first-vintage"


def test_fig4_weak_first_vintage():
    c = classify(spec_by_id("fig4"))
    assert c.consistency == "weak"
    assert c.currency == "first-vintage"


def test_fig5_none_first_bound():
    c = classify(spec_by_id("fig5"))
    assert c.consistency == "none"
    assert c.currency == "first-bound"


def test_fig6_none_first_bound():
    c = classify(spec_by_id("fig6"))
    assert c.consistency == "none"
    assert c.currency == "first-bound"


def test_fig1_classifies_like_fig3():
    # Figure 1 is the failure-free immutable set: same taxonomy cell.
    assert classify(spec_by_id("fig1")) == classify(spec_by_id("fig3"))


def test_taxonomy_table_covers_all_figures():
    table = taxonomy_table()
    assert len(table) == len(ALL_FIGURES)
    assert {row[0] for row in table} == {s.spec_id for s in ALL_FIGURES}
