"""The software-mirror workload: weak ls and weak find over packages."""


from repro.dynsets import strict_ls, weak_find, weak_ls
from repro.wan import CATEGORIES, build_mirror


def test_mirror_builds_full_tree():
    wl = build_mirror(seed=1)
    assert len(wl.packages) == len(CATEGORIES) * 3
    # every category directory lists its packages (ground truth)
    for category in CATEGORIES:
        entries = wl.fs.listdir_truth(f"/pub/{category}")
        assert len(entries) == 3


def test_mirror_build_is_deterministic():
    a = build_mirror(seed=7)
    b = build_mirror(seed=7)
    assert a.packages == b.packages
    assert ({e.home for e in a.fs.listdir_truth("/pub/editors")}
            == {e.home for e in b.fs.listdir_truth("/pub/editors")})


def test_weak_ls_lists_category():
    wl = build_mirror(seed=2)

    def proc():
        return (yield from weak_ls(wl.fs, wl.client, "/pub/compilers"))

    result = wl.kernel.run_process(proc())
    assert len(result.names) == 3
    assert all(name.startswith("comp") for name in result.names)


def test_weak_find_readmes_across_tree():
    wl = build_mirror(seed=3)

    def proc():
        return (yield from weak_find(
            wl.fs, wl.client, "/pub", lambda p, m: p.endswith("/README")))

    result = wl.kernel.run_process(proc())
    assert len(result.paths) == len(wl.packages)


def test_weak_find_big_tarballs():
    wl = build_mirror(seed=4)

    def proc():
        return (yield from weak_find(
            wl.fs, wl.client, "/pub",
            lambda p, m: not m.is_dir and m.size > 150_000))

    result = wl.kernel.run_process(proc())
    assert result.paths                   # some big tarballs exist
    assert all(p.endswith(".tar.gz") for p in result.paths)


def test_mirror_survives_site_outage():
    wl = build_mirror(seed=5)
    # knock out one whole mirror site
    for node in ["n2.0", "n2.1"]:
        wl.net.crash(node)

    def proc():
        return (yield from weak_find(
            wl.fs, wl.client, "/pub", lambda p, m: p.endswith("/README"),
            give_up_after=1.0))

    result = wl.kernel.run_process(proc())
    # partial answer: some READMEs found, the rest reported unreachable
    assert result.paths
    assert len(result.paths) + len(
        [u for u in result.unreachable]) >= len(wl.packages) - 4
    # the traditional command would simply fail on the first dead home
    def strict():
        return (yield from strict_ls(wl.fs, wl.client, "/pub/editors",
                                     timeout=1.0))

    strict_result = wl.kernel.run_process(strict())
    # (it fails only if an editors entry lived on site 2 — check both ways)
    homes = {e.home for e in wl.fs.listdir_truth("/pub/editors")}
    if homes & {"n2.0", "n2.1"}:
        assert strict_result.failed
