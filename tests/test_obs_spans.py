"""Tracer: nesting, per-context isolation, adoption, virtual-clock timing."""

from repro.obs import Span, Tracer
from repro.sim import Fork, Kernel, Sleep
from repro.sim.clock import Clock


def make_tracer(ctx_holder=None):
    clock = Clock()
    if ctx_holder is None:
        tracer = Tracer(clock)
    else:
        tracer = Tracer(clock, context_key=lambda: ctx_holder[0])
    return clock, tracer


# ---------------------------------------------------------------------------
# basic lifecycle and timing
# ---------------------------------------------------------------------------

def test_span_times_come_from_the_clock():
    clock, tracer = make_tracer()
    clock.advance_to(1.0)
    span = tracer.start("work", color="red")
    clock.advance_to(3.5)
    tracer.finish(span, outcome="ok")
    assert (span.start, span.end) == (1.0, 3.5)
    assert span.duration == 2.5
    assert span.finished
    assert span.attrs == {"color": "red", "outcome": "ok"}


def test_finish_is_idempotent():
    clock, tracer = make_tracer()
    span = tracer.start("work")
    clock.advance_to(1.0)
    tracer.finish(span)
    clock.advance_to(9.0)
    tracer.finish(span, late="yes")
    assert span.end == 1.0                      # first finish wins
    assert span.attrs["late"] == "yes"          # attrs still merge


def test_nesting_follows_start_order_within_a_context():
    clock, tracer = make_tracer()
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    innermost = tracer.start("innermost")
    assert inner.parent_id == outer.span_id
    assert innermost.parent_id == inner.span_id
    assert [s.name for s in tracer.ancestors(innermost)] == ["inner", "outer"]
    assert tracer.active() is innermost
    tracer.finish(innermost)
    assert tracer.active() is inner
    tracer.finish(inner)
    tracer.finish(outer)
    assert tracer.active() is None
    assert tracer.roots() == [outer]
    assert tracer.children(outer) == [inner]


def test_out_of_order_finish_keeps_stack_sane():
    # A killed process can finish an outer span while an inner one is
    # still open; removal is by identity, not a blind pop.
    clock, tracer = make_tracer()
    outer = tracer.start("outer")
    inner = tracer.start("inner")
    tracer.finish(outer)
    assert tracer.active() is inner             # inner survives
    tracer.finish(inner)
    assert tracer.active() is None


def test_explicit_parent_overrides_context():
    clock, tracer = make_tracer()
    a = tracer.start("a")
    b = tracer.start("b", parent=a)
    orphanless = tracer.start("c", parent=b)
    assert b.parent_id == a.span_id
    assert orphanless.parent_id == b.span_id


# ---------------------------------------------------------------------------
# per-context isolation (the interleaving problem)
# ---------------------------------------------------------------------------

def test_interleaved_contexts_do_not_cross_parent():
    ctx = ["p1"]
    clock, tracer = make_tracer(ctx)
    s1 = tracer.start("p1.work")                # p1 opens a span
    ctx[0] = "p2"                               # "scheduler" switches
    s2 = tracer.start("p2.work")
    assert s2.parent_id is None                 # NOT parented under p1.work
    inner2 = tracer.start("p2.inner")
    assert inner2.parent_id == s2.span_id
    ctx[0] = "p1"
    inner1 = tracer.start("p1.inner")
    assert inner1.parent_id == s1.span_id       # p1's stack undisturbed
    assert tracer.active() is inner1
    ctx[0] = "p2"
    assert tracer.active() is inner2


def test_adopt_seeds_child_context_with_forkers_span():
    ctx = ["parent"]
    clock, tracer = make_tracer(ctx)
    base = tracer.start("drain")
    tracer.adopt("child", "parent")
    ctx[0] = "child"
    attempt = tracer.start("rpc.attempt")
    assert attempt.parent_id == base.span_id
    # the borrowed base belongs to the parent: finishing the child's own
    # span must not close (or pop) the drain span
    tracer.finish(attempt)
    ctx[0] = "parent"
    assert tracer.active() is base
    assert not base.finished


def test_adopt_does_not_clobber_an_existing_context():
    ctx = ["a"]
    clock, tracer = make_tracer(ctx)
    tracer.start("a.work")
    ctx[0] = "b"
    b_span = tracer.start("b.work")
    tracer.adopt("b", "a")                      # too late: b already has a stack
    inner = tracer.start("b.inner")
    assert inner.parent_id == b_span.span_id


# ---------------------------------------------------------------------------
# retention cap
# ---------------------------------------------------------------------------

def test_max_spans_caps_retention_but_not_timing():
    clock, tracer = make_tracer()
    tracer.max_spans = 2
    kept1 = tracer.start("a")
    tracer.finish(kept1)
    kept2 = tracer.start("b")
    tracer.finish(kept2)
    clock.advance_to(1.0)
    extra = tracer.start("c")
    clock.advance_to(2.0)
    tracer.finish(extra)
    assert len(tracer) == 2
    assert tracer.dropped == 1
    assert extra.duration == 1.0                # still timed for its caller


# ---------------------------------------------------------------------------
# under the kernel: real processes, virtual time ordering
# ---------------------------------------------------------------------------

def test_kernel_processes_get_isolated_span_stacks():
    kernel = Kernel(seed=7)
    tracer = kernel.obs.tracer

    def worker(name, delay):
        span = tracer.start(name)
        yield Sleep(delay)
        tracer.finish(span)
        return span

    def root():
        a = kernel.spawn(worker("a", 0.5))
        b = kernel.spawn(worker("b", 0.2))
        yield Sleep(1.0)
        return a, b

    kernel.run_process(root())
    a_span = tracer.spans("a")[0]
    b_span = tracer.spans("b")[0]
    # interleaved but isolated: neither parented under the other
    assert a_span.parent_id is None
    assert b_span.parent_id is None
    # timings come from virtual time, strictly ordered
    assert a_span.duration == 0.5
    assert b_span.duration == 0.2
    assert a_span.start == b_span.start == 0.0


def test_kernel_fork_adopts_parents_active_span():
    kernel = Kernel(seed=7)
    tracer = kernel.obs.tracer

    def child():
        span = tracer.start("child.work")
        yield Sleep(0.1)
        tracer.finish(span)

    def parent():
        span = tracer.start("parent.work")
        yield Fork(child())
        yield Sleep(0.5)
        tracer.finish(span)

    kernel.run_process(parent())
    child_span = tracer.spans("child.work")[0]
    parent_span = tracer.spans("parent.work")[0]
    assert child_span.parent_id == parent_span.span_id


def test_span_ids_are_unique_and_dense():
    clock, tracer = make_tracer()
    spans = [tracer.start(f"s{i}") for i in range(5)]
    ids = [s.span_id for s in spans]
    assert len(set(ids)) == 5
    assert tracer.by_id(ids[3]) is spans[3]
    assert tracer.by_id(99999) is None


def test_span_to_dict_shape():
    clock, tracer = make_tracer()
    span = tracer.start("x", k="v")
    tracer.finish(span)
    d = span.to_dict()
    assert d == {"span_id": span.span_id, "parent_id": None, "name": "x",
                 "start": 0.0, "end": 0.0, "attrs": {"k": "v"}}
    assert isinstance(span, Span)
