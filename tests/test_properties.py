"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.net import FixedLatency, Topology
from repro.spec import (
    Returned,
    Yielded,
    check_conformance,
    spec_by_id,
    structural_violations,
)
from repro.spec.state import InvocationRecord, StateSnapshot
from repro.spec.trace import IterationTrace
from repro.store import Element
from repro.weaksets import DynamicSet, GrowOnlySet, SnapshotSet

from helpers import CLIENT, drain_all, standard_world


# ---------------------------------------------------------------------------
# kernel determinism
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic_per_seed(seed):
    def run():
        kernel, net, world, elements = standard_world(members=6, seed=seed)
        ws = DynamicSet(world, CLIENT, "coll")
        result = drain_all(kernel, ws)
        return [e.name for e in result.elements], kernel.now

    assert run() == run()


# ---------------------------------------------------------------------------
# routing optimality
# ---------------------------------------------------------------------------

@st.composite
def random_topology(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    nodes = [f"n{i}" for i in range(n)]
    topo = Topology()
    for node in nodes:
        topo.add_node(node)
    pairs = list(itertools.combinations(nodes, 2))
    latencies = {}
    for a, b in pairs:
        if draw(st.booleans()):
            w = draw(st.floats(min_value=0.001, max_value=1.0,
                               allow_nan=False, allow_infinity=False))
            topo.add_link(a, b, FixedLatency(w))
            latencies[frozenset((a, b))] = w
    return topo, nodes, latencies


@given(random_topology())
@settings(max_examples=40, deadline=None)
def test_dijkstra_matches_brute_force(data):
    topo, nodes, latencies = data

    def brute_force(src, dst):
        best = None
        for k in range(len(nodes)):
            for mid in itertools.permutations([n for n in nodes
                                               if n not in (src, dst)], k):
                path = [src, *mid, dst]
                cost = 0.0
                ok = True
                for a, b in zip(path, path[1:]):
                    w = latencies.get(frozenset((a, b)))
                    if w is None:
                        ok = False
                        break
                    cost += w
                if ok and (best is None or cost < best):
                    best = cost
        return best

    src, dst = nodes[0], nodes[-1]
    expected = brute_force(src, dst)
    got = topo.expected_latency(src, dst)
    if expected is None:
        assert got is None
    else:
        assert got is not None
        assert abs(got - expected) < 1e-9


# ---------------------------------------------------------------------------
# iterator invariants over random worlds
# ---------------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=9999),
       st.integers(min_value=1, max_value=12))
@settings(max_examples=20, deadline=None)
def test_no_duplicates_and_full_coverage_on_quiet_world(seed, members):
    kernel, net, world, elements = standard_world(members=members, seed=seed)
    ws = DynamicSet(world, CLIENT, "coll")
    result = drain_all(kernel, ws)
    names = [e.name for e in result.elements]
    assert len(names) == len(set(names))          # no duplicates
    assert frozenset(result.elements) == frozenset(elements)
    assert isinstance(result.outcome, Returned)


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=15, deadline=None)
def test_conformance_implication_fig3_implies_fig4(seed):
    """Figs 3 and 4 share their ensures clause; fig3's constraint is
    strictly stronger, so fig3-conformance implies fig4-conformance."""
    kernel, net, world, elements = standard_world(
        members=5, seed=seed, policy="immutable")
    world.seal("coll")
    ws = SnapshotSet(world, CLIENT, "coll")
    drain_all(kernel, ws)
    fig3 = check_conformance(ws.last_trace, spec_by_id("fig3"), world)
    fig4 = check_conformance(ws.last_trace, spec_by_id("fig4"), world)
    if fig3.conformant:
        assert fig4.conformant


@given(st.integers(min_value=0, max_value=9999))
@settings(max_examples=10, deadline=None)
def test_grow_only_yield_stream_is_monotone_under_growth(seed):
    kernel, net, world, elements = standard_world(
        members=4, seed=seed, policy="grow-only")
    ws = GrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yielded = set()
        adds = 0
        while True:
            outcome = yield from iterator.invoke()
            if not outcome.suspends:
                return yielded
            assert outcome.element not in yielded
            yielded.add(outcome.element)
            if adds < 2:
                adds += 1
                yield from ws.repo.add("coll", f"zz-{adds}", value=adds)

    yielded = kernel.run_process(proc())
    assert len(yielded) == 6  # 4 initial + 2 added mid-run


# ---------------------------------------------------------------------------
# structural trace fuzzing
# ---------------------------------------------------------------------------

def _elem(i):
    return Element(name=f"e{i}", oid=f"oid{i}", home="s0")


@st.composite
def valid_trace(draw):
    """A structurally valid trace: yields distinct elements then returns."""
    n = draw(st.integers(min_value=0, max_value=6))
    members = frozenset(_elem(i) for i in range(n))
    trace = IterationTrace(coll_id="c", client="client", impl_name="fuzz")
    yielded = frozenset()
    t = 0.0
    for i in range(n):
        e = _elem(i)
        snap = StateSnapshot(time=t, members=members,
                             reachable_nodes=frozenset({"client", "s0"}))
        trace.invocations.append(InvocationRecord(
            index=i, t_invoke=t, t_complete=t + 0.1,
            yielded_pre=yielded, yielded_post=yielded | {e},
            outcome=Yielded(e), snapshots=(snap,),
        ))
        yielded = yielded | {e}
        t += 1.0
    snap = StateSnapshot(time=t, members=members,
                         reachable_nodes=frozenset({"client", "s0"}))
    trace.invocations.append(InvocationRecord(
        index=n, t_invoke=t, t_complete=t + 0.1,
        yielded_pre=yielded, yielded_post=yielded,
        outcome=Returned(), snapshots=(snap,),
    ))
    if trace.invocations:
        trace.first_candidates = trace.invocations[0].snapshots
    return trace


@given(valid_trace())
@settings(max_examples=30, deadline=None)
def test_valid_traces_have_no_structural_violations(trace):
    assert structural_violations(trace) == []
    # and they satisfy fig1/fig3 (immutable, fully reachable world)
    history = [(0.0, trace.invocations[0].snapshots[0].members)]
    for spec_id in ["fig1", "fig3", "fig4", "fig5", "fig6"]:
        report = check_conformance(trace, spec_by_id(spec_id), history=history)
        assert report.conformant, (spec_id, report.counterexample())


@given(valid_trace(), st.integers(min_value=0, max_value=100))
@settings(max_examples=30, deadline=None)
def test_corrupted_traces_are_detected(trace, pick):
    yield_invs = [inv for inv in trace.invocations if inv.outcome.suspends]
    if not yield_invs:
        return
    victim = yield_invs[pick % len(yield_invs)]
    # corruption: claim the history object did not grow
    trace.invocations[victim.index] = InvocationRecord(
        index=victim.index, t_invoke=victim.t_invoke,
        t_complete=victim.t_complete,
        yielded_pre=victim.yielded_pre,
        yielded_post=victim.yielded_pre,          # <- broken
        outcome=victim.outcome, snapshots=victim.snapshots,
    )
    assert structural_violations(trace) != []
