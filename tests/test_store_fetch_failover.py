"""Repository.probe and replica-failover fetch under network partitions."""

import pytest

from repro.errors import FailureException, NoSuchObjectError
from repro.sim import Sleep
from repro.store import Repository
from repro.weaksets import DynamicSet, QuorumGrowOnlySet

from helpers import CLIENT, standard_world


# ---------------------------------------------------------------------------
# probe under partitions
# ---------------------------------------------------------------------------

def test_probe_true_for_live_member_across_partition_heal():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    repo = Repository(world, CLIENT)

    def proc():
        assert (yield from repo.probe(elements[0]))
        net.split([CLIENT, "s1"], ["s0", "s2"])
        try:
            yield from repo.probe(elements[0])      # home s0: other side
        except FailureException:
            pass
        else:
            raise AssertionError("probe across the partition should fail")
        net.heal()
        return (yield from repo.probe(elements[0]))

    assert kernel.run_process(proc())


def test_probe_false_is_authoritative_removed():
    kernel, net, world, elements = standard_world(n_servers=2, members=2)
    repo = Repository(world, CLIENT)

    def proc():
        yield from repo.remove("coll", elements[0])
        return (yield from repo.probe(elements[0]))

    assert kernel.run_process(proc()) is False


# ---------------------------------------------------------------------------
# replica failover across a partition
# ---------------------------------------------------------------------------

def partitioned_world():
    """Home s1 on the far side of a split; replica s2 near the client."""
    kernel, net, world, _ = standard_world(n_servers=3)
    element = world.seed_member("coll", "doc", value="payload", home="s1",
                                replicas=("s2",))
    net.split([CLIENT, "s0", "s2"], ["s1"])
    return kernel, net, world, element


def test_fetch_fails_over_to_replica_across_partition():
    kernel, net, world, element = partitioned_world()
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.fetch(element, failover=True))

    assert kernel.run_process(proc()) == "payload"
    assert net.transport.stats.failovers == 1


def test_fetch_without_failover_respects_the_partition():
    kernel, net, world, element = partitioned_world()
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.fetch(element, failover=False))

    with pytest.raises(FailureException):
        kernel.run_process(proc())


def test_failover_propagates_authoritative_removal():
    """With the home reachable, its "removed" answer wins: failover must
    not resurrect the member from a stale replica copy."""
    kernel, net, world, _ = standard_world(n_servers=3)
    element = world.seed_member("coll", "doc", value="payload", home="s1",
                                replicas=("s2",))
    repo = Repository(world, CLIENT)

    def proc():
        yield from repo.remove("coll", element)
        return (yield from repo.fetch(element, failover=True))

    with pytest.raises(NoSuchObjectError):
        kernel.run_process(proc())


# ---------------------------------------------------------------------------
# iterator-level behaviour under partitions
# ---------------------------------------------------------------------------

def test_dynamic_drain_completes_through_failover_under_partition():
    kernel, net, world, _ = standard_world(n_servers=4, replicas=2)
    elements = [world.seed_member("coll", f"m{i}", value=f"v{i}",
                                  home=f"s{i % 4}",
                                  replicas=(f"s{(i + 1) % 4}",))
                for i in range(8)]
    ws = DynamicSet(world, CLIENT, "coll", failover=True)
    iterator = ws.elements()

    def proc():
        # s3 drops mid-drain; every element homed there has a replica on
        # the client's side of the split.
        net.split([CLIENT, "s0", "s1", "s2"], ["s3"])
        return (yield from iterator.drain())

    result = kernel.run_process(proc())
    assert not result.failed
    assert len(result.elements) == 8
    assert net.transport.stats.failovers > 0


def test_quorum_drain_survives_minority_partition():
    kernel, net, world, _ = standard_world(
        n_servers=4, policy="grow-only", replicas=2, replica_lag=0.05)
    elements = [world.seed_member("coll", f"m{i}", value=f"v{i}",
                                  home=f"s{i % 4}",
                                  replicas=(f"s{(i + 1) % 4}",))
                for i in range(8)]
    ws = QuorumGrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield Sleep(0.5)               # let replicas sync the membership
        net.split([CLIENT, "s0", "s1", "s3"], ["s2"])
        return (yield from iterator.drain())

    result = kernel.run_process(proc())
    # membership quorum: s0 (primary), s1, s2 — two of three reachable;
    # elements homed on the minority side come from their replicas
    assert not result.failed
    assert len(result.elements) == 8
