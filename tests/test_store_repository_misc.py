"""Repository/World odds and ends not covered elsewhere."""

import pytest

from repro.errors import NoSuchCollectionError, UnreachableObjectFailure
from repro.store import MembershipView, Repository

from helpers import CLIENT, PRIMARY, standard_world


def test_membership_view_fields():
    kernel, net, world, elements = standard_world(members=2)
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.read_membership("coll", source="primary"))

    view = kernel.run_process(proc())
    assert isinstance(view, MembershipView)
    assert view.coll_id == "coll"
    assert view.source == PRIMARY
    assert view.version == 2            # two seeds
    assert view.read_at == pytest.approx(kernel.now, abs=1e-6)
    assert "2 members" in repr(view)


def test_read_membership_from_specific_replica():
    kernel, net, world, elements = standard_world(members=2, replicas=1)
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.read_membership("coll", source="s1"))

    view = kernel.run_process(proc())
    assert view.source == "s1"
    assert view.members == frozenset(elements)   # seeding syncs replicas


def test_read_membership_nearest_with_nothing_reachable():
    kernel, net, world, elements = standard_world(members=1)
    net.isolate(CLIENT)
    repo = Repository(world, CLIENT)

    def proc():
        try:
            yield from repo.read_membership("coll", source="nearest")
        except UnreachableObjectFailure:
            return "unreachable"

    assert kernel.run_process(proc()) == "unreachable"


def test_probe_reports_existence():
    kernel, net, world, elements = standard_world(members=1)
    repo = Repository(world, CLIENT)

    def proc():
        alive = yield from repo.probe(elements[0])
        yield from repo.remove("coll", elements[0])
        gone = yield from repo.probe(elements[0])
        return alive, gone

    assert kernel.run_process(proc()) == (True, False)


def test_hosts_and_primary_metadata():
    kernel, net, world, elements = standard_world(members=0, replicas=2)
    repo = Repository(world, CLIENT)
    assert repo.primary_of("coll") == PRIMARY
    assert repo.hosts_of("coll") == (PRIMARY, "s1", "s2")
    with pytest.raises(NoSuchCollectionError):
        repo.hosts_of("nope")


def test_membership_view_cached_and_bypassed():
    from repro.store import ClientCache
    kernel, net, world, elements = standard_world(members=2)
    cache = ClientCache(ttl=10.0)
    repo = Repository(world, CLIENT, cache=cache)

    def proc():
        yield from repo.read_membership("coll", use_cache=True)
        e = yield from repo.add("coll", "new", value="N")
        stale = yield from repo.read_membership("coll", use_cache=True)
        fresh = yield from repo.read_membership("coll", use_cache=False)
        return e, stale, fresh

    e, stale, fresh = kernel.run_process(proc())
    assert e not in stale.members        # served from cache
    assert e in fresh.members            # bypass read through
    assert cache.hits >= 1


def test_world_repr_and_collection_info():
    kernel, net, world, elements = standard_world(members=1, replicas=1)
    info = world.collection_info("coll")
    assert info.primary == PRIMARY
    assert info.hosts == (PRIMARY, "s1")
    assert "coll" in repr(world)
    assert len(info.history) == 2        # empty + one seed


def test_reachable_of_arbitrary_member_sets():
    kernel, net, world, elements = standard_world(n_servers=3, members=3)
    net.isolate("s1")
    subset = frozenset(e for e in elements if e.home != "s2")
    reachable = world.reachable_of(subset, CLIENT)
    assert all(e.home != "s1" for e in reachable)
    assert reachable == frozenset(e for e in subset if e.home != "s1")


def test_replace_models_item_mutation():
    """Remove-then-add, per the paper's item-mutation model."""
    kernel, net, world, elements = standard_world(members=2)
    repo = Repository(world, CLIENT)
    old = elements[0]

    def proc():
        return (yield from repo.replace("coll", old, f"{old.name}-v2",
                                        value="updated"))

    new = kernel.run_process(proc())
    truth = world.true_members("coll")
    assert old not in truth
    assert new in truth
    assert new.home == old.home          # stays on the same node
    assert new.oid != old.oid            # but is a distinct element


def test_replace_can_relocate():
    kernel, net, world, elements = standard_world(members=1)
    repo = Repository(world, CLIENT)

    def proc():
        return (yield from repo.replace("coll", elements[0], "moved",
                                        value="v", home="s3"))

    new = kernel.run_process(proc())
    assert new.home == "s3"
