"""Edge cases across components: abandonment, first-state ambiguity,
client crashes, long-horizon workload drift."""


from repro.errors import IteratorProtocolError, SimulationError
from repro.sim import Sleep
from repro.spec import (
    Returned,
    Yielded,
    check_conformance,
    spec_by_id,
)
from repro.spec.state import InvocationRecord, StateSnapshot
from repro.spec.trace import IterationTrace
from repro.store import Element
from repro.weaksets import DynamicSet

from helpers import CLIENT, standard_world


# ---------------------------------------------------------------------------
# abandonment
# ---------------------------------------------------------------------------

def test_abandoned_iterator_stops_recording():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from iterator.invoke()
        iterator.abandon()
        # further world changes must not extend the trace
        yield from ws.repo.add("coll", "after-abandon", value="X")
        return len(ws.last_trace.invocations)

    count = kernel.run_process(proc())
    assert count == 2
    assert iterator.terminated

    def proc2():
        try:
            yield from iterator.invoke()
        except IteratorProtocolError:
            return "rejected"

    assert kernel.run_process(proc2()) == "rejected"


def test_partial_trace_is_checkable():
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from iterator.invoke()
        iterator.abandon()

    kernel.run_process(proc())
    trace = ws.last_trace
    assert not trace.terminated
    report = check_conformance(trace, spec_by_id("fig6"), world)
    assert report.conformant, report.counterexample()
    assert not report.complete


# ---------------------------------------------------------------------------
# first-state ambiguity: the checker must pick the right candidate
# ---------------------------------------------------------------------------

def elem(name):
    return Element(name=name, oid=f"oid-{name}", home="s0")


A, B = elem("a"), elem("b")
REACH = frozenset({"client", "s0"})


def test_checker_fixes_s_first_existentially():
    """Invocation 0's window saw both {A} and {A,B}; the subsequent
    yields cover {A,B}, so only the second candidate works — the trace
    must still conform."""
    trace = IterationTrace(coll_id="c", client="client", impl_name="manual")
    snap_small = StateSnapshot(0.0, frozenset({A}), REACH)
    snap_big = StateSnapshot(0.2, frozenset({A, B}), REACH)
    trace.invocations.append(InvocationRecord(
        index=0, t_invoke=0.0, t_complete=0.3,
        yielded_pre=frozenset(), yielded_post=frozenset({A}),
        outcome=Yielded(A), snapshots=(snap_small, snap_big)))
    trace.first_candidates = (snap_small, snap_big)
    snap_later = StateSnapshot(1.0, frozenset({A, B}), REACH)
    trace.invocations.append(InvocationRecord(
        index=1, t_invoke=1.0, t_complete=1.1,
        yielded_pre=frozenset({A}), yielded_post=frozenset({A, B}),
        outcome=Yielded(B), snapshots=(snap_later,)))
    trace.invocations.append(InvocationRecord(
        index=2, t_invoke=2.0, t_complete=2.1,
        yielded_pre=frozenset({A, B}), yielded_post=frozenset({A, B}),
        outcome=Returned(), snapshots=(snap_later,)))
    history = [(0.0, frozenset({A})), (0.2, frozenset({A, B}))]
    report = check_conformance(trace, spec_by_id("fig4"), history=history)
    assert report.conformant, report.counterexample()


def test_checker_rejects_when_no_candidate_fits():
    """Yields exceed every candidate s_first: a genuine violation."""
    ghost = elem("ghost")
    trace = IterationTrace(coll_id="c", client="client", impl_name="manual")
    snap = StateSnapshot(0.0, frozenset({A}), REACH)
    trace.invocations.append(InvocationRecord(
        index=0, t_invoke=0.0, t_complete=0.1,
        yielded_pre=frozenset(), yielded_post=frozenset({ghost}),
        outcome=Yielded(ghost), snapshots=(snap,)))
    trace.first_candidates = (snap,)
    history = [(0.0, frozenset({A}))]
    report = check_conformance(trace, spec_by_id("fig4"), history=history)
    assert not report.conformant


# ---------------------------------------------------------------------------
# client crash mid-iteration
# ---------------------------------------------------------------------------

def test_client_crash_parks_optimistic_query():
    """A crashed client's optimistic query becomes a harmless zombie:
    it can reach nothing (a crashed observer reaches no nodes), so it
    parks in the retry loop, makes no progress, and resumes when the
    client recovers."""
    kernel, net, world, elements = standard_world(members=5)
    ws = DynamicSet(world, CLIENT, "coll", retry_interval=0.25)
    iterator = ws.elements()

    def query():
        return (yield from iterator.drain())

    def crash_then_recover():
        # Crash while the first fetches are still in flight (the batched
        # pipeline finishes a 5-member drain well under 50ms, so the
        # crash must land before the first value arrives).
        yield Sleep(0.03)
        net.crash(CLIENT)
        yield Sleep(8.0)
        net.recover(CLIENT)

    proc = kernel.spawn(query())
    kernel.spawn(crash_then_recover(), daemon=True)
    kernel.run(until=6.0)
    assert not proc.finished                      # parked, not crashed
    yielded_while_dead = len(iterator.yielded)
    kernel.run(until=30.0)
    assert proc.finished and proc.error is None   # resumed after recovery
    assert len(proc.result.elements) == 5
    assert len(iterator.yielded) > yielded_while_dead


def test_strong_query_fails_fast_when_client_crashes():
    """The strong iterator's next RPC from a crashed caller raises: its
    process dies with a simulation error instead of spinning."""
    from repro.weaksets import StrongSet
    kernel, net, world, elements = standard_world(
        members=8, with_locks=True, service_time=0.05)
    ws = StrongSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def query():
        return (yield from iterator.drain())

    def crasher():
        yield Sleep(0.2)                           # mid-prefetch
        net.crash(CLIENT)

    proc = kernel.spawn(query())
    kernel.spawn(crasher(), daemon=True)
    kernel.run(until=30.0)
    assert proc.finished
    assert isinstance(proc.error, SimulationError)


# ---------------------------------------------------------------------------
# long-horizon workload drift
# ---------------------------------------------------------------------------

def test_menu_seasons_drift_over_time():
    """Menus 'change weekly or seasonally': repeated queries over a long
    horizon observe monotonically advancing seasons."""
    from repro.wan import build_restaurants

    wl = build_restaurants(seed=8, n_restaurants=12)

    def season_census():
        result = yield from wl.guide("dynamic").elements().drain()
        return sorted(v.season for v in result.values)

    def rotate_some(k):
        current = sorted(wl.world.true_members("pgh-restaurants"),
                         key=lambda e: e.name)
        for e in current[:k]:
            yield from wl.rotate_menu(e)

    first = wl.kernel.run_process(season_census())
    wl.kernel.run_process(rotate_some(5))
    second = wl.kernel.run_process(season_census())
    assert first == [0] * 12
    assert second.count(1) == 5
    assert len(second) == 12            # same restaurants, fresher menus
