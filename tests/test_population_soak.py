"""Population soaks: the E22 schedule across seeds, at reduced rate.

Marked ``population`` so CI can select (``-m population``) or deselect
(``-m "not population"``) the soak explicitly; like the chaos and
disconnected soaks it also runs in the default suite, because every run
is deterministic — a failure is a reproducible counterexample, not
flake.  Each soak replays the exact E22 stage schedule — same durations, ramps, SLOs, audit sampling — with the
arrival *rates* scaled down 20x, so the full schedule logic (linear
ramp, heavy-tailed gaps, drain grace, per-stage verdicts) is exercised
per seed in a few seconds instead of a minute.
"""

import pytest

from repro.bench.exp_population import population_spec, run_population
from repro.wan import PopulationEngine
from repro.wan.workload import ScenarioSpec, build_scenario

pytestmark = pytest.mark.population

#: 1/20th of the E22 rate: ~5.3k arrivals per soak, all stages active.
SOAK_SCALE = 0.05


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_population_soak_slo_and_conformance(seed):
    result = run_population(seed=seed, scale=SOAK_SCALE)
    print()
    print(result)

    total = next(r for r in result.rows if r["stage"] == "total")
    stages = [r for r in result.rows if r["stage"] != "total"]
    assert total["arrivals"] > 3_000
    assert total["completions"] == total["arrivals"]
    for row in stages:
        assert row["slo_ok"], row
        assert row["audit_violations"] == 0, row

    metrics = result.population_metrics
    assert metrics["population.audit_violations"] == 0
    assert metrics["population.failures"] <= 0.05 * metrics[
        "population.completions"]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_population_soak_heavy_audit_stays_conformant(seed):
    """Audit every 20th session: hundreds of inline fig6 checks."""
    scenario = build_scenario(ScenarioSpec(), seed=seed)
    spec = population_spec(scenario, scale=SOAK_SCALE, audit_fraction=0.05)
    engine = PopulationEngine(scenario, spec)
    results = engine.run()
    metrics = scenario.kernel.obs.metrics
    assert metrics.value("population.audits") > 100
    assert metrics.value("population.audit_violations") == 0
    assert all(r.audit_violations == 0 for r in results)
