"""In-flight loss accounting: drops at delivery time and reply hygiene.

Messages that die *between* send and delivery (destination crashes or
partitions while they are on the wire) must be counted as drops, and a
reply that does land late — or never — must not fire a stale
:class:`~repro.sim.events.Signal` into a caller that has moved on.
"""


from repro.errors import NodeCrashFailure, PartitionFailure, TimeoutFailure
from repro.net import Address, FixedLatency, Message, Network, full_mesh
from repro.sim import Kernel, Signal, Sleep


class EchoService:
    def echo(self, value):
        return value

    def slow(self, value, delay):
        yield Sleep(delay)
        return value


def make_net(**kwargs):
    kernel = Kernel()
    net = Network(kernel, full_mesh(["a", "b"], FixedLatency(0.05)), **kwargs)
    net.register_service("b", "echo", EchoService())
    return kernel, net


def test_request_lost_to_crash_in_flight_counts_as_drop():
    kernel, net = make_net()
    stats = net.transport.stats

    def crasher():
        yield Sleep(0.01)                 # request is mid-flight (0.05s link)
        net.crash("b")

    def caller():
        try:
            yield from net.call("a", "b", "echo", "echo", 1, timeout=0.5)
        except (NodeCrashFailure, TimeoutFailure):
            return "failed"

    kernel.spawn(crasher(), daemon=True)
    assert kernel.run_process(caller()) == "failed"
    assert stats.total_dropped == 1
    assert stats.node("b").addressed == 1     # it *was* sent toward b
    assert stats.total_delivered == 0
    # the caller's pending-reply entry is cleaned up, not leaked
    assert net.transport._pending_replies == {}


def test_reply_lost_to_partition_in_flight_counts_and_stays_silent():
    kernel, net = make_net()
    stats = net.transport.stats

    def splitter():
        # Request (0.05s) arrives, handler replies instantly; cut the
        # network while the reply is on its way back.
        yield Sleep(0.07)
        net.split(["a"], ["b"])

    def caller():
        try:
            yield from net.call("a", "b", "echo", "echo", 1, timeout=0.5)
        except (PartitionFailure, TimeoutFailure):
            return "failed"

    kernel.spawn(splitter(), daemon=True)
    assert kernel.run_process(caller()) == "failed"
    assert stats.total_dropped == 1                   # the reply died at delivery
    assert stats.total_delivered == 1               # only the request landed
    # the caller's signal was resolved exactly once (by its failure);
    # nothing remains for the dead reply to complete later.
    kernel.run(until=5.0)
    assert net.transport._pending_replies == {}


def test_late_reply_after_timeout_never_fires_stale_signal():
    kernel, net = make_net()

    def caller():
        try:
            yield from net.call("a", "b", "echo", "slow", "x", 1.0, timeout=0.2)
        except TimeoutFailure:
            return "timed out"

    assert kernel.run_process(caller()) == "timed out"
    # The handler is still running; when its reply lands, the one-shot
    # signal protocol must swallow it (a double fire would raise
    # SimulationError inside the kernel and surface here).
    kernel.run(until=5.0)
    assert net.transport._pending_replies == {}


def test_reply_to_zero_is_a_valid_correlation_id():
    # Regression: `msg.reply_to or -1` treated a legitimate id of 0 as
    # "not a reply" and orphaned that caller forever.
    kernel, net = make_net()
    transport = net.transport
    request = Message(src=Address("a", "client"), dst=Address("b", "echo"),
                      method="echo", payload=((1,), {}), msg_id=0)
    sig = Signal(name="reply#0")
    transport._pending_replies[0] = sig
    reply = request.reply("answer")
    assert reply.reply_to == 0
    transport._complete_reply(reply)
    assert sig.fired
    assert sig.value == "answer"
    assert transport._pending_replies == {}


def test_reply_without_correlation_id_is_ignored():
    kernel, net = make_net()
    orphan = Message(src=Address("b", "echo"), dst=Address("a", "client"),
                     method="echo!ok", payload="x", is_reply=True,
                     reply_to=None)
    net.transport._complete_reply(orphan)     # must not raise or pop anything
    assert net.transport._pending_replies == {}
