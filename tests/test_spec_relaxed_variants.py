"""§3.1/§3.3 relaxed specs checked against their implementations."""


from repro.spec import check_conformance, spec_by_id
from repro.weaksets import PerRunGrowOnlySet, PerRunImmutableSet, SnapshotSet, StrongSet

from helpers import CLIENT, drain_all, standard_world


def test_per_run_immutable_impl_conforms_to_relaxed_fig3():
    kernel, net, world, elements = standard_world(members=4, with_locks=True)
    reader = PerRunImmutableSet(world, CLIENT, "coll")
    writer = StrongSet(world, "s2", "coll")

    # run 1 (lock held; no mutation possible)
    drain_all(kernel, reader)

    # a mutation lands between runs
    def mutate():
        yield from writer.add("between-runs", value="B")

    kernel.run_process(mutate())

    # run 2
    drain_all(kernel, reader)

    spec = spec_by_id("fig3-per-run")
    for trace in reader.traces:
        report = check_conformance(trace, spec, world)
        assert report.conformant, report.counterexample()
    # but plain fig3 rejects: the set changed (between the runs)
    history = world.membership_history("coll")
    strict = spec_by_id("fig3")
    assert strict.constraint.check(history) != []


def test_relaxed_fig3_rejects_mid_run_mutation():
    """Without the lock discipline, a mid-run writer breaks the per-run
    constraint — the relaxed spec catches it."""
    kernel, net, world, elements = standard_world(members=4)
    # a snapshot iterator does not lock; writers are free to interleave
    ws = SnapshotSet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        yield from iterator.invoke()
        yield from ws.repo.add("coll", "mid-run", value="M")
        yield from iterator.drain()

    kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id("fig3-per-run"), world)
    assert not report.conformant
    assert report.constraint_violations


def test_per_run_grow_only_impl_conforms_to_relaxed_fig5():
    kernel, net, world, elements = standard_world(
        members=4, policy="grow-during-run")
    ws = PerRunGrowOnlySet(world, CLIENT, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        # a removal during the run becomes a ghost (growth-only upheld)
        victim = next(e for e in elements if e != first.element)
        yield from ws.repo.remove("coll", victim)
        # growth during the run is fine
        yield from ws.repo.add("coll", "zz-grown", value="G")
        yield from iterator.drain()

    kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id("fig5-per-run"), world)
    assert report.conformant, report.counterexample()
    # the strict fig5 constraint fails globally: the purge shrank the set
    kernel.run(until=kernel.now + 1.0)
    strict = spec_by_id("fig5")
    assert strict.constraint.check(world.membership_history("coll")) != []


def test_relaxed_variants_render_and_classify():
    from repro.spec import classify, render_spec

    relaxed3 = spec_by_id("fig3-per-run")
    text = render_spec(relaxed3)
    assert "during any run" in text
    c = classify(relaxed3)
    assert c.currency == "first-vintage"
    assert c.consistency == "weak"        # no longer fully serializable

    relaxed5 = spec_by_id("fig5-per-run")
    assert classify(relaxed5).currency == "first-bound"
