"""Setup shim for fully-offline environments.

``pip install -e .`` needs the ``wheel`` package (PEP 660 editable
wheels); on an offline machine without it, ``python setup.py develop``
installs the same editable package with no build-time dependencies.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Reproduction of 'Specifying Weak Sets' (Wing & Steere, ICDCS 1995): "
        "executable Larch-style specifications, four weak-set semantics, a "
        "simulated wide-area substrate, and the promised evaluation."
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
