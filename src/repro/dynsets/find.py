"""Recursive predicate search over the distributed file system.

"Also, by supporting a set-like abstraction, we can support
database-like queries, e.g., finding all files that satisfy a given
predicate."

:func:`weak_find` walks the directory tree breadth-first, opening each
directory as a dynamic set: directories stream their entries in
arrival order, unreachable files are retried or (with ``give_up_after``)
reported, and matches surface as soon as they are fetched — a
distributed ``find`` with weak-set semantics at every level.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Optional

from ..errors import FailureException
from ..net.address import NodeId
from .dynamic_set import set_open_dir
from .filesystem import FileMeta, FileSystem
from . import namespace as ns

__all__ = ["FindMatch", "FindResult", "weak_find"]

Predicate = Callable[[str, FileMeta], bool]


@dataclass(frozen=True)
class FindMatch:
    """One match: the file's path, its metadata, and when it surfaced."""

    path: str
    meta: FileMeta
    found_at: float


@dataclass
class FindResult:
    root: str
    matches: list[FindMatch] = field(default_factory=list)
    directories_visited: int = 0
    entries_examined: int = 0
    unreachable: list[str] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def paths(self) -> list[str]:
        return [m.path for m in self.matches]

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at


def weak_find(fs: FileSystem, client: NodeId, root: str,
              predicate: Predicate, *,
              parallelism: int = 4,
              give_up_after: Optional[float] = 5.0,
              max_matches: Optional[int] = None,
              **set_kwargs: Any) -> Generator[Any, Any, FindResult]:
    """Find files under ``root`` whose (path, meta) satisfy ``predicate``.

    Directories that are entirely unreachable are recorded in
    ``unreachable`` and skipped — the weak-set philosophy applied to the
    tree walk itself (partial answers over no answers).
    """
    result = FindResult(root=ns.normalize(root), started_at=fs.world.now)
    queue: deque[str] = deque([result.root])
    while queue:
        dir_path = queue.popleft()
        try:
            handle = yield from set_open_dir(
                fs, client, dir_path, parallelism=parallelism,
                give_up_after=give_up_after, **set_kwargs)
        except FailureException:
            result.unreachable.append(dir_path)
            continue
        result.directories_visited += 1
        try:
            while True:
                item = yield from handle.iterate()
                if item is None:
                    break
                result.entries_examined += 1
                meta = item.value
                child_path = ns.join(dir_path, item.element.name)
                if isinstance(meta, FileMeta) and meta.is_dir:
                    queue.append(child_path)
                if isinstance(meta, FileMeta) and predicate(child_path, meta):
                    result.matches.append(FindMatch(
                        path=child_path, meta=meta, found_at=fs.world.now))
                    if (max_matches is not None
                            and len(result.matches) >= max_matches):
                        queue.clear()
                        break
            for r in handle.results:
                if r.gave_up:
                    result.unreachable.append(
                        ns.join(dir_path, r.element.name))
        finally:
            handle.close()
    result.finished_at = fs.world.now
    return result
