"""Single-file operations: ``stat`` and ``read_file``.

The non-set-shaped half of the file-system API — resolve one path and
fetch its entry's metadata or contents over RPC, with the same failure
semantics as everything else (an unreachable home raises the paper's
``failure``; a deleted entry raises ``NoSuchPathError``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from ..errors import NoSuchObjectError, NoSuchPathError
from ..net.address import NodeId
from ..store.repository import Repository
from .filesystem import FileMeta, FileSystem
from . import namespace as ns

__all__ = ["StatResult", "stat", "read_file"]


@dataclass(frozen=True)
class StatResult:
    """What ``stat`` reports about one path."""

    path: str
    kind: str            # "file" | "dir"
    size: int
    home: NodeId

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"


def stat(fs: FileSystem, client: NodeId, path: str) -> Generator[Any, Any, StatResult]:
    """Fetch a path's metadata from its home node.

    Note the weak-FS subtlety: resolution uses the client-known entry
    index (paths are location hints, like NFS file handles), but the
    *authoritative* answer comes from the entry's home — a concurrently
    deleted file raises :class:`NoSuchPathError` here even though the
    parent directory may still list it on a stale replica.
    """
    path = ns.normalize(path)
    if fs.is_dir(path):
        return StatResult(path=path, kind="dir", size=0,
                          home=fs.dir_home(path))
    element = fs.entry(path)
    repo = Repository(fs.world, client)
    try:
        meta = yield from repo.fetch(element, use_cache=False)
    except NoSuchObjectError:
        raise NoSuchPathError(path) from None
    if not isinstance(meta, FileMeta):
        raise NoSuchPathError(path)
    return StatResult(path=path, kind=meta.kind, size=meta.size,
                      home=element.home)


def read_file(fs: FileSystem, client: NodeId, path: str) -> Generator[Any, Any, Any]:
    """Fetch a file's contents from its home node."""
    path = ns.normalize(path)
    element = fs.entry(path)
    repo = Repository(fs.world, client)
    try:
        meta = yield from repo.fetch(element, use_cache=False)
    except NoSuchObjectError:
        raise NoSuchPathError(path) from None
    if not isinstance(meta, FileMeta) or meta.is_dir:
        raise NoSuchPathError(f"{path} is not a regular file")
    return meta.content
