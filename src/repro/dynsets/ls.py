"""``ls`` two ways: the traditional strict command and the weak one.

"In a typical file system, the expected behavior of the UNIX-like
command ls … is to list the files in the directory in some order (e.g.,
alphabetically), thus requiring that all files be accessed before ls
returns.  In a distributed file system, satisfying this requirement is
prohibitively expensive; in the worst case, because of failures some
files may no longer be accessible and so non-termination is possible."

:func:`strict_ls` is that traditional command: read the directory,
stat (fetch) every entry *sequentially and alphabetically*, return the
sorted listing only when everything has been accessed — and fail if
anything is unreachable.

:func:`weak_ls` is the dynamic-sets version: entries stream back as the
parallel prefetcher materializes them, unreachable entries are retried
(or eventually reported as unavailable), and partial output is useful
immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import FailureException, NoSuchObjectError
from ..net.address import NodeId
from ..store.repository import Repository
from .dynamic_set import set_open_dir
from .filesystem import FileSystem

__all__ = ["LsEntry", "LsResult", "strict_ls", "weak_ls"]


@dataclass(frozen=True)
class LsEntry:
    name: str
    kind: str                   # "file" | "dir" | "unavailable"
    arrived_at: float = 0.0


@dataclass
class LsResult:
    path: str
    entries: list[LsEntry] = field(default_factory=list)
    failed: bool = False
    error: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def names(self) -> list[str]:
        return [e.name for e in self.entries]

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    @property
    def time_to_first(self) -> Optional[float]:
        if not self.entries:
            return None
        return self.entries[0].arrived_at - self.started_at


def strict_ls(fs: FileSystem, client: NodeId, path: str,
              timeout: Optional[float] = None) -> Generator[Any, Any, LsResult]:
    """The traditional all-or-nothing, alphabetical ``ls``."""
    repo = Repository(fs.world, client, rpc_timeout=timeout)
    result = LsResult(path=path, started_at=fs.world.now)
    try:
        view = yield from repo.read_membership(
            fs.directory_collection(path), source="primary"
        )
        for element in sorted(view.members, key=lambda e: e.name):
            try:
                meta = yield from repo.fetch(element, use_cache=False)
            except NoSuchObjectError:
                continue  # removed while we were listing; omit
            kind = getattr(meta, "kind", "file")
            result.entries.append(LsEntry(element.name, kind, fs.world.now))
    except FailureException as exc:
        result.failed = True
        result.error = str(exc)
        result.entries.clear()    # all-or-nothing: partial output discarded
    result.finished_at = fs.world.now
    return result


def weak_ls(fs: FileSystem, client: NodeId, path: str, *,
            parallelism: int = 4, give_up_after: Optional[float] = None,
            limit: Optional[int] = None,
            **kwargs: Any) -> Generator[Any, Any, LsResult]:
    """The dynamic-sets ``ls``: streaming, parallel, failure-tolerant."""
    result = LsResult(path=path, started_at=fs.world.now)
    handle = yield from set_open_dir(
        fs, client, path, parallelism=parallelism,
        give_up_after=give_up_after, **kwargs
    )
    try:
        fetched = yield from handle.iterate_all(limit=limit)
        for r in fetched:
            kind = getattr(r.value, "kind", "file")
            result.entries.append(LsEntry(r.element.name, kind, r.fetched_at))
        if handle.engine is not None:
            for r in handle.results:
                if r.gave_up:
                    result.entries.append(
                        LsEntry(r.element.name, "unavailable", r.fetched_at))
    finally:
        handle.close()
    result.finished_at = fs.world.now
    return result
