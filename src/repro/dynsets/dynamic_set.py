"""The dynamic-sets Unix API: ``setOpen`` / ``setIterate`` / ``setClose``.

This is the programmer-facing shape of Steere's thesis system ("one of
us (DCS) as part of a Ph.D. thesis is adding a set abstraction called
dynamic sets to the Unix Application Programmer's Interface"): open a
set (here, a directory of the distributed file system, or any
collection), iterate members as they arrive from the parallel
prefetcher, close when done — possibly early, which is the whole point
of streaming ("We can return information to the user more quickly by
yielding partial information").

Semantically this layer implements the paper's weakest design point
(Figure 6's optimistic behaviour), backed by the prefetch engine for
performance.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import SimulationError
from ..net.address import NodeId
from ..store.repository import Repository
from ..store.world import World
from .filesystem import FileSystem
from .prefetch import PrefetchEngine, PrefetchResult

__all__ = ["DynSetHandle", "set_open", "set_open_dir"]


class DynSetHandle:
    """An open dynamic set.  Create via :func:`set_open`."""

    def __init__(self, repo: Repository, coll_id: str, *,
                 parallelism: int = 4, retry_interval: float = 0.5,
                 give_up_after: Optional[float] = None,
                 closest_first: bool = True,
                 membership_source: str = "nearest",
                 batch_size: int = 1, use_cache: bool = False):
        self.repo = repo
        self.coll_id = coll_id
        self.parallelism = parallelism
        self.retry_interval = retry_interval
        self.give_up_after = give_up_after
        self.closest_first = closest_first
        self.membership_source = membership_source
        # Explicit cache/batch policy, threaded through to the shared
        # fetch pipeline (batch_size=1 = one RPC per element, the
        # historical behaviour; use_cache is never a default's accident).
        self.batch_size = batch_size
        self.use_cache = use_cache
        self.engine: Optional[PrefetchEngine] = None
        self.opened_at: Optional[float] = None
        self.first_result_at: Optional[float] = None
        self.closed = False
        self.results: list[PrefetchResult] = []

    # ------------------------------------------------------------------
    def open(self) -> Generator[Any, Any, "DynSetHandle"]:
        """Read the membership and start prefetching (setOpen)."""
        if self.engine is not None:
            raise SimulationError("dynamic set opened twice")
        self.opened_at = self.repo.world.now
        view = yield from self.repo.read_membership(
            self.coll_id, source=self.membership_source
        )
        # name order, not raw frozenset order: the set's iteration order
        # leaks the process-global oid counter and hash seed, which made
        # the closest_first=False ablation nondeterministic across runs
        self.engine = PrefetchEngine(
            self.repo, sorted(view.members, key=lambda e: e.name),
            parallelism=self.parallelism,
            retry_interval=self.retry_interval,
            give_up_after=self.give_up_after,
            closest_first=self.closest_first,
            batch_size=self.batch_size,
            use_cache=self.use_cache,
        )
        self.engine.start()
        return self

    def iterate(self) -> Generator[Any, Any, Optional[PrefetchResult]]:
        """Next member as soon as one is available (setIterate).

        Returns None once every member has been fetched, skipped, or
        given up on.  Skipped/gave-up results are filtered out — the
        caller sees only successfully materialized members (use
        ``engine.skipped`` / ``engine.gave_up`` for the accounting).
        """
        if self.engine is None:
            raise SimulationError("setIterate before setOpen")
        if self.closed:
            raise SimulationError("setIterate after setClose")
        while True:
            result = yield from self.engine.next_result()
            if result is None:
                return None
            self.results.append(result)
            if result.ok:
                if self.first_result_at is None:
                    self.first_result_at = self.repo.world.now
                return result

    def iterate_all(self, limit: Optional[int] = None) -> Generator[Any, Any, list[PrefetchResult]]:
        """Drain the set (optionally the first ``limit`` members)."""
        out: list[PrefetchResult] = []
        while limit is None or len(out) < limit:
            result = yield from self.iterate()
            if result is None:
                break
            out.append(result)
        return out

    def close(self) -> None:
        """Stop prefetching and release resources (setClose).

        Closing early is cheap and expected — e.g. the user found the
        restaurant they wanted after three menus.
        """
        if self.engine is not None:
            self.engine.stop()
        self.closed = True

    # -- statistics ------------------------------------------------------
    @property
    def time_to_first(self) -> Optional[float]:
        if self.first_result_at is None or self.opened_at is None:
            return None
        return self.first_result_at - self.opened_at

    def __repr__(self) -> str:
        state = "closed" if self.closed else ("open" if self.engine else "new")
        return f"DynSetHandle({self.coll_id}, {state}, {len(self.results)} results)"


def set_open(world: World, client: NodeId, coll_id: str,
             **kwargs: Any) -> Generator[Any, Any, DynSetHandle]:
    """setOpen over an arbitrary collection."""
    handle = DynSetHandle(Repository(world, client), coll_id, **kwargs)
    return (yield from handle.open())


def set_open_dir(fs: FileSystem, client: NodeId, path: str,
                 **kwargs: Any) -> Generator[Any, Any, DynSetHandle]:
    """setOpen over a file-system directory."""
    coll_id = fs.directory_collection(path)
    handle = DynSetHandle(Repository(fs.world, client), coll_id, **kwargs)
    return (yield from handle.open())
