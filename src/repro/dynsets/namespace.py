"""Path handling for the dynamic-sets file system."""

from __future__ import annotations

from ..errors import FileSystemError

__all__ = ["normalize", "split", "join", "parent", "basename", "components"]


def normalize(path: str) -> str:
    """Canonical absolute form: leading '/', no trailing '/', no empties."""
    if not path or not path.startswith("/"):
        raise FileSystemError(f"paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    for p in parts:
        if p in (".", ".."):
            raise FileSystemError(f"'.' and '..' are not supported: {path!r}")
    return "/" + "/".join(parts)


def components(path: str) -> list[str]:
    return [p for p in normalize(path).split("/") if p]


def split(path: str) -> tuple[str, str]:
    """(parent, basename); the root's parent is itself."""
    norm = normalize(path)
    if norm == "/":
        return "/", ""
    head, _, tail = norm.rpartition("/")
    return (head or "/"), tail


def parent(path: str) -> str:
    return split(path)[0]


def basename(path: str) -> str:
    return split(path)[1]


def join(base: str, *names: str) -> str:
    out = normalize(base)
    for name in names:
        if "/" in name or not name:
            raise FileSystemError(f"bad path component {name!r}")
        out = out.rstrip("/") + "/" + name
    return normalize(out)
