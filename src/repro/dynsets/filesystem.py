"""A distributed file system over the object store.

"In a distributed file system, files and subdirectories in the same
directory may reside on nodes different from each other and/or from the
directory itself."

The mapping is direct:

* a **directory** is a collection (id ``dir:<path>``) whose primary
  lives on the directory's *home node* — membership truth is exactly
  Unix semantics (the directory's entries live with the directory);
* a **file** is a member element whose data object (the file contents)
  lives on the file's own home node, anywhere in the network;
* a **subdirectory entry** is a member element whose data object is a
  small marker stored on the subdirectory's home node.

Directory setup is God-mode (``mkdir``/``create_file`` build the world
before the experiment starts); reads and the dynamic-sets API go over
honest RPC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from ..errors import (
    FileSystemError,
    NoSuchPathError,
    NotADirectoryError_,
)
from ..net.address import NodeId
from ..store.elements import Element
from ..store.world import World
from . import namespace as ns

__all__ = ["FileMeta", "FileSystem", "dir_collection_id"]


def dir_collection_id(path: str) -> str:
    return f"dir:{ns.normalize(path)}"


@dataclass(frozen=True)
class FileMeta:
    """The value stored in a member's data object."""

    kind: str                  # "file" | "dir"
    path: str
    content: Any = None
    size: int = 0

    @property
    def is_dir(self) -> bool:
        return self.kind == "dir"


class FileSystem:
    """Namespace management for directories-as-collections."""

    def __init__(self, world: World, root_node: NodeId,
                 replicas: Iterable[NodeId] = ()):
        self.world = world
        self.root_node = root_node
        self.default_replicas = tuple(replicas)
        self._dir_home: dict[str, NodeId] = {}
        self._entries: dict[str, Element] = {}   # path -> element (setup-time index)
        self.world.create_collection(dir_collection_id("/"), primary=root_node,
                                     replicas=self.default_replicas)
        self._dir_home["/"] = root_node

    # ------------------------------------------------------------------
    # setup (God-mode)
    # ------------------------------------------------------------------
    def mkdir(self, path: str, node: Optional[NodeId] = None,
              replicas: Optional[Iterable[NodeId]] = None) -> str:
        """Create a directory hosted on ``node`` (default: parent's home)."""
        path = ns.normalize(path)
        if path == "/" or path in self._dir_home:
            raise FileSystemError(f"directory exists: {path}")
        parent_path, name = ns.split(path)
        parent_home = self._require_dir(parent_path)
        node = node if node is not None else parent_home
        reps = tuple(replicas) if replicas is not None else self.default_replicas
        reps = tuple(r for r in reps if r != node)
        self.world.create_collection(dir_collection_id(path), primary=node,
                                     replicas=reps)
        self._dir_home[path] = node
        meta = FileMeta(kind="dir", path=path)
        element = self.world.seed_member(
            dir_collection_id(parent_path), name, value=meta, home=node
        )
        self._entries[path] = element
        return path

    def create_file(self, path: str, content: Any = None,
                    home: Optional[NodeId] = None, size: int = 0) -> Element:
        """Create a file whose contents live on ``home``."""
        path = ns.normalize(path)
        if path in self._entries or path in self._dir_home:
            raise FileSystemError(f"path exists: {path}")
        parent_path, name = ns.split(path)
        parent_home = self._require_dir(parent_path)
        home = home if home is not None else parent_home
        meta = FileMeta(kind="file", path=path, content=content, size=size)
        element = self.world.seed_member(
            dir_collection_id(parent_path), name, value=meta, home=home, size=size
        )
        self._entries[path] = element
        return element

    # ------------------------------------------------------------------
    # queries (setup-time index; runtime reads go through Repository/RPC)
    # ------------------------------------------------------------------
    def dir_home(self, path: str) -> NodeId:
        return self._require_dir(path)

    def is_dir(self, path: str) -> bool:
        return ns.normalize(path) in self._dir_home

    def entry(self, path: str) -> Element:
        path = ns.normalize(path)
        element = self._entries.get(path)
        if element is None:
            raise NoSuchPathError(path)
        return element

    def directory_collection(self, path: str) -> str:
        self._require_dir(path)
        return dir_collection_id(path)

    def listdir_truth(self, path: str) -> frozenset[Element]:
        """Ground truth directory contents (checker's view, not a client's)."""
        return self.world.true_members(self.directory_collection(path))

    def _require_dir(self, path: str) -> NodeId:
        path = ns.normalize(path)
        home = self._dir_home.get(path)
        if home is None:
            if path in self._entries:
                raise NotADirectoryError_(path)
            raise NoSuchPathError(path)
        return home

    def __repr__(self) -> str:
        return (f"FileSystem(root@{self.root_node}, dirs={len(self._dir_home)}, "
                f"entries={len(self._entries)})")
