"""The parallel prefetch engine.

This is where dynamic sets earn their keep: "(2) we can implement such
file system commands more efficiently by fetching files in parallel,
fetching 'closer' files first, and fetching all accessible files
despite network failures."

The engine runs ``parallelism`` worker processes.  Work is ordered
closest-first (expected latency to each element's home); fetches that
fail with a transport failure are retried optimistically after
``retry_interval`` (until ``give_up_after``, if set); elements whose
objects are gone are reported as skipped.  Results stream into a buffer
the consumer pops in arrival order — so the first yield happens after
roughly *one* fetch, not after all of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..errors import FailureException, NoSuchObjectError
from ..sim.events import Signal, Sleep, Wait
from ..store.elements import Element
from ..store.repository import Repository

__all__ = ["PrefetchResult", "PrefetchEngine"]


@dataclass(frozen=True)
class PrefetchResult:
    """One element's fate: fetched, skipped (gone), or given up."""

    element: Element
    value: Any = None
    skipped: bool = False          # object gone (member removed)
    gave_up: bool = False          # still unreachable at give_up_after
    fetched_at: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.skipped and not self.gave_up


class PrefetchEngine:
    """Bounded-parallelism, closest-first, optimistic-retry prefetcher."""

    def __init__(self, repo: Repository, elements: list[Element], *,
                 parallelism: int = 4, retry_interval: float = 0.5,
                 give_up_after: Optional[float] = None,
                 closest_first: bool = True,
                 priority=None):
        """
        Args:
            priority: optional application hint — a key function on
                elements that overrides the default ordering (Steere's
                dynamic sets let applications hint the prefetcher; e.g.
                ``priority=lambda e: sizes[e.oid]`` fetches small files
                first).  ``closest_first`` is ignored when given.
        """
        self.repo = repo
        self.parallelism = max(1, parallelism)
        self.retry_interval = retry_interval
        self.give_up_after = give_up_after
        if priority is not None:
            ordered = sorted(elements, key=lambda e: (priority(e), e.name))
        elif closest_first:
            ordered = self._order(elements)
        else:
            ordered = list(elements)
        self._todo: deque[Element] = deque(ordered)
        self._retry: deque[tuple[float, Element]] = deque()
        self._first_failure: dict[str, float] = {}
        self._buffer: deque[PrefetchResult] = deque()
        self._waiters: list[Signal] = []
        self._outstanding = len(ordered)
        self._procs: list = []
        self.fetched = 0
        self.skipped = 0
        self.gave_up = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker processes (daemons; stop with :meth:`stop`)."""
        kernel = self.repo.world.kernel
        for i in range(self.parallelism):
            proc = kernel.spawn(
                self._worker(), name=f"prefetch-{self.repo.client}-{i}", daemon=True
            )
            self._procs.append(proc)

    def stop(self) -> None:
        for proc in self._procs:
            proc._kill()
        self._procs.clear()

    @property
    def exhausted(self) -> bool:
        return self._outstanding == 0 and not self._buffer

    def next_result(self) -> Generator[Any, Any, Optional[PrefetchResult]]:
        """Pop the next arrival; None when every element is accounted for."""
        while True:
            if self._buffer:
                return self._buffer.popleft()
            if self._outstanding == 0:
                return None
            signal = Signal(name="prefetch-ready")
            self._waiters.append(signal)
            yield Wait(signal)

    # ------------------------------------------------------------------
    def _order(self, elements: list[Element]) -> list[Element]:
        net = self.repo.net
        client = self.repo.client

        def key(e: Element) -> tuple[float, str]:
            latency = net.expected_latency(client, e.home)
            return (latency if latency is not None else float("inf"), e.name)

        return sorted(elements, key=key)

    def _worker(self) -> Generator:
        while self._outstanding > 0:
            element = self._take()
            if element is None:
                if self._outstanding == 0:
                    return
                yield Sleep(self.retry_interval / 2)
                continue
            try:
                value = yield from self.repo.fetch(element)
                self.fetched += 1
                self._emit(PrefetchResult(
                    element, value=value, fetched_at=self.repo.world.now))
            except NoSuchObjectError:
                self.skipped += 1
                self._emit(PrefetchResult(element, skipped=True,
                                          fetched_at=self.repo.world.now))
            except FailureException:
                now = self.repo.world.now
                first = self._first_failure.setdefault(element.oid, now)
                if (self.give_up_after is not None
                        and now - first >= self.give_up_after):
                    self.gave_up += 1
                    self._emit(PrefetchResult(element, gave_up=True,
                                              fetched_at=now))
                else:
                    self.retries += 1
                    self._retry.append((now + self.retry_interval, element))

    def _take(self) -> Optional[Element]:
        if self._todo:
            return self._todo.popleft()
        if self._retry and self._retry[0][0] <= self.repo.world.now:
            return self._retry.popleft()[1]
        return None

    def _emit(self, result: PrefetchResult) -> None:
        self._outstanding -= 1
        self._buffer.append(result)
        waiters, self._waiters = self._waiters, []
        for signal in waiters:
            if not signal.fired:
                signal.fire(None)

    def __repr__(self) -> str:
        return (f"PrefetchEngine(outstanding={self._outstanding}, "
                f"fetched={self.fetched}, skipped={self.skipped}, "
                f"gave_up={self.gave_up}, retries={self.retries})")
