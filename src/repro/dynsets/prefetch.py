"""The parallel prefetch engine (now an adapter over the shared pipeline).

This is where dynamic sets earn their keep: "(2) we can implement such
file system commands more efficiently by fetching files in parallel,
fetching 'closer' files first, and fetching all accessible files
despite network failures."

The bespoke worker pool this module used to carry now lives in
:class:`repro.store.fetchplan.FetchPipeline` — the same engine every
``elements`` iterator drains through.  :class:`PrefetchEngine` keeps
its historical surface (``start``/``stop``/``next_result``, the
``fetched``/``skipped``/``gave_up``/``retries`` counters) and maps it
onto a pipeline in *engine mode*: failures retry internally on a timer
(until ``give_up_after``, if set) and the consumer only ever sees final
results, in arrival order — so the first yield happens after roughly
*one* fetch, not after all of them.

``batch_size`` is new: same-home elements coalesce into one
``get_objects`` multi-get.  The default of 1 reproduces the historical
one-RPC-per-element engine exactly; ``parallelism`` still bounds how
many fetches are in flight at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..store.elements import Element
from ..store.fetchplan import FetchPipeline
from ..store.repository import Repository

__all__ = ["PrefetchResult", "PrefetchEngine"]


@dataclass(frozen=True)
class PrefetchResult:
    """One element's fate: fetched, skipped (gone), or given up."""

    element: Element
    value: Any = None
    skipped: bool = False          # object gone (member removed)
    gave_up: bool = False          # still unreachable at give_up_after
    fetched_at: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.skipped and not self.gave_up


class PrefetchEngine:
    """Bounded-parallelism, closest-first, optimistic-retry prefetcher."""

    def __init__(self, repo: Repository, elements: list[Element], *,
                 parallelism: int = 4, retry_interval: float = 0.5,
                 give_up_after: Optional[float] = None,
                 closest_first: bool = True,
                 priority=None, batch_size: int = 1,
                 use_cache: bool = False):
        """
        Args:
            priority: optional application hint — a key function on
                elements that overrides the default ordering (Steere's
                dynamic sets let applications hint the prefetcher; e.g.
                ``priority=lambda e: sizes[e.oid]`` fetches small files
                first).  ``closest_first`` is ignored when given.
            batch_size: how many same-home elements may share one
                batched ``get_objects`` RPC (1 = historical behaviour).
            use_cache: consult/admit the repository's client cache —
                explicit, so cache policy is never a default's accident.
        """
        self.repo = repo
        self.parallelism = max(1, parallelism)
        self.retry_interval = retry_interval
        self.give_up_after = give_up_after
        self._pipe = FetchPipeline(
            repo, use_cache=use_cache,
            window=self.parallelism, batch_size=batch_size,
            validation="none", in_order=False,
            closest_first=closest_first, priority=priority,
            retry_interval=retry_interval, give_up_after=give_up_after,
            name=f"prefetch-{repo.client}")
        self._pipe.submit(elements)
        self._pipe.seal()          # fixed work-list: workers exit when done

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker processes (daemons; stop with :meth:`stop`)."""
        self._pipe.start()

    def stop(self) -> None:
        self._pipe.stop()

    @property
    def exhausted(self) -> bool:
        return self._pipe.exhausted

    @property
    def fetched(self) -> int:
        return self._pipe.fetched

    @property
    def skipped(self) -> int:
        return self._pipe.gone

    @property
    def gave_up(self) -> int:
        return self._pipe.gave_up

    @property
    def retries(self) -> int:
        return self._pipe.retries

    def next_result(self) -> Generator[Any, Any, Optional[PrefetchResult]]:
        """Pop the next arrival; None when every element is accounted for."""
        result = yield from self._pipe.next_result()
        if result is None:
            return None
        return PrefetchResult(
            element=result.element, value=result.value,
            skipped=result.gone, gave_up=result.unreachable,
            fetched_at=result.fetched_at)

    def __repr__(self) -> str:
        return (f"PrefetchEngine(outstanding={len(self._pipe._live)}, "
                f"fetched={self.fetched}, skipped={self.skipped}, "
                f"gave_up={self.gave_up}, retries={self.retries})")
