"""Dynamic sets: the distributed-file-system layer of §1.1.

Directories are collections whose entries are scattered across nodes;
``setOpen``/``setIterate``/``setClose`` stream members via a parallel,
closest-first, optimistically-retrying prefetcher; ``weak_ls`` and
``strict_ls`` make the paper's motivating comparison concrete.
"""

from . import namespace
from .dynamic_set import DynSetHandle, set_open, set_open_dir
from .fileops import StatResult, read_file, stat
from .filesystem import FileMeta, FileSystem, dir_collection_id
from .find import FindMatch, FindResult, weak_find
from .ls import LsEntry, LsResult, strict_ls, weak_ls
from .prefetch import PrefetchEngine, PrefetchResult

__all__ = [
    "DynSetHandle",
    "FileMeta",
    "FindMatch",
    "FindResult",
    "FileSystem",
    "LsEntry",
    "LsResult",
    "PrefetchEngine",
    "PrefetchResult",
    "StatResult",
    "dir_collection_id",
    "namespace",
    "set_open",
    "set_open_dir",
    "read_file",
    "stat",
    "strict_ls",
    "weak_find",
    "weak_ls",
]
