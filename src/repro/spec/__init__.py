"""Executable Larch-style specifications of weak sets.

The paper's primary contribution, made runnable: the computation model
(states, histories, the object/value distinction), the special
constructs (``remembers`` history objects, ``constraint`` history
properties, ``suspends``/``returns``/``fails``, and the novel
``reachable`` function), the four figure specifications, and a trace
conformance checker.  See DESIGN.md §3 for the construct-to-module map.
"""

from .explain import InvocationExplanation, explain_trace
from .checker import (
    ConformanceReport,
    check_conformance,
    check_constraint,
    check_ensures,
    conformance_matrix,
    weak_guarantee_violations,
)
from .constraints import (
    Constraint,
    GrowOnlyConstraint,
    ImmutableConstraint,
    PerRunConstraint,
    TrivialConstraint,
    per_run_grow_only,
    per_run_immutable,
)
from .figures import (
    ALL_FIGURES,
    RELAXED_VARIANTS,
    Figure1ImmutableNoFailures,
    Figure3ImmutableWithFailures,
    Figure3PerRunImmutable,
    Figure4SnapshotLossOfMutations,
    Figure5GrowOnlyPessimistic,
    Figure5PerRunGrowOnly,
    Figure6OptimisticDynamic,
    spec_by_id,
)
from .iterspec import IteratorSpec, SpecViolationDetail, structural_violations
from .mathset import FunctionalSet
from .minimize import minimal_violating_prefix, prefix_of
from .procedures import CheckedProcedures, ProcedureViolation
from .render import render_all, render_spec
from .serialize import trace_from_dict, trace_from_json, trace_to_dict, trace_to_json
from .state import InvocationRecord, StateSnapshot
from .taxonomy import Classification, classify, taxonomy_table
from .termination import Failed, Outcome, Returned, Yielded
from .trace import IterationTrace, TraceRecorder

__all__ = [
    "ALL_FIGURES",
    "RELAXED_VARIANTS",
    "Classification",
    "ConformanceReport",
    "Constraint",
    "CheckedProcedures",
    "Failed",
    "Figure1ImmutableNoFailures",
    "Figure3ImmutableWithFailures",
    "Figure3PerRunImmutable",
    "Figure4SnapshotLossOfMutations",
    "Figure5GrowOnlyPessimistic",
    "Figure5PerRunGrowOnly",
    "Figure6OptimisticDynamic",
    "FunctionalSet",
    "GrowOnlyConstraint",
    "ImmutableConstraint",
    "InvocationExplanation",
    "InvocationRecord",
    "IterationTrace",
    "IteratorSpec",
    "Outcome",
    "PerRunConstraint",
    "ProcedureViolation",
    "Returned",
    "SpecViolationDetail",
    "StateSnapshot",
    "TraceRecorder",
    "TrivialConstraint",
    "Yielded",
    "check_conformance",
    "check_constraint",
    "check_ensures",
    "classify",
    "conformance_matrix",
    "explain_trace",
    "minimal_violating_prefix",
    "prefix_of",
    "per_run_grow_only",
    "per_run_immutable",
    "render_all",
    "render_spec",
    "spec_by_id",
    "structural_violations",
    "taxonomy_table",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "weak_guarantee_violations",
]
