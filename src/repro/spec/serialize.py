"""Trace (de)serialization: ship recorded traces out of the simulator.

A trace serializes to plain dicts/JSON and round-trips losslessly, so
conformance checking can happen offline (store the traces from a long
fuzz run, re-check them against a revised spec later) and traces can be
diffed or archived as counterexamples.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SpecificationError
from ..store.elements import Element
from .state import InvocationRecord, StateSnapshot
from .termination import Failed, Outcome, Returned, Yielded
from .trace import IterationTrace

__all__ = ["trace_to_dict", "trace_from_dict", "trace_to_json", "trace_from_json"]


def _element_to_dict(e: Element) -> dict:
    return {"name": e.name, "oid": e.oid, "home": e.home}


def _element_from_dict(d: dict) -> Element:
    return Element(name=d["name"], oid=d["oid"], home=d["home"])


def _members_to_list(members: frozenset[Element]) -> list[dict]:
    return [_element_to_dict(e) for e in sorted(members)]


def _members_from_list(items: list[dict]) -> frozenset[Element]:
    return frozenset(_element_from_dict(d) for d in items)


def _outcome_to_dict(outcome: Outcome) -> dict:
    if isinstance(outcome, Yielded):
        payload: dict[str, Any] = {"kind": "suspends",
                                   "element": _element_to_dict(outcome.element)}
        if isinstance(outcome.value, (str, int, float, bool, type(None))):
            payload["value"] = outcome.value
        return payload
    if isinstance(outcome, Returned):
        return {"kind": "returns"}
    if isinstance(outcome, Failed):
        return {"kind": "fails", "reason": outcome.reason}
    raise SpecificationError(f"unknown outcome {outcome!r}")


def _outcome_from_dict(d: dict) -> Outcome:
    kind = d.get("kind")
    if kind == "suspends":
        return Yielded(_element_from_dict(d["element"]), d.get("value"))
    if kind == "returns":
        return Returned()
    if kind == "fails":
        return Failed(d.get("reason", "failure"))
    raise SpecificationError(f"unknown outcome kind {kind!r}")


def _snapshot_to_dict(snap: StateSnapshot) -> dict:
    return {
        "time": snap.time,
        "members": _members_to_list(snap.members),
        "reachable_nodes": sorted(snap.reachable_nodes),
    }


def _snapshot_from_dict(d: dict) -> StateSnapshot:
    return StateSnapshot(
        time=d["time"],
        members=_members_from_list(d["members"]),
        reachable_nodes=frozenset(d["reachable_nodes"]),
    )


def trace_to_dict(trace: IterationTrace) -> dict:
    return {
        "coll_id": trace.coll_id,
        "client": trace.client,
        "impl_name": trace.impl_name,
        "first_candidates": [_snapshot_to_dict(s) for s in trace.first_candidates],
        "invocations": [
            {
                "index": inv.index,
                "t_invoke": inv.t_invoke,
                "t_complete": inv.t_complete,
                "yielded_pre": _members_to_list(inv.yielded_pre),
                "yielded_post": _members_to_list(inv.yielded_post),
                "outcome": _outcome_to_dict(inv.outcome),
                "snapshots": [_snapshot_to_dict(s) for s in inv.snapshots],
            }
            for inv in trace.invocations
        ],
    }


def trace_from_dict(data: dict) -> IterationTrace:
    trace = IterationTrace(
        coll_id=data["coll_id"],
        client=data["client"],
        impl_name=data.get("impl_name", ""),
    )
    trace.first_candidates = tuple(
        _snapshot_from_dict(s) for s in data.get("first_candidates", [])
    )
    for inv_data in data.get("invocations", []):
        trace.invocations.append(InvocationRecord(
            index=inv_data["index"],
            t_invoke=inv_data["t_invoke"],
            t_complete=inv_data["t_complete"],
            yielded_pre=_members_from_list(inv_data["yielded_pre"]),
            yielded_post=_members_from_list(inv_data["yielded_post"]),
            outcome=_outcome_from_dict(inv_data["outcome"]),
            snapshots=tuple(_snapshot_from_dict(s)
                            for s in inv_data["snapshots"]),
        ))
    return trace


def trace_to_json(trace: IterationTrace, indent: int = 0) -> str:
    return json.dumps(trace_to_dict(trace), indent=indent or None, sort_keys=True)


def trace_from_json(text: str) -> IterationTrace:
    return trace_from_dict(json.loads(text))
