"""Figure 1's immutable set, as a value (the LSL tier).

The paper's Figure 1 specifies an *immutable* set type whose operations
return new sets::

    create = proc () returns (t: set)
        ensures t_post = {} ∧ new(t)
    add = proc (s: set, e: elem) returns (t: set)
        ensures t_post = s_pre ∪ {e} ∧ new(t)
    remove = proc (e: elem, s: set) returns (t: set)
        ensures t_post = s_pre − {e} ∧ new(t)
    size = proc (s: set) returns (i: int)
        ensures i = |s_pre|
    elements = iter (s: set) yields (e: elem)

:class:`FunctionalSet` implements exactly these post-conditions:
operations never mutate their receiver (``new(t)`` — a fresh object is
returned), and ``elements()`` yields each element exactly once.  It
serves as the reference model the property-based tests compare every
weak-set implementation's *sequential, failure-free* behaviour against.
"""

from __future__ import annotations

from typing import Generic, Hashable, Iterable, Iterator, TypeVar

__all__ = ["FunctionalSet"]

E = TypeVar("E", bound=Hashable)


class FunctionalSet(Generic[E]):
    """An immutable set value with Figure 1's operations."""

    __slots__ = ("_items",)

    def __init__(self, items: Iterable[E] = ()):
        object.__setattr__(self, "_items", frozenset(items))

    # -- Figure 1 operations -----------------------------------------------
    @classmethod
    def create(cls) -> "FunctionalSet[E]":
        """``ensures t_post = {} ∧ new(t)``"""
        return cls()

    def add(self, e: E) -> "FunctionalSet[E]":
        """``ensures t_post = s_pre ∪ {e} ∧ new(t)``"""
        return FunctionalSet(self._items | {e})

    def remove(self, e: E) -> "FunctionalSet[E]":
        """``ensures t_post = s_pre − {e} ∧ new(t)``

        Removing an absent element is a no-op returning an equal (but
        new) set, exactly as ``s_pre − {e}`` evaluates.
        """
        return FunctionalSet(self._items - {e})

    def size(self) -> int:
        """``ensures i = |s_pre|``"""
        return len(self._items)

    def elements(self) -> Iterator[E]:
        """Figure 1's iterator, sequential and failure-free.

        Yields every element of ``s_first`` exactly once, in an
        unspecified (here: sorted-by-repr, hence deterministic) order.
        """
        yielded: set[E] = set()
        for e in sorted(self._items, key=repr):
            assert e not in yielded  # the `remembers yielded` invariant
            yielded.add(e)
            yield e

    # -- value behaviour ------------------------------------------------------
    def members(self) -> frozenset[E]:
        return self._items

    def __contains__(self, e: object) -> bool:
        return e in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[E]:
        return self.elements()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FunctionalSet):
            return self._items == other._items
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("FunctionalSet", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in sorted(self._items, key=repr))
        return f"FunctionalSet({{{inner}}})"
