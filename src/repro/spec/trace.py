"""Recording iterator executions as checkable traces.

The :class:`TraceRecorder` is the bridge between an *implementation*
(which runs in simulated time, making RPCs) and the *specification
checker* (which reasons over the paper's atomic state model).  The
weak-set iterator machinery calls :meth:`TraceRecorder.invocation_started`
/ :meth:`invocation_completed` around each invocation; in between, the
recorder listens for world changes and samples ground truth at every
one, building the invocation's candidate-state window (see
:mod:`repro.spec.state`).

The recorder holds the God's-eye :class:`~repro.store.world.World`
reference.  Implementations never see it — they only trigger the
bracketing calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import IteratorProtocolError, SpecificationError
from ..net.address import NodeId
from ..store.elements import Element
from ..store.world import World
from .state import InvocationRecord, StateSnapshot
from .termination import Failed, Outcome, Yielded

__all__ = ["IterationTrace", "TraceRecorder"]


def _same_state(a: StateSnapshot, b: StateSnapshot) -> bool:
    """Equal up to time: the assertion-relevant content is unchanged."""
    return a.members == b.members and a.reachable_nodes == b.reachable_nodes


@dataclass
class IterationTrace:
    """The full observable history of one use of the ``elements`` iterator."""

    coll_id: str
    client: NodeId
    impl_name: str = ""
    invocations: list[InvocationRecord] = field(default_factory=list)
    first_candidates: tuple[StateSnapshot, ...] = ()

    @property
    def terminated(self) -> bool:
        if not self.invocations:
            return False
        return not self.invocations[-1].outcome.suspends

    @property
    def failed(self) -> bool:
        return bool(self.invocations) and isinstance(self.invocations[-1].outcome, Failed)

    @property
    def yielded_last(self) -> frozenset[Element]:
        """The history object's final value (paper: yielded_last)."""
        if not self.invocations:
            return frozenset()
        return self.invocations[-1].yielded_post

    def yielded_elements(self) -> list[Element]:
        """Elements in yield order."""
        return [
            inv.outcome.element
            for inv in self.invocations
            if isinstance(inv.outcome, Yielded)
        ]

    @property
    def t_first(self) -> Optional[float]:
        return self.invocations[0].t_invoke if self.invocations else None

    @property
    def t_last(self) -> Optional[float]:
        return self.invocations[-1].t_complete if self.invocations else None

    def window(self) -> Optional[tuple[float, float]]:
        """[first-state time, last-state time] of this iterator use."""
        if not self.invocations:
            return None
        return (self.invocations[0].t_invoke, self.invocations[-1].t_complete)

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "suspended"
        return (f"IterationTrace({self.impl_name or '?'} over {self.coll_id} "
                f"from {self.client}: {len(self.invocations)} invocations, {status})")


class TraceRecorder:
    """Builds an :class:`IterationTrace` from bracketing calls."""

    def __init__(self, world: World, coll_id: str, client: NodeId, impl_name: str = ""):
        self.world = world
        self.trace = IterationTrace(coll_id=coll_id, client=client, impl_name=impl_name)
        self._yielded: frozenset[Element] = frozenset()  # `remembers yielded`
        self._open = False
        self._t_invoke = 0.0
        self._snapshots: list[StateSnapshot] = []
        self._unsubscribe: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    @property
    def yielded(self) -> frozenset[Element]:
        """Current value of the ``remembers yielded`` history object."""
        return self._yielded

    def invocation_started(self) -> None:
        if self._open:
            raise IteratorProtocolError("invocation started while one is open")
        if self.trace.terminated:
            raise IteratorProtocolError("iterator already terminated")
        self._open = True
        self._t_invoke = self.world.now
        self._snapshots = [self._sample()]
        self._unsubscribe = self.world.on_change(self._on_change)

    def invocation_completed(self, outcome: Outcome) -> InvocationRecord:
        if not self._open:
            raise IteratorProtocolError("invocation completed but none is open")
        self._open = False
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        final = self._sample()
        if not self._snapshots or not _same_state(self._snapshots[-1], final):
            self._snapshots.append(final)
        yielded_pre = self._yielded
        if isinstance(outcome, Yielded):
            if outcome.element in self._yielded:
                raise SpecificationError(
                    f"iterator yielded {outcome.element} twice (duplicate yield "
                    "violates the remembers-yielded protocol)"
                )
            self._yielded = self._yielded | {outcome.element}
        record = InvocationRecord(
            index=len(self.trace.invocations),
            t_invoke=self._t_invoke,
            t_complete=self.world.now,
            yielded_pre=yielded_pre,
            yielded_post=self._yielded,
            outcome=outcome,
            snapshots=tuple(self._snapshots),
        )
        self.trace.invocations.append(record)
        if record.index == 0:
            # Candidate first-states: the checker fixes s_first as one of
            # the states the world passed through during invocation 0.
            self.trace.first_candidates = record.snapshots
        return record

    def abort(self) -> None:
        """Stop listening (iterator discarded without terminating)."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._open = False

    # ------------------------------------------------------------------
    def _on_change(self) -> None:
        snap = self._sample()
        if self._snapshots and _same_state(self._snapshots[-1], snap):
            return
        self._snapshots.append(snap)

    def _sample(self) -> StateSnapshot:
        return StateSnapshot(
            time=self.world.now,
            members=self.world.true_members(self.trace.coll_id),
            reachable_nodes=frozenset(self.world.net.reachable_from(self.trace.client)),
        )
