"""Narrated conformance: why a trace passes, invocation by invocation.

``check_conformance`` answers *whether*; :func:`explain_trace` answers
*why* — for each invocation, which window state justifies the outcome
under the given figure, or why none does.  Useful when developing a new
implementation against the specs (and in ``examples/spec_playground.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .iterspec import IteratorSpec
from .state import InvocationRecord, StateSnapshot
from .termination import Failed, Returned, Yielded
from .trace import IterationTrace

__all__ = ["InvocationExplanation", "explain_trace"]


@dataclass(frozen=True)
class InvocationExplanation:
    """One invocation's justification (or lack of one)."""

    index: int
    outcome: str
    justified: bool
    justifying_time: Optional[float]
    detail: str

    def __str__(self) -> str:
        mark = "✓" if self.justified else "✗"
        return f"  {mark} #{self.index} {self.outcome}: {self.detail}"


def _names(members) -> str:
    return "{" + ", ".join(sorted(e.name for e in members)) + "}"


def _explain_invocation(spec: IteratorSpec, inv: InvocationRecord,
                        s_first_members) -> InvocationExplanation:
    justifying: Optional[StateSnapshot] = None
    for snap in inv.snapshots:
        if spec.membership_basis == "first":
            s = s_first_members
            reach = snap.reachable_of(s_first_members)
        else:
            s = snap.members
            reach = snap.reachable_members
        kind, allowed = spec.required_outcome(s, reach, inv.yielded_pre)
        outcome = inv.outcome
        ok = (
            (kind == "suspends" and isinstance(outcome, Yielded)
             and outcome.element in allowed)
            or (kind == "returns" and isinstance(outcome, Returned))
            or (kind == "fails" and spec.allows_failure
                and isinstance(outcome, Failed))
        )
        if ok:
            justifying = snap
            break
    if justifying is not None:
        if spec.membership_basis == "first":
            reach = justifying.reachable_of(s_first_members)
            basis = f"s_first={_names(s_first_members)}"
        else:
            reach = justifying.reachable_members
            basis = f"s_pre={_names(justifying.members)}"
        detail = (f"justified by σ@{justifying.time:.3f} "
                  f"({basis}, reachable={_names(reach)})")
        return InvocationExplanation(inv.index, str(inv.outcome), True,
                                     justifying.time, detail)
    exit_snap = inv.exit_snapshot
    s = s_first_members if spec.membership_basis == "first" else exit_snap.members
    reach = exit_snap.reachable_of(s)
    kind, allowed = spec.required_outcome(s, reach, inv.yielded_pre)
    want = kind if kind != "suspends" else f"suspends from {_names(allowed)}"
    detail = (f"NO window state justifies it; at exit the clause requires "
              f"{want}")
    return InvocationExplanation(inv.index, str(inv.outcome), False,
                                 None, detail)


def explain_trace(trace: IterationTrace, spec: IteratorSpec) -> list[InvocationExplanation]:
    """Per-invocation justifications under ``spec``.

    For first-basis specs the explanation fixes σ_first greedily: the
    candidate that justifies the most invocations (ties to the earliest).
    """
    if not trace.invocations:
        return []
    if spec.membership_basis == "first":
        candidates = trace.first_candidates or trace.invocations[0].snapshots
        best_members = None
        best_score = -1
        for candidate in candidates:
            score = sum(
                1 for inv in trace.invocations
                if _explain_invocation(spec, inv, candidate.members).justified
            )
            if score > best_score:
                best_score = score
                best_members = candidate.members
        s_first = best_members if best_members is not None else frozenset()
    else:
        s_first = frozenset()
    return [_explain_invocation(spec, inv, s_first)
            for inv in trace.invocations]
