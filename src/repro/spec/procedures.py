"""Runtime checking of Figure 1's *procedure* specifications.

The figures' iterator clauses get a full trace checker
(:mod:`repro.spec.checker`); the type's procedures deserve the same
treatment.  :class:`CheckedProcedures` wraps a
:class:`~repro.store.repository.Repository` and, around every
``add``/``remove``/``size`` call, snapshots the ground-truth value of
the set to verify the Larch post-conditions:

* ``add``:    ``s_post = s_pre ∪ {e}``  and ``new(e)`` (a fresh object)
* ``remove``: ``s_post = s_pre − {e}``
* ``size``:   ``i = |s_pre|``

For the *distributed* set, the checker uses the same window semantics
as the iterator checker: the post-condition must hold against some
ground-truth state observed at the operation's completion.  (Under
concurrent mutators an exact ``s_pre ∪ {e}`` is unattainable — another
client's add may interleave — so the checker verifies the operation's
*footprint* instead: the element appears/disappears, and nothing else
changed that this operation could have changed.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import SpecViolation
from ..store.elements import Element
from ..store.repository import Repository
from ..store.world import World

__all__ = ["ProcedureViolation", "CheckedProcedures"]


@dataclass(frozen=True)
class ProcedureViolation:
    """One failed post-condition."""

    operation: str
    message: str
    at: float

    def __str__(self) -> str:
        return f"[t={self.at:.3f}] {self.operation}: {self.message}"


@dataclass
class CheckedProcedures:
    """A repository wrapper that verifies procedure post-conditions.

    Violations are collected (``violations``) rather than raised, so a
    stress test can drive thousands of operations and assert emptiness
    at the end; pass ``strict=True`` to raise immediately instead.

    Besides each operation's own post-condition, the **modifies clause**
    is checked as a frame condition: "The modifies clause is shorthand
    for a predicate that asserts that all objects not listed do not
    change in value."  ``add``/``remove`` list only their own collection,
    so every *other* collection's value must be identical before and
    after (in a single-writer test; concurrent writers would need the
    window semantics the iterator checker uses).
    """

    world: World
    repo: Repository
    coll_id: str
    strict: bool = False
    check_frame: bool = True
    violations: list[ProcedureViolation] = field(default_factory=list)
    checked_ops: int = 0

    # ------------------------------------------------------------------
    def _frame_snapshot(self) -> dict[str, frozenset[Element]]:
        if not self.check_frame:
            return {}
        return {
            coll_id: self.world.true_members(coll_id)
            for coll_id in self.world.collections
            if coll_id != self.coll_id
        }

    def _check_frame(self, operation: str,
                     before: dict[str, frozenset[Element]]) -> None:
        for coll_id, value in before.items():
            after = self.world.true_members(coll_id)
            if after != value:
                self._flag(operation,
                           f"modifies clause violated: unlisted collection "
                           f"{coll_id!r} changed value")

    def add(self, name: str, value: Any = None, home: Optional[str] = None,
            size: int = 0) -> Generator[Any, Any, Element]:
        s_pre = self.world.true_members(self.coll_id)
        frame = self._frame_snapshot()
        element = yield from self.repo.add(self.coll_id, name, value, home, size)
        s_post = self.world.true_members(self.coll_id)
        self._check_frame("add", frame)
        self.checked_ops += 1
        if element in s_pre:
            self._flag("add", f"new({element}) fails: element existed in s_pre")
        if element not in s_post:
            self._flag("add", f"s_post does not contain the added {element}")
        # footprint: everything else this op could not have touched
        unexpected_losses = s_pre - s_post
        if unexpected_losses:
            self._flag("add", f"s_post lost unrelated members {sorted(str(e) for e in unexpected_losses)}")
        return element

    def remove(self, element: Element) -> Generator[Any, Any, None]:
        frame = self._frame_snapshot()
        yield from self.repo.remove(self.coll_id, element)
        s_post = self.world.true_members(self.coll_id)
        self._check_frame("remove", frame)
        self.checked_ops += 1
        if element in s_post:
            self._flag("remove", f"s_post still contains the removed {element}")

    def size(self) -> Generator[Any, Any, int]:
        s_pre = self.world.true_members(self.coll_id)
        result = yield from self.repo.read_membership(self.coll_id, source="primary")
        s_post = self.world.true_members(self.coll_id)
        self.checked_ops += 1
        reported = len(result.members)
        # |s| at some state within the operation window
        if reported not in (len(s_pre), len(s_post)):
            self._flag("size", f"reported {reported}, but |s| was "
                               f"{len(s_pre)} then {len(s_post)}")
        return reported

    # ------------------------------------------------------------------
    def _flag(self, operation: str, message: str) -> None:
        violation = ProcedureViolation(operation, message, self.world.now)
        if self.strict:
            raise SpecViolation(str(violation))
        self.violations.append(violation)
