"""A small executable fragment of the Larch Shared Language Set trait.

The paper's method is two-tiered (Wing's thesis, the Larch book): the
*interface* tier specifies procedures and iterators (our
:mod:`repro.spec.figures`), while the *shared* tier (LSL) defines the
value space — "LSL is also used to specify a type's value space for
objects.  … in our examples we use standard set notation for the
functions on sets, e.g., ∪ for set union and − for set difference."

This module makes the shared tier executable too: set values as terms
over the trait's generators (``empty``, ``insert``) and operators
(``delete``, ``union``, ``difference``, ``intersection``), an evaluator
into Python frozensets, and the trait's equational axioms as checkable
predicates (the property tests run them over random terms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

__all__ = [
    "Term", "Empty", "Insert", "Delete", "UnionOf", "DifferenceOf",
    "IntersectionOf", "evaluate", "member", "size", "is_subset",
    "terms_equal", "AXIOMS",
]

E = Hashable


class Term:
    """Base class of Set-trait terms."""

    def insert(self, e: E) -> "Insert":
        return Insert(self, e)

    def delete(self, e: E) -> "Delete":
        return Delete(self, e)

    def union(self, other: "Term") -> "UnionOf":
        return UnionOf(self, other)

    def difference(self, other: "Term") -> "DifferenceOf":
        return DifferenceOf(self, other)

    def intersection(self, other: "Term") -> "IntersectionOf":
        return IntersectionOf(self, other)


@dataclass(frozen=True)
class Empty(Term):
    """The trait's generator ``empty: → Set``."""

    def __str__(self) -> str:
        return "{}"


@dataclass(frozen=True)
class Insert(Term):
    """``insert: Set, E → Set``."""

    base: Term
    element: E

    def __str__(self) -> str:
        return f"insert({self.base}, {self.element!r})"


@dataclass(frozen=True)
class Delete(Term):
    """``delete: Set, E → Set``."""

    base: Term
    element: E

    def __str__(self) -> str:
        return f"delete({self.base}, {self.element!r})"


@dataclass(frozen=True)
class UnionOf(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} ∪ {self.right})"


@dataclass(frozen=True)
class DifferenceOf(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} − {self.right})"


@dataclass(frozen=True)
class IntersectionOf(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} ∩ {self.right})"


def evaluate(term: Term) -> frozenset:
    """Interpret a term in the standard model (Python frozensets)."""
    if isinstance(term, Empty):
        return frozenset()
    if isinstance(term, Insert):
        return evaluate(term.base) | {term.element}
    if isinstance(term, Delete):
        return evaluate(term.base) - {term.element}
    if isinstance(term, UnionOf):
        return evaluate(term.left) | evaluate(term.right)
    if isinstance(term, DifferenceOf):
        return evaluate(term.left) - evaluate(term.right)
    if isinstance(term, IntersectionOf):
        return evaluate(term.left) & evaluate(term.right)
    raise TypeError(f"not a Set-trait term: {term!r}")


def member(e: E, term: Term) -> bool:
    """``∈ : E, Set → Bool`` — defined structurally, not via evaluate.

    The structural definition mirrors the trait's axioms
    (``member(e, empty) = false``; ``member(e1, insert(s, e2)) =
    (e1 = e2) ∨ member(e1, s)``), so comparing it against the standard
    model *is* an axiom check.
    """
    if isinstance(term, Empty):
        return False
    if isinstance(term, Insert):
        return e == term.element or member(e, term.base)
    if isinstance(term, Delete):
        return e != term.element and member(e, term.base)
    if isinstance(term, UnionOf):
        return member(e, term.left) or member(e, term.right)
    if isinstance(term, DifferenceOf):
        return member(e, term.left) and not member(e, term.right)
    if isinstance(term, IntersectionOf):
        return member(e, term.left) and member(e, term.right)
    raise TypeError(f"not a Set-trait term: {term!r}")


def size(term: Term) -> int:
    """``size: Set → Int`` — structural, duplicate-aware."""
    if isinstance(term, Empty):
        return 0
    if isinstance(term, Insert):
        return size(term.base) + (0 if member(term.element, term.base) else 1)
    # non-generator operators: fall back to the model
    return len(evaluate(term))


def is_subset(a: Term, b: Term) -> bool:
    return evaluate(a) <= evaluate(b)


def terms_equal(a: Term, b: Term) -> bool:
    """Equality in the trait's model: same denoted set."""
    return evaluate(a) == evaluate(b)


# ---------------------------------------------------------------------------
# The trait's equational axioms, as named checkable predicates.
# Each takes concrete terms/elements and returns True iff the equation
# holds for them; the property tests quantify with hypothesis.
# ---------------------------------------------------------------------------

def _ax_insert_idempotent(s: Term, e: E) -> bool:
    return terms_equal(s.insert(e).insert(e), s.insert(e))


def _ax_insert_commutative(s: Term, e1: E, e2: E) -> bool:
    return terms_equal(s.insert(e1).insert(e2), s.insert(e2).insert(e1))


def _ax_member_empty(e: E) -> bool:
    return member(e, Empty()) is False


def _ax_member_insert(s: Term, e1: E, e2: E) -> bool:
    return member(e1, s.insert(e2)) == ((e1 == e2) or member(e1, s))


def _ax_delete_empty(e: E) -> bool:
    return terms_equal(Empty().delete(e), Empty())


def _ax_delete_insert(s: Term, e1: E, e2: E) -> bool:
    lhs = s.insert(e2).delete(e1)
    rhs = s.delete(e1) if e1 == e2 else s.delete(e1).insert(e2)
    return terms_equal(lhs, rhs)


def _ax_union_empty(s: Term) -> bool:
    return terms_equal(s.union(Empty()), s)


def _ax_union_insert(s1: Term, s2: Term, e: E) -> bool:
    return terms_equal(s1.insert(e).union(s2), s1.union(s2).insert(e))


def _ax_difference_empty(s: Term) -> bool:
    return terms_equal(s.difference(Empty()), s)


def _ax_size_empty() -> bool:
    return size(Empty()) == 0


def _ax_size_insert(s: Term, e: E) -> bool:
    expected = size(s) + (0 if member(e, s) else 1)
    return size(s.insert(e)) == expected


AXIOMS = {
    "insert-idempotent": _ax_insert_idempotent,
    "insert-commutative": _ax_insert_commutative,
    "member-empty": _ax_member_empty,
    "member-insert": _ax_member_insert,
    "delete-empty": _ax_delete_empty,
    "delete-insert": _ax_delete_insert,
    "union-empty": _ax_union_empty,
    "union-insert": _ax_union_insert,
    "difference-empty": _ax_difference_empty,
    "size-empty": _ax_size_empty,
    "size-insert": _ax_size_insert,
}
