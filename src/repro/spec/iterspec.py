"""The iterator-specification machinery shared by the four figures.

A :class:`IteratorSpec` packages

* a ``constraint`` (history property on the set's value),
* a *membership basis* — whether the ensures clause reads the set's
  value at the **first-state** (``s_first``; Figs 1, 3, 4) or at each
  invocation's **pre-state** (``s_pre``; Figs 5, 6),
* an ``ensures`` clause, expressed as :meth:`check_branch`, which maps
  (s, reach, yielded_pre) to the *required* outcome shape.

Checking uses existential window semantics (see
:mod:`repro.spec.state`): an invocation conforms if **some** state
sampled during its window satisfies the clause; a first-basis trace
conforms if **some** state from the first invocation's window, fixed as
σ_first, makes every invocation conform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..store.elements import Element
from .constraints import Constraint
from .state import InvocationRecord
from .termination import Failed, Returned, Yielded
from .trace import IterationTrace

__all__ = ["IteratorSpec", "SpecViolationDetail", "structural_violations"]


@dataclass(frozen=True)
class SpecViolationDetail:
    """One invocation that cannot be justified by any window state."""

    invocation: int
    message: str

    def __str__(self) -> str:
        return f"invocation #{self.invocation}: {self.message}"


def structural_violations(trace: IterationTrace) -> list[SpecViolationDetail]:
    """Protocol well-formedness, independent of any particular figure.

    Checks the ``remembers yielded`` discipline: the history object
    starts empty, grows by exactly the yielded element on suspends, is
    unchanged on returns/fails, never yields duplicates, and nothing
    follows termination.
    """
    violations = []
    expected: frozenset[Element] = frozenset()
    terminated = False
    for inv in trace.invocations:
        if terminated:
            violations.append(SpecViolationDetail(
                inv.index, "invocation after the iterator terminated"))
        if inv.yielded_pre != expected:
            violations.append(SpecViolationDetail(
                inv.index,
                f"yielded_pre {_names(inv.yielded_pre)} does not continue the "
                f"history object (expected {_names(expected)})"))
        if isinstance(inv.outcome, Yielded):
            e = inv.outcome.element
            if e in inv.yielded_pre:
                violations.append(SpecViolationDetail(
                    inv.index, f"duplicate yield of {e}"))
            if inv.yielded_post != inv.yielded_pre | {e}:
                violations.append(SpecViolationDetail(
                    inv.index,
                    "yielded_post ≠ yielded_pre ∪ {e}"))
        else:
            terminated = True
            if inv.yielded_post != inv.yielded_pre:
                violations.append(SpecViolationDetail(
                    inv.index, "yielded changed on a non-yielding invocation"))
        expected = inv.yielded_post
    return violations


class IteratorSpec:
    """Base class for the figures' ``elements`` specifications."""

    spec_id = "spec"
    title = "unnamed specification"
    paper_figure = ""
    membership_basis = "pre"          # "pre" (Figs 5, 6) or "first" (1, 3, 4)
    allows_failure = True             # Figs 1, 6 have no signals(failure)
    constraint: Constraint

    # -- the ensures clause -------------------------------------------------
    def required_outcome(self, s: frozenset[Element], reach: frozenset[Element],
                         yielded_pre: frozenset[Element]) -> tuple[str, frozenset[Element]]:
        """Evaluate the ensures clause's condition at one state.

        Returns (kind, allowed) where kind is ``"suspends"``,
        ``"returns"``, or ``"fails"``, and — for suspends — ``allowed``
        is the set of elements the invocation may yield.
        """
        raise NotImplementedError

    # -- checking --------------------------------------------------------
    def check_trace(self, trace: IterationTrace) -> list[SpecViolationDetail]:
        """Ensures-clause violations (empty list = conformant).

        Structural violations are always included; figure-specific
        violations use the existential window semantics.
        """
        violations = structural_violations(trace)
        if self.membership_basis == "first":
            violations.extend(self._check_first_basis(trace))
        else:
            violations.extend(self._check_pre_basis(trace))
        return violations

    def _check_pre_basis(self, trace: IterationTrace) -> list[SpecViolationDetail]:
        violations = []
        for inv in trace.invocations:
            ok = any(
                self._invocation_matches(inv, snap.members, snap.reachable_members)
                for snap in inv.snapshots
            )
            if not ok:
                violations.append(SpecViolationDetail(
                    inv.index, self._mismatch_message(inv, inv.exit_snapshot.members,
                                                      inv.exit_snapshot.reachable_members)))
        return violations

    def _check_first_basis(self, trace: IterationTrace) -> list[SpecViolationDetail]:
        if not trace.invocations:
            return []
        candidates = trace.first_candidates or trace.invocations[0].snapshots
        best: Optional[list[SpecViolationDetail]] = None
        for first in candidates:
            s_first = first.members
            current = []
            for inv in trace.invocations:
                ok = any(
                    self._invocation_matches(inv, s_first, snap.reachable_of(s_first))
                    for snap in inv.snapshots
                )
                if not ok:
                    snap = inv.exit_snapshot
                    current.append(SpecViolationDetail(
                        inv.index,
                        self._mismatch_message(inv, s_first, snap.reachable_of(s_first))))
            if not current:
                return []
            if best is None or len(current) < len(best):
                best = current
        return best or []

    def _invocation_matches(self, inv: InvocationRecord, s: frozenset[Element],
                            reach: frozenset[Element]) -> bool:
        kind, allowed = self.required_outcome(s, reach, inv.yielded_pre)
        outcome = inv.outcome
        if kind == "suspends":
            return isinstance(outcome, Yielded) and outcome.element in allowed
        if kind == "returns":
            return isinstance(outcome, Returned)
        if kind == "fails":
            return self.allows_failure and isinstance(outcome, Failed)
        raise AssertionError(f"unknown outcome kind {kind!r}")

    def _mismatch_message(self, inv: InvocationRecord, s: frozenset[Element],
                          reach: frozenset[Element]) -> str:
        kind, allowed = self.required_outcome(s, reach, inv.yielded_pre)
        want = kind if kind != "suspends" else (
            f"suspends yielding one of {_names(allowed)}"
        )
        return (f"no window state justifies outcome {inv.outcome}; e.g. at the exit "
                f"state the clause requires {want} "
                f"(s={_names(s)}, reachable={_names(reach)}, "
                f"yielded={_names(inv.yielded_pre)})")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec_id})"


def _names(elements: frozenset[Element]) -> str:
    return "{" + ", ".join(sorted(e.name for e in elements)) + "}"
