"""Termination conditions of an iterator invocation.

The paper's model: "We assume a special object in the state called
``terminates`` whose value ranges over normal and exceptional
termination conditions."  For one invocation of the ``elements``
iterator the possibilities are:

* **suspends** — the iterator yielded an element back to the caller and
  can be resumed (:class:`Yielded`);
* **returns** — the iterator terminated normally (:class:`Returned`);
* **fails** — the iterator terminated with the special ``failure``
  exception (:class:`Failed`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from ..store.elements import Element

__all__ = ["Yielded", "Returned", "Failed", "Outcome"]


@dataclass(frozen=True)
class Yielded:
    """The invocation suspended, yielding ``element`` (paper: suspends)."""

    element: Element
    value: Any = None

    @property
    def suspends(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"suspends(yield {self.element})"


@dataclass(frozen=True)
class Returned:
    """The iterator terminated normally (paper: returns)."""

    @property
    def suspends(self) -> bool:
        return False

    def __str__(self) -> str:
        return "returns"


@dataclass(frozen=True)
class Failed:
    """The iterator terminated with the ``failure`` exception (paper: fails)."""

    reason: str = "failure"

    @property
    def suspends(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"fails({self.reason})"


Outcome = Union[Yielded, Returned, Failed]
