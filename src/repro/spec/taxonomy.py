"""Garcia-Molina & Wiederhold's query taxonomy, applied to the figures.

Section 4: "They use two dimensions for classification … Consistency is
the degree to which application constraints on data can be satisfied
while currency is concerned with the version of the data returned by
the query.  In our terminology, set membership corresponds to
consistency and mutability to currency.  The specification in Figure 3
corresponds to a strong consistency (serializable), first-vintage
query; the one in Figure 4, to weak consistency, first-vintage.  The
other two are both no consistency, first-bound under their taxonomy."

:func:`classify` derives the classification *from spec structure* (the
constraint clause and the membership basis), not from a lookup table,
so it doubles as a consistency check of our transcriptions: experiment
E8 asserts the derived classifications match the paper's prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constraints import ImmutableConstraint
from .figures import ALL_FIGURES
from .iterspec import IteratorSpec

__all__ = ["Classification", "classify", "taxonomy_table"]


@dataclass(frozen=True)
class Classification:
    """A (consistency, currency) cell of the Garcia-Molina taxonomy."""

    consistency: str   # "strong (serializable)" | "weak" | "none"
    currency: str      # "first-vintage" | "first-bound"

    def __str__(self) -> str:
        return f"{self.consistency} consistency, {self.currency}"


def classify(spec: IteratorSpec) -> Classification:
    """Derive the taxonomy cell from the spec's structure.

    * Currency ("the version of the data returned"): a spec whose
      ensures clause reads ``s_first`` returns data of the first-state's
      vintage (**first-vintage**); one that reads ``s_pre`` returns data
      at least as current as the first state (**first-bound**).
    * Consistency ("degree to which constraints on data are satisfied",
      i.e. how faithfully the yielded set matches a single set value):
      an immutable constraint makes the run serializable (**strong**); a
      trivial/grow-only constraint with a first-state basis still yields
      one coherent snapshot (**weak**); a mutable basis makes no
      promise relating the yields to any one value (**none**).
    """
    if spec.membership_basis == "first":
        currency = "first-vintage"
        if isinstance(spec.constraint, ImmutableConstraint):
            consistency = "strong (serializable)"
        else:
            consistency = "weak"
    else:
        currency = "first-bound"
        consistency = "none"
    return Classification(consistency, currency)


def taxonomy_table() -> list[tuple[str, str, Classification]]:
    """(spec_id, figure, classification) for every figure spec."""
    return [(spec.spec_id, spec.paper_figure, classify(spec)) for spec in ALL_FIGURES]
