"""Trace conformance checking: ensures + constraint, combined verdicts.

This is the tool the paper's authors lacked in 1994: given a recorded
execution of an iterator implementation and one of the figure
specifications, decide mechanically whether the execution satisfies the
specification — and if not, produce the counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..store.elements import Element
from ..store.world import World
from .constraints import Constraint, ConstraintViolationDetail, PerRunConstraint
from .iterspec import IteratorSpec, SpecViolationDetail
from .termination import Yielded
from .trace import IterationTrace

__all__ = [
    "ConformanceReport",
    "check_conformance",
    "check_ensures",
    "check_constraint",
    "weak_guarantee_violations",
    "conformance_matrix",
]

History = Sequence[tuple[float, frozenset[Element]]]


@dataclass
class ConformanceReport:
    """The verdict of checking one trace against one specification."""

    spec_id: str
    impl_name: str
    ensures_violations: list[SpecViolationDetail] = field(default_factory=list)
    constraint_violations: list[ConstraintViolationDetail] = field(default_factory=list)
    complete: bool = True     # did the iterator actually terminate?

    @property
    def conformant(self) -> bool:
        return not self.ensures_violations and not self.constraint_violations

    def summary(self) -> str:
        verdict = "CONFORMS" if self.conformant else "VIOLATES"
        detail = ""
        if not self.conformant:
            parts = []
            if self.ensures_violations:
                parts.append(f"{len(self.ensures_violations)} ensures")
            if self.constraint_violations:
                parts.append(f"{len(self.constraint_violations)} constraint")
            detail = f" ({', '.join(parts)} violation(s))"
        return f"{self.impl_name or 'trace'} vs {self.spec_id}: {verdict}{detail}"

    def counterexample(self) -> Optional[str]:
        """The first violation, human-readably (None if conformant)."""
        if self.ensures_violations:
            return str(self.ensures_violations[0])
        if self.constraint_violations:
            return str(self.constraint_violations[0])
        return None


def check_ensures(trace: IterationTrace, spec: IteratorSpec) -> list[SpecViolationDetail]:
    """Just the ensures clause (structural + figure-specific)."""
    return spec.check_trace(trace)


def check_constraint(spec: IteratorSpec, history: History,
                     windows: Optional[Sequence[tuple[float, float]]] = None
                     ) -> list[ConstraintViolationDetail]:
    """Just the constraint clause against a membership history."""
    constraint: Constraint = spec.constraint
    if isinstance(constraint, PerRunConstraint):
        return constraint.check_windows(history, windows or [])
    return constraint.check(list(history))


def check_conformance(trace: IterationTrace, spec: IteratorSpec,
                      world: Optional[World] = None,
                      history: Optional[History] = None) -> ConformanceReport:
    """Full conformance: ensures clause + constraint clause.

    The constraint is evaluated over the collection's membership history
    *restricted to the trace's window* — the computation the client
    observed.  (The paper's constraint quantifies over whole
    computations; restricting to the window is what makes per-trace
    verdicts meaningful when several iterations with different
    tolerances share one world.)
    """
    if history is None:
        if world is None:
            raise ValueError("check_conformance needs a world or an explicit history")
        history = world.membership_history(trace.coll_id)
    window = trace.window()
    if window is not None:
        history = _clip(history, window[0], window[1])
    report = ConformanceReport(
        spec_id=spec.spec_id,
        impl_name=trace.impl_name,
        ensures_violations=check_ensures(trace, spec),
        constraint_violations=check_constraint(
            spec, history, windows=[window] if window else []
        ),
        complete=trace.terminated,
    )
    return report


def weak_guarantee_violations(trace: IterationTrace, history: History) -> list[str]:
    """§3.4's global weak guarantee, checked directly.

    "The specification we give requires that any element yielded must
    actually be in the set, for some state of the set between the
    first-state and last-state."
    """
    window = trace.window()
    if window is None:
        return []
    clipped = _clip(history, window[0], window[1])
    union: set[Element] = set()
    for _, value in clipped:
        union |= value
    problems = []
    for inv in trace.invocations:
        if isinstance(inv.outcome, Yielded) and inv.outcome.element not in union:
            problems.append(
                f"invocation #{inv.index} yielded {inv.outcome.element}, which was "
                "never a member between the first-state and last-state"
            )
    return problems


def conformance_matrix(traces: dict[str, IterationTrace],
                       specs: Sequence[IteratorSpec],
                       world: World) -> dict[tuple[str, str], ConformanceReport]:
    """Check every trace against every spec: the E1 matrix."""
    matrix = {}
    for impl_name, trace in traces.items():
        for spec in specs:
            matrix[(impl_name, spec.spec_id)] = check_conformance(trace, spec, world)
    return matrix


def _clip(history: History, t_first: float, t_last: float) -> list[tuple[float, frozenset[Element]]]:
    """History entries in force during [t_first, t_last]."""
    before = [entry for entry in history if entry[0] <= t_first]
    inside = [entry for entry in history if t_first < entry[0] <= t_last]
    start = [before[-1]] if before else []
    return start + inside
