"""``constraint`` clauses: history properties over computations.

"The predicate we write in this clause states a history property of all
computations involving any object of type T … constraint P(x_i, x_j)
stands for the predicate, for all computations, ∀ x:T ∀ 1 ≤ i < n,
1 < j ≤ n : i < j ⇒ P(x_i, x_j)."

A constraint here checks a *membership history* — the sequence of
(time, value) pairs the :class:`~repro.store.world.World` records for a
collection.  Because the figures' predicates are reflexive-transitive
(equality, ⊆), checking consecutive pairs suffices for the pairwise
∀ i<j property; :meth:`Constraint.check_pairwise` verifies that
reduction on demand (the property tests exercise it).

Section 3.1/3.3 also sketch *per-run* relaxations ("mutations may occur
between different uses of the iterator, but not between invocations of
any one use"); those take the iterator windows as extra input.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..store.elements import Element

__all__ = [
    "Constraint",
    "TrivialConstraint",
    "ImmutableConstraint",
    "GrowOnlyConstraint",
    "PerRunConstraint",
    "per_run_immutable",
    "per_run_grow_only",
]

History = Sequence[tuple[float, frozenset[Element]]]
Window = tuple[float, float]


@dataclass(frozen=True)
class ConstraintViolationDetail:
    """One violated pair (σ_i, σ_j) with a human-readable explanation."""

    time_i: float
    time_j: float
    message: str

    def __str__(self) -> str:
        return f"[σ@{self.time_i:.3f} vs σ@{self.time_j:.3f}] {self.message}"


class Constraint:
    """A history property P(s_i, s_j) for all i < j."""

    name = "constraint"
    formula = "P(s_i, s_j)"

    def holds_pair(self, s_i: frozenset[Element], s_j: frozenset[Element]) -> bool:
        raise NotImplementedError

    def check(self, history: History) -> list[ConstraintViolationDetail]:
        """Check consecutive pairs (sufficient for transitive predicates)."""
        violations = []
        for (t_i, s_i), (t_j, s_j) in zip(history, history[1:]):
            if not self.holds_pair(s_i, s_j):
                violations.append(ConstraintViolationDetail(
                    t_i, t_j, self._explain(s_i, s_j)
                ))
        return violations

    def check_pairwise(self, history: History) -> list[ConstraintViolationDetail]:
        """Check the full ∀ i<j quantification (O(n²); for validation)."""
        violations = []
        for i in range(len(history)):
            for j in range(i + 1, len(history)):
                t_i, s_i = history[i]
                t_j, s_j = history[j]
                if not self.holds_pair(s_i, s_j):
                    violations.append(ConstraintViolationDetail(
                        t_i, t_j, self._explain(s_i, s_j)
                    ))
        return violations

    def _explain(self, s_i: frozenset[Element], s_j: frozenset[Element]) -> str:
        return (f"{self.name} violated: "
                f"s_i={sorted(str(e) for e in s_i)} "
                f"s_j={sorted(str(e) for e in s_j)}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.formula})"


class TrivialConstraint(Constraint):
    """``constraint true`` — the set may change arbitrarily (Figs 4, 6)."""

    name = "true"
    formula = "true"

    def holds_pair(self, s_i, s_j) -> bool:
        return True


class ImmutableConstraint(Constraint):
    """``constraint s_i = s_j`` — the set never changes (Figs 1, 3)."""

    name = "immutable"
    formula = "s_i = s_j"

    def holds_pair(self, s_i, s_j) -> bool:
        return s_i == s_j


class GrowOnlyConstraint(Constraint):
    """``constraint s_i ⊆ s_j`` — the set only grows (Fig 5)."""

    name = "grow-only"
    formula = "s_i ⊆ s_j"

    def holds_pair(self, s_i, s_j) -> bool:
        return s_i <= s_j


class PerRunConstraint(Constraint):
    """§3.1's relaxation: the inner constraint binds only *during a run*.

    "constraint ∀ i < k < j : (terminates_i ≠ suspend ∧ terminates_j ≠
    suspend ∧ terminates_k = suspend) ⇒ (s_i = s_k = s_j)" — i.e., the
    set must satisfy the inner predicate between the first-state and
    last-state of any one use of the iterator, and may change freely
    between uses.
    """

    def __init__(self, inner: Constraint):
        self.inner = inner
        self.name = f"per-run {inner.name}"
        self.formula = f"during any run: {inner.formula}"

    def holds_pair(self, s_i, s_j) -> bool:  # pragma: no cover - not pairwise
        raise NotImplementedError("PerRunConstraint needs windows; use check_windows")

    def check(self, history: History) -> list[ConstraintViolationDetail]:
        raise NotImplementedError("PerRunConstraint needs windows; use check_windows")

    def check_windows(self, history: History,
                      windows: Sequence[Window]) -> list[ConstraintViolationDetail]:
        """Apply the inner constraint to each [t_first, t_last] window.

        The state in force at a window's start is the last history entry
        at or before t_first; everything recorded up to t_last is in
        scope.
        """
        violations = []
        for (t_first, t_last) in windows:
            in_window = self._slice(history, t_first, t_last)
            violations.extend(self.inner.check(in_window))
        return violations

    @staticmethod
    def _slice(history: History, t_first: float, t_last: float) -> list[tuple[float, frozenset[Element]]]:
        before = [entry for entry in history if entry[0] <= t_first]
        inside = [entry for entry in history if t_first < entry[0] <= t_last]
        start = [before[-1]] if before else []
        return start + inside


def per_run_immutable() -> PerRunConstraint:
    """§3.1: immutable during any one run, free to change between runs."""
    return PerRunConstraint(ImmutableConstraint())


def per_run_grow_only() -> PerRunConstraint:
    """§3.3: grow-only during any one run (the ghost protocol's contract)."""
    return PerRunConstraint(GrowOnlyConstraint())
