"""Render figure specifications back into the paper's notation.

Mostly for humans: ``print(render_spec(spec_by_id("fig5")))`` produces
the Larch-style block of the corresponding figure, reconstructed from
the executable spec's structure (constraint, membership basis, failure
signal, branch conditions).  The round-trip is a useful sanity check
that the transcription in :mod:`repro.spec.figures` still *says* what
the paper says.
"""

from __future__ import annotations

from .figures import (
    Figure1ImmutableNoFailures,
    Figure5GrowOnlyPessimistic,
    Figure6OptimisticDynamic,
)
from .iterspec import IteratorSpec

__all__ = ["render_spec", "render_all"]


def _constraint_line(spec: IteratorSpec) -> str:
    return f"constraint {spec.constraint.formula}"


def _signature(spec: IteratorSpec) -> str:
    signals = "" if not spec.allows_failure else " signals (failure)"
    return f"elements = iter (s: set) yields (e: elem){signals}"


def _basis(spec: IteratorSpec) -> str:
    return "s_first" if spec.membership_basis == "first" else "s_pre"


def _ensures_lines(spec: IteratorSpec) -> list[str]:
    s = _basis(spec)
    if isinstance(spec, Figure1ImmutableNoFailures):
        return [
            f"ensures if yielded_pre ⊊ {s}",
            f"        then yielded_post − yielded_pre = {{e}}",
            f"             ∧ yielded_post ⊆ {s}",
            f"             ∧ e ∈ {s} − yielded_pre ∧ suspends",
            f"        else returns   % yielded_pre = {s}",
        ]
    if isinstance(spec, Figure6OptimisticDynamic):
        return [
            f"ensures if ∃ e ∈ {s} : e ∉ yielded_pre",
            f"        then yielded_post − yielded_pre = {{e}}",
            f"             ∧ e ∈ reachable({s}) ∧ suspends",
            f"        else returns",
        ]
    if isinstance(spec, Figure5GrowOnlyPessimistic):
        return [
            f"ensures if yielded_pre ⊊ reachable({s})",
            f"        then yielded_post − yielded_pre = {{e}}",
            f"             ∧ yielded_post ⊆ {s}",
            f"             ∧ e ∈ reachable({s}) ∧ suspends",
            f"        else if yielded_pre = {s} then returns",
            f"        else fails",
        ]
    # Figures 3 and 4 share the clause
    return [
        f"ensures if yielded_pre ⊊ reachable({s})",
        f"        then yielded_post − yielded_pre = {{e}}",
        f"             ∧ yielded_post ⊆ {s}",
        f"             ∧ e ∈ reachable({s}) ∧ suspends",
        f"        else if yielded_pre = reachable({s})",
        f"                ∧ yielded_pre ⊊ {s}",
        f"        then fails",
        f"        else returns   % yielded_pre = {s}",
    ]


def render_spec(spec: IteratorSpec) -> str:
    """The paper-style text of one figure specification."""
    lines = [
        f"% {spec.paper_figure}: {spec.title}",
        _constraint_line(spec),
        _signature(spec),
        "  remembers yielded: set initially {}",
    ]
    lines.extend(f"  {line}" for line in _ensures_lines(spec))
    return "\n".join(lines)


def render_all() -> str:
    """All five figures, paper order."""
    from .figures import ALL_FIGURES

    return "\n\n".join(render_spec(spec) for spec in ALL_FIGURES)
