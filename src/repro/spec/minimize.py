"""Counterexample minimization.

A violating trace from a long fuzz run can carry hundreds of
invocations; the violation usually needs only a few.  Because a trace's
checkability is prefix-closed in structure (every prefix is itself a
well-formed trace), the minimal *prefix* that still violates is a sound
and simple reduction — and usually all a human needs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..store.elements import Element
from .checker import check_conformance
from .iterspec import IteratorSpec
from .trace import IterationTrace

__all__ = ["prefix_of", "minimal_violating_prefix"]

History = Sequence[tuple[float, frozenset[Element]]]


def prefix_of(trace: IterationTrace, length: int) -> IterationTrace:
    """A new trace holding the first ``length`` invocations."""
    clipped = IterationTrace(
        coll_id=trace.coll_id, client=trace.client, impl_name=trace.impl_name,
    )
    clipped.invocations = list(trace.invocations[:length])
    clipped.first_candidates = trace.first_candidates
    return clipped


def minimal_violating_prefix(trace: IterationTrace, spec: IteratorSpec,
                             history: History) -> Optional[IterationTrace]:
    """The shortest prefix of ``trace`` that still violates ``spec``.

    Returns None if the full trace conforms.  Binary search is unsound
    here (violations need not be monotone in prefix length when the
    constraint clause windows over [first, last]), so this walks
    linearly — traces are short enough that it does not matter.
    """
    full = check_conformance(trace, spec, history=history)
    if full.conformant:
        return None
    for length in range(1, len(trace.invocations) + 1):
        candidate = prefix_of(trace, length)
        report = check_conformance(candidate, spec, history=history)
        if not report.conformant:
            return candidate
    return trace  # pragma: no cover - full trace violates, loop must hit
