"""The paper's specification figures, executable.

Each class transcribes one figure's ``ensures`` clause into
:meth:`~repro.spec.iterspec.IteratorSpec.required_outcome`.  The
transcription is deliberately literal — branch order and strict/non-
strict subset distinctions follow the figures exactly — because the
whole point of the reproduction is that these *are* the specifications.
"""

from __future__ import annotations

from ..store.elements import Element
from .constraints import (
    Constraint,
    GrowOnlyConstraint,
    ImmutableConstraint,
    TrivialConstraint,
    per_run_grow_only,
    per_run_immutable,
)
from .iterspec import IteratorSpec

__all__ = [
    "Figure1ImmutableNoFailures",
    "Figure3ImmutableWithFailures",
    "Figure3PerRunImmutable",
    "Figure4SnapshotLossOfMutations",
    "Figure5GrowOnlyPessimistic",
    "Figure5PerRunGrowOnly",
    "Figure6OptimisticDynamic",
    "ALL_FIGURES",
    "RELAXED_VARIANTS",
    "spec_by_id",
]

Members = frozenset[Element]


class Figure1ImmutableNoFailures(IteratorSpec):
    """Figure 1: immutable set, failures ignored.

    ::

        constraint s_i = s_j
        elements = iter (s: set) yields (e: elem)
          remembers yielded: set initially {}
          ensures if yielded_pre ⊊ s_first
                  then yielded_post − yielded_pre = {e}
                       ∧ yielded_post ⊆ s_first
                       ∧ e ∈ s_first − yielded_pre ∧ suspends
                  else returns  % yielded_pre = s_first
    """

    spec_id = "fig1"
    title = "Immutable set (failures ignored)"
    paper_figure = "Figure 1"
    membership_basis = "first"
    allows_failure = False
    constraint: Constraint = ImmutableConstraint()

    def required_outcome(self, s: Members, reach: Members,
                         yielded_pre: Members) -> tuple[str, Members]:
        if s - yielded_pre:
            return "suspends", s - yielded_pre
        return "returns", frozenset()


class Figure3ImmutableWithFailures(IteratorSpec):
    """Figure 3: immutable set with failures.

    ::

        constraint s_i = s_j
        elements = iter (s: set) yields (e: elem) signals (failure)
          remembers yielded: set initially {}
          ensures if yielded_pre ⊊ reachable(s_first)
                  then yielded_post − yielded_pre = {e}
                       ∧ yielded_post ⊆ s_first
                       ∧ e ∈ reachable(s_first) ∧ suspends
                  else if yielded_pre = reachable(s_first)
                          ∧ yielded_pre ⊊ s_first
                  then fails
                  else returns  % yielded_pre = s_first
    """

    spec_id = "fig3"
    title = "Immutable set with failures"
    paper_figure = "Figure 3"
    membership_basis = "first"
    allows_failure = True
    constraint: Constraint = ImmutableConstraint()

    def required_outcome(self, s: Members, reach: Members,
                         yielded_pre: Members) -> tuple[str, Members]:
        # We encode the figure's conditions element-wise, following the
        # prose ("In the normal case … if there are still elements to
        # yield"; "A failure occurs if everything reachable has been
        # yielded").  The figure's literal ``yielded ⊊ reachable(s_first)``
        # coincides with ``reachable − yielded ≠ ∅`` whenever yielded
        # elements stay reachable — the paper's implicit assumption — but
        # the literal form leaves no satisfiable branch once a yielded
        # element's home later becomes unreachable, so the element-wise
        # reading is the only checkable one.
        if reach - yielded_pre:
            return "suspends", reach - yielded_pre
        if yielded_pre < s:
            return "fails", frozenset()
        return "returns", frozenset()


class Figure4SnapshotLossOfMutations(Figure3ImmutableWithFailures):
    """Figure 4: mutable set, loss of some mutations.

    "The only visual difference between the specification in Figure 4
    and the previous one in Figure 3 is the change in the constraint
    clause.  Here, the predicate is true; the set may change arbitrarily
    over time." — the ensures clause is inherited verbatim from Fig 3.
    """

    spec_id = "fig4"
    title = "Mutable set, loss of some mutations (first-state snapshot)"
    paper_figure = "Figure 4"
    constraint: Constraint = TrivialConstraint()


class Figure5GrowOnlyPessimistic(IteratorSpec):
    """Figure 5: growing-only set, pessimistic failure handling.

    ::

        constraint s_i ⊆ s_j
        elements = iter (s: set) yields (e: elem) signals (failure)
          remembers yielded: set initially {}
          ensures if yielded_pre ⊊ reachable(s_pre)
                  then yielded_post − yielded_pre = {e}
                       ∧ yielded_post ⊆ s_pre
                       ∧ e ∈ reachable(s_pre) ∧ suspends
                  else if yielded_pre = s_pre then returns
                  else fails
    """

    spec_id = "fig5"
    title = "Growing-only set, pessimistic"
    paper_figure = "Figure 5"
    membership_basis = "pre"
    allows_failure = True
    constraint: Constraint = GrowOnlyConstraint()

    def required_outcome(self, s: Members, reach: Members,
                         yielded_pre: Members) -> tuple[str, Members]:
        # Element-wise reading, as in Figure 3 (see the comment there).
        if reach - yielded_pre:
            return "suspends", reach - yielded_pre
        if yielded_pre == s:
            return "returns", frozenset()
        return "fails", frozenset()


class Figure6OptimisticDynamic(IteratorSpec):
    """Figure 6: growing and shrinking set, optimistic failure handling.

    ::

        constraint true
        elements = iter (s: set) yields (e: elem)
          remembers yielded: set initially {}
          ensures if ∃ e ∈ s_pre : e ∉ yielded_pre
                  then yielded_post − yielded_pre = {e}
                       ∧ e ∈ reachable(s_pre) ∧ suspends
                  else returns

    Note the missing ``signals (failure)``: the optimistic iterator
    never fails — "it may never return if a failure is detected"
    (blocking, not failing).
    """

    spec_id = "fig6"
    title = "Growing and shrinking set, optimistic (dynamic sets)"
    paper_figure = "Figure 6"
    membership_basis = "pre"
    allows_failure = False
    constraint: Constraint = TrivialConstraint()

    def required_outcome(self, s: Members, reach: Members,
                         yielded_pre: Members) -> tuple[str, Members]:
        if s - yielded_pre:
            return "suspends", reach - yielded_pre
        return "returns", frozenset()


class Figure3PerRunImmutable(Figure3ImmutableWithFailures):
    """§3.1's relaxation of Figure 3.

    "A less stringent specification would allow mutations to occur to
    the set when no one is iterating over it, but prohibit mutations
    during iteration.  We could relax the constraint to be:
    constraint ∀ i < k < j : (terminates_i ≠ suspend ∧ terminates_j ≠
    suspend ∧ terminates_k = suspend) ⇒ (s_i = s_k = s_j)" — the set
    is immutable between the first-state and last-state of any one run,
    free otherwise.  The ensures clause is Figure 3's verbatim.
    """

    spec_id = "fig3-per-run"
    title = "Immutable during a run, mutable between runs (§3.1)"
    paper_figure = "Figure 3 (relaxed, §3.1)"
    constraint = per_run_immutable()


class Figure5PerRunGrowOnly(Figure5GrowOnlyPessimistic):
    """§3.3's relaxation of Figure 5.

    "Just as for the specification for the immutable set with failures,
    we could modify the constraint clause to permit arbitrary mutations
    between different runs of the iterator and growth only between
    invocations of any one run."  The ghost protocol
    (``policy="grow-during-run"``) is the implementation technique the
    paper sketches for exactly this spec.
    """

    spec_id = "fig5-per-run"
    title = "Grow-only during a run, mutable between runs (§3.3)"
    paper_figure = "Figure 5 (relaxed, §3.3)"
    constraint = per_run_grow_only()


ALL_FIGURES: tuple[IteratorSpec, ...] = (
    Figure1ImmutableNoFailures(),
    Figure3ImmutableWithFailures(),
    Figure4SnapshotLossOfMutations(),
    Figure5GrowOnlyPessimistic(),
    Figure6OptimisticDynamic(),
)

RELAXED_VARIANTS: tuple[IteratorSpec, ...] = (
    Figure3PerRunImmutable(),
    Figure5PerRunGrowOnly(),
)


def spec_by_id(spec_id: str) -> IteratorSpec:
    for spec in ALL_FIGURES + RELAXED_VARIANTS:
        if spec.spec_id == spec_id:
            return spec
    raise KeyError(f"unknown spec id {spec_id!r}; known: "
                   f"{[s.spec_id for s in ALL_FIGURES + RELAXED_VARIANTS]}")
