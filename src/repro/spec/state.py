"""The computation model: states, snapshots, and invocation records.

The paper models a computation as ``σ₀ S₁ σ₁ … σₙ`` — alternating
states and atomic transitions — and indexes object values by state
(``x_σ``).  Our implementations are not atomic (one paper-invocation
spans several RPCs of simulated time), so the trace records, for each
invocation, *every* ground-truth state the world passed through during
the invocation window.  The checker then asks whether **some** state in
the window makes the invocation satisfy the ensures clause — the same
move linearizability checkers make when mapping overlapping operations
onto an atomic specification.

A :class:`StateSnapshot` captures what the assertion language can talk
about at one state σ:

* ``members`` — the set's value ``s_σ``;
* ``reachable_nodes`` — which nodes the observing client can currently
  reach, from which ``reachable(x_σ)`` is computed for any member set
  (an element is accessible iff its home node is reachable).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.address import NodeId
from ..store.elements import Element
from .termination import Outcome

__all__ = ["StateSnapshot", "InvocationRecord"]


@dataclass(frozen=True)
class StateSnapshot:
    """Ground truth at one state σ, as seen by one observer."""

    time: float
    members: frozenset[Element]
    reachable_nodes: frozenset[NodeId]

    def reachable_of(self, members: frozenset[Element]) -> frozenset[Element]:
        """The paper's ``reachable``: accessible subset of ``members``."""
        return frozenset(e for e in members if e.home in self.reachable_nodes)

    @property
    def reachable_members(self) -> frozenset[Element]:
        """``reachable(s_σ)`` — accessible subset of this state's value."""
        return self.reachable_of(self.members)


@dataclass
class InvocationRecord:
    """One invocation of the ``elements`` iterator, with its window.

    ``yielded_pre`` is the history object's value when the invocation
    began (``yielded_pre`` in the specs); ``yielded_post`` its value
    after the outcome.  ``snapshots`` are the candidate pre-states σ
    sampled over the invocation window (at least two: entry and exit).
    """

    index: int
    t_invoke: float
    t_complete: float
    yielded_pre: frozenset[Element]
    yielded_post: frozenset[Element]
    outcome: Outcome
    snapshots: tuple[StateSnapshot, ...]

    @property
    def entry_snapshot(self) -> StateSnapshot:
        return self.snapshots[0]

    @property
    def exit_snapshot(self) -> StateSnapshot:
        return self.snapshots[-1]

    def __repr__(self) -> str:
        return (f"InvocationRecord(#{self.index}, t=[{self.t_invoke:.3f},"
                f"{self.t_complete:.3f}], {self.outcome}, "
                f"|yielded|={len(self.yielded_pre)}->{len(self.yielded_post)}, "
                f"{len(self.snapshots)} snapshots)")
