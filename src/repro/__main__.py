"""Package CLI: a tiny front door.

Usage::

    python -m repro            # overview: the five figures + pointers
    python -m repro --specs    # the figure specifications, paper-style
    python -m repro --demo     # run the quickstart scenario inline
"""

from __future__ import annotations

import sys

from . import __version__


def _overview() -> str:
    from .spec import ALL_FIGURES

    lines = [
        f"repro {__version__} — 'Specifying Weak Sets' (Wing & Steere, ICDCS 1995)",
        "",
        "the design space:",
    ]
    for spec in ALL_FIGURES:
        failure = "signals failure" if spec.allows_failure else "never fails"
        lines.append(f"  {spec.spec_id:<5} {spec.paper_figure:<9} "
                     f"{spec.title}  [{spec.constraint.formula}; {failure}]")
    lines += [
        "",
        "try:",
        "  python -m repro --specs          the figures, paper-style",
        "  python -m repro --demo           a simulated query, checked",
        "  python -m repro.bench            the evaluation (E1–E15)",
        "  python examples/quickstart.py    the guided tour",
    ]
    return "\n".join(lines)


def _demo() -> str:
    from . import (
        DynamicSet,
        FixedLatency,
        Kernel,
        Network,
        World,
        check_conformance,
        full_mesh,
        spec_by_id,
    )
    from .sim import Sleep

    kernel = Kernel(seed=7)
    net = Network(kernel, full_mesh(["client", "s0", "s1"], FixedLatency(0.01)))
    world = World(net)
    world.create_collection("demo", primary="s0")
    for i in range(4):
        world.seed_member("demo", f"item-{i}", value=i, home=f"s{i % 2}")
    ws = DynamicSet(world, "client", "demo")
    iterator = ws.elements()

    def blip():
        yield Sleep(0.03)
        net.isolate("s1")
        yield Sleep(1.0)
        net.rejoin("s1")

    def query():
        return (yield from iterator.drain())

    kernel.spawn(blip(), daemon=True)
    result = kernel.run_process(query())
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
    lines = [
        f"ran a Figure 6 query over 4 scattered items with a mid-run partition:",
        f"  yielded {len(result.elements)} items in {result.total_time:.2f}s "
        f"(first after {result.time_to_first:.3f}s), outcome: {result.outcome}",
        f"  conformance vs Figure 6: "
        f"{'CONFORMS' if report.conformant else report.counterexample()}",
    ]
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    if "--specs" in argv:
        from .spec import render_all
        print(render_all())
        return 0
    if "--demo" in argv:
        print(_demo())
        return 0
    print(_overview())
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
