"""E20 — the batched, pipelined write path (window / batch / replica sweeps).

Bulk mutation now runs through :class:`~repro.store.writeplan.WritePipeline`:
same-destination puts coalesce into ``put_objects`` multi-puts with the
replica fan-out issued concurrently, and same-primary registrations
coalesce into group-committed ``add_members`` batches.  E20 measures
what that buys for bulk population on the WAN topology against the
serial seed path (``Repository.add`` in a loop — ``1 + replicas + 1``
round trips per element), and that it buys it without weakening
anything:

* every populated world is drained under Figure 4 (snapshot) and
  Figure 6 (dynamic) semantics and checked for conformance — batching
  must not let a member become visible before its copies exist;
* a crash is armed mid-``add_members`` batch (the ``"added"`` per-item
  crash point) on the primary: with the WAL on, recovery replays the
  group-committed intent item-precisely and the scrub daemon converges
  the cleanup-vs-rollforward race — **zero** invariant violations at
  quiescence; the WAL-off ablation must leak (dangling members), which
  proves the group-commit protocol, not luck, is doing the work.

Sweeps, all over the same seeded placements (``member_plan`` draws the
exact placement sequence God-mode seeding uses):

* **window sweep** — window ∈ {2, 4, 8} at ``batch=4``, 2 object
  replicas: concurrency of in-flight batches;
* **batch sweep** — batch ∈ {1, 4, 8} at ``window=4``: what
  destination coalescing and group commit add on top;
* **replica sweep** — 0/1/2 object replicas at ``window=4, batch=4``,
  each against its own serial baseline: the concurrent fan-out's share.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from ..spec import check_conformance, spec_by_id
from ..wan.workload import ScenarioSpec, build_scenario, member_plan
from ..weaksets import DynamicSet, SnapshotSet
from .report import ExperimentResult

__all__ = ["run_writepipe"]

#: settle budget for the crash legs (virtual seconds past recovery)
_SETTLE_BOUND = 40.0


def _build(replicas: int, seed: int, members: int, *,
           recovery: bool = True, rpc_timeout: float = 5.0):
    """An empty WAN world plus the member plan its spec describes."""
    spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=members,
                        policy="any", object_replicas=replicas,
                        recovery_enabled=recovery, rpc_timeout=rpc_timeout)
    scenario = build_scenario(dataclasses.replace(spec, n_members=0),
                              seed=seed)
    return scenario, member_plan(spec, scenario.kernel)


def _populate_serial(scenario, plan):
    """The pre-pipeline write path: one element at a time, serial
    round trips for home, each replica, and the registration."""
    repo = scenario.repo()

    def proc():
        for s in plan:
            yield from repo.add(scenario.coll_id, s.name, s.value,
                                s.home, s.size, replicas=s.replicas)

    start = scenario.kernel.now
    scenario.kernel.run_process(proc())
    return scenario.kernel.now - start


def _populate_batched(scenario, plan, window: int, batch: int):
    repo = scenario.repo()
    start = scenario.kernel.now
    scenario.kernel.run_process(repo.add_many(
        scenario.coll_id, plan, window=window, batch_size=batch))
    return scenario.kernel.now - start


def _conformance(scenario):
    """Drain the populated world under fig4 and fig6 semantics."""
    violations = []
    for cls, spec_id in ((SnapshotSet, "fig4"), (DynamicSet, "fig6")):
        ws = cls(scenario.world, scenario.client, scenario.coll_id)
        iterator = ws.elements()

        def proc():
            return (yield from iterator.drain())

        scenario.kernel.run_process(proc())
        report = check_conformance(ws.last_trace, spec_by_id(spec_id),
                                   scenario.world)
        violations.append(0 if report.conformant else 1)
    return violations


def _sweep_point(replicas: int, window: int, batch: int, members: int,
                 seeds: list[int]):
    """Averaged batched population cost + summed conformance checks."""
    total = 0.0
    bad4 = bad6 = 0
    for seed in seeds:
        scenario, plan = _build(replicas, seed, members)
        total += _populate_batched(scenario, plan, window, batch)
        v4, v6 = _conformance(scenario)
        bad4 += v4
        bad6 += v6
    return total / len(seeds), bad4, bad6


def _serial_point(replicas: int, members: int, seeds: list[int]):
    total = 0.0
    bad4 = bad6 = 0
    for seed in seeds:
        scenario, plan = _build(replicas, seed, members)
        total += _populate_serial(scenario, plan)
        v4, v6 = _conformance(scenario)
        bad4 += v4
        bad6 += v6
    return total / len(seeds), bad4, bad6


def _crash_run(recovery: bool, seed: int, members: int) -> dict:
    """Populate with a crash armed mid-``add_members`` batch, recover,
    and judge quiescence."""
    scenario, plan = _build(2, seed, members, recovery=recovery,
                            rpc_timeout=1.0)
    primary = scenario.spec.primary
    scenario.world.server(primary).wal.arm_crash("added")
    repo = scenario.repo()
    added = scenario.kernel.run_process(repo.add_many(
        scenario.coll_id, plan, window=4, batch_size=4, on_failure="skip"))
    net = scenario.net
    for node in sorted(net.nodes):
        if not net.node(node).up:
            net.recover(node)
    # Settle in scrub-round increments until clean (or give up): the
    # orphan-GC pass only collects past its grace period, and the
    # WAL-off ablation never converges at all.
    deadline = scenario.kernel.now + _SETTLE_BOUND
    while True:
        scenario.kernel.run(
            until=min(scenario.kernel.now + 5.0, deadline))
        violations = len(scenario.world.check_invariants())
        if violations == 0 or scenario.kernel.now >= deadline:
            break
    metrics = scenario.kernel.obs.metrics
    return {
        "acked": len(added),
        "violations": violations,
        "crashes": int(metrics.value("wal.crash_points")),
    }


def run_writepipe(members: int = 24,
                  seeds: Iterable[int] = range(2)) -> ExperimentResult:
    """E20: bulk-population cost vs pipeline shape, plus crash legs."""
    seeds = list(seeds)
    result = ExperimentResult(
        "E20", "Write pipeline: batched population vs serial (WAN), with "
               "mid-batch crash injection",
        columns=["mode", "window", "batch", "replicas", "wal", "total_time",
                 "speedup_vs_serial", "fig4_viol", "fig6_viol",
                 "recovery_viol", "crashes"],
        notes="serial = Repository.add in a loop (1 + replicas + 1 round "
              "trips per element); speedup compares equal replica counts "
              "on the same seeded placements; fig4/fig6 drains of every "
              "populated world must report 0 violations; crash legs arm a "
              "crash point inside an add_members group commit — wal=on "
              "must settle to 0 invariant violations, the wal=off "
              "ablation must leak",
    )
    serial = {}
    for replicas in (0, 1, 2):
        total, bad4, bad6 = _serial_point(replicas, members, seeds)
        serial[replicas] = total
        result.add(mode="serial", window=1, batch=1, replicas=replicas,
                   wal=None, total_time=total, speedup_vs_serial=1.0,
                   fig4_viol=bad4, fig6_viol=bad6, recovery_viol=None,
                   crashes=None)
    for window in (2, 4, 8):
        total, bad4, bad6 = _sweep_point(2, window, 4, members, seeds)
        result.add(mode="window-sweep", window=window, batch=4, replicas=2,
                   wal=None, total_time=total,
                   speedup_vs_serial=serial[2] / total,
                   fig4_viol=bad4, fig6_viol=bad6, recovery_viol=None,
                   crashes=None)
    for batch in (1, 4, 8):
        total, bad4, bad6 = _sweep_point(2, 4, batch, members, seeds)
        result.add(mode="batch-sweep", window=4, batch=batch, replicas=2,
                   wal=None, total_time=total,
                   speedup_vs_serial=serial[2] / total,
                   fig4_viol=bad4, fig6_viol=bad6, recovery_viol=None,
                   crashes=None)
    for replicas in (0, 1):
        total, bad4, bad6 = _sweep_point(replicas, 4, 4, members, seeds)
        result.add(mode="replica-sweep", window=4, batch=4,
                   replicas=replicas, wal=None, total_time=total,
                   speedup_vs_serial=serial[replicas] / total,
                   fig4_viol=bad4, fig6_viol=bad6, recovery_viol=None,
                   crashes=None)
    for recovery in (True, False):
        outcomes = [_crash_run(recovery, seed, members) for seed in seeds]
        result.add(mode="crash", window=4, batch=4, replicas=2,
                   wal="on" if recovery else "off", total_time=None,
                   speedup_vs_serial=None, fig4_viol=None, fig6_viol=None,
                   recovery_viol=sum(o["violations"] for o in outcomes),
                   crashes=sum(o["crashes"] for o in outcomes))
    return result
