"""E6 — the cost of strong semantics: lock hold time and blocked writers.

"Iterating over a large, geographically dispersed set of objects is
time consuming, especially if a human is responsible for flow control.
The use of mobile (and possibly) disconnected computers may extend the
period a lock is held indefinitely."

A per-run-immutable reader holds the collection read lock for its whole
run; we sweep the consumer's think time (the human) and measure how
long a writer arriving mid-run waits.  The disconnection case caps at
the observation horizon with no lease, and at the lease duration with
one — the standard mitigation, as an ablation.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..sim.events import Sleep
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import PerRunImmutableSet, StrongSet, install_lock_service
from .report import ExperimentResult

__all__ = ["run_lock_cost", "run_disconnection"]


def _reader_writer_run(think: float, seed: int = 0, members: int = 8,
                       lease: Optional[float] = None,
                       disconnect: bool = False,
                       horizon: float = 120.0):
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=members)
    scenario = build_scenario(spec, seed=seed)
    install_lock_service(scenario.world, spec.primary, lease=lease)
    reader = PerRunImmutableSet(scenario.world, scenario.client,
                                spec.coll_id, record=False)
    writer = StrongSet(scenario.world, "n2.0", spec.coll_id, record=False)
    iterator = reader.elements()
    timings = {}

    def read_side():
        yield from iterator.invoke()            # lock acquired here
        timings["lock_acquired"] = scenario.kernel.now
        if disconnect:
            scenario.net.isolate(scenario.client)
            yield Sleep(horizon * 2)            # never comes back in time
            return
        while True:
            yield Sleep(think)
            outcome = yield from iterator.invoke()
            if not outcome.suspends:
                break
        timings["lock_released"] = scenario.kernel.now

    def write_side():
        yield Sleep(0.2)                         # arrives mid-run
        t0 = scenario.kernel.now
        yield from writer.add("intruder", value="X")
        timings["write_done"] = scenario.kernel.now
        timings["writer_waited"] = scenario.kernel.now - t0

    scenario.kernel.spawn(read_side(), daemon=True)
    scenario.kernel.spawn(write_side(), daemon=True)
    scenario.kernel.run(until=horizon)
    return timings


def run_lock_cost(think_times: Iterable[float] = (0.0, 0.5, 2.0),
                  seed: int = 0) -> ExperimentResult:
    """E6: writer wait time grows with the reader's think time."""
    result = ExperimentResult(
        "E6", "Writer blocking under per-run read locks (§3.1)",
        columns=["consumer_think_time", "lock_hold_time", "writer_waited"],
        notes="lock hold time ~ think_time x members; the writer eats it all",
    )
    for think in think_times:
        timings = _reader_writer_run(think, seed=seed)
        hold = timings.get("lock_released", float("nan")) - timings["lock_acquired"]
        result.add(
            consumer_think_time=think,
            lock_hold_time=hold,
            writer_waited=timings.get("writer_waited", float("nan")),
        )
    return result


def run_disconnection(horizon: float = 60.0, seed: int = 0) -> ExperimentResult:
    """E6b: a disconnected reader blocks writers until the lease (if any)."""
    result = ExperimentResult(
        "E6b", "Disconnected reader holding the read lock",
        columns=["lease", "writer_waited", "writer_completed"],
        notes="no lease: blocked past the whole observation horizon "
              "('indefinitely'); a lease bounds the damage",
    )
    for lease in (None, 5.0):
        timings = _reader_writer_run(
            0.5, seed=seed, lease=lease, disconnect=True, horizon=horizon)
        waited = timings.get("writer_waited")
        result.add(
            lease="none" if lease is None else lease,
            writer_waited=(waited if waited is not None else float("nan")),
            writer_completed="write_done" in timings,
        )
    return result
