"""E5 — the consistency cost of weakness, vs mutation rate.

Figure 4 "loses" mutations (misses additions made after the first
invocation, yields removed members); Figure 6 sees additions but may
still yield members that are deleted moments later.  Both costs scale
with the mutation rate — and vanish in the paper's target regime,
"loose collections of reference objects … rarely or never change".

Metrics per run (slow consumer, think time between invocations):

* **missed additions** — members added during the run's window but
  absent from the yield set at termination (and still members then);
* **stale yields** — yielded members that are no longer members when
  the run terminates;
* **cache-ablation** — the same query with a client cache and with
  bypass, showing TTL staleness on top of replica staleness.
"""

from __future__ import annotations

from typing import Iterable

from ..sim.events import Sleep
from ..store.cache import ClientCache
from ..wan.workload import Mutator, ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, SnapshotSet
from .report import ExperimentResult

__all__ = ["run_staleness", "run_cache_ablation"]

_IMPLS = (
    ("fig4 snapshot", SnapshotSet),
    ("fig6 dynamic", DynamicSet),
)


def _one_run(cls, mutation_rate, seed, members=12, think=0.2):
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=members)
    scenario = build_scenario(spec, seed=seed)
    mutator = Mutator(scenario, add_rate=mutation_rate / 2,
                      remove_rate=mutation_rate / 2)
    mutator.start()
    ws = cls(scenario.world, scenario.client, spec.coll_id, record=False)
    iterator = ws.elements()

    def proc():
        yields = []
        t_first = scenario.kernel.now
        while True:
            outcome = yield from iterator.invoke()
            if not outcome.suspends:
                break
            yields.append(outcome.element)
            yield Sleep(think)          # the slow (human) consumer
        return yields, t_first

    yields, t_first = scenario.kernel.run_process(proc())
    final_members = scenario.world.true_members(spec.coll_id)
    added_during = [e for e in mutator.added]
    missed = [e for e in added_during
              if e in final_members and e not in yields]
    stale = [e for e in yields if e not in final_members]
    return len(yields), len(missed), len(stale), len(added_during), len(mutator.removed)


def run_staleness(mutation_rates: Iterable[float] = (0.0, 0.5, 2.0, 8.0),
                  runs_per_point: int = 5) -> ExperimentResult:
    """E5: missed additions and stale yields vs mutation rate."""
    result = ExperimentResult(
        "E5", "Consistency cost vs mutation rate (ops/s, slow consumer)",
        columns=["mutation_rate", "impl", "mean_yields", "missed_adds_per_run",
                 "stale_yields_per_run"],
        notes="fig4 misses additions (snapshot basis); fig6 sees them; both "
              "costs go to ~0 in the reference-object (rate->0) regime",
    )
    for mutation_rate in mutation_rates:
        for impl_name, cls in _IMPLS:
            yields_total, missed_total, stale_total = 0, 0, 0
            for seed in range(runs_per_point):
                y, m, s, _, _ = _one_run(cls, mutation_rate, seed)
                yields_total += y
                missed_total += m
                stale_total += s
            result.add(
                mutation_rate=mutation_rate,
                impl=impl_name,
                mean_yields=yields_total / runs_per_point,
                missed_adds_per_run=missed_total / runs_per_point,
                stale_yields_per_run=stale_total / runs_per_point,
            )
    return result


def run_cache_ablation(ttls: Iterable[float] = (0.0, 2.0, 10.0),
                       seed: int = 0) -> ExperimentResult:
    """E5 ablation: client-cache TTL vs fetch traffic and staleness.

    Reads a mutating collection twice in a row (the paper's repeated
    query); with a long TTL the second query is served from cache —
    cheap but stale.
    """
    result = ExperimentResult(
        "E5a", "Client-cache ablation (two back-to-back queries)",
        columns=["ttl", "second_query_time", "cache_hit_rate",
                 "second_query_stale_yields"],
        notes="longer TTLs cut latency and add staleness — the knob the "
              "paper's 'cached data may be stale' points at",
    )
    for ttl in ttls:
        spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=10)
        scenario = build_scenario(spec, seed=seed)
        cache = ClientCache(ttl=ttl) if ttl > 0 else None
        ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                        cache=cache, record=False, use_cache=cache is not None)

        def proc():
            first = yield from ws.elements().drain()
            # a mutation lands between the queries
            victim = first.elements[0]
            yield from ws.repo.remove(spec.coll_id, victim)
            t0 = scenario.kernel.now
            second = yield from ws.elements().drain()
            return victim, second, scenario.kernel.now - t0

        victim, second, elapsed = scenario.kernel.run_process(proc())
        final = scenario.world.true_members(spec.coll_id)
        stale = sum(1 for e in second.elements if e not in final)
        result.add(
            ttl=ttl,
            second_query_time=elapsed,
            cache_hit_rate=(cache.hit_rate if cache else 0.0),
            second_query_stale_yields=stale,
        )
    return result
