"""E22 — population-scale load, and E22a — raw kernel throughput.

The paper's environment is "thousands of workstations" querying shared
collections.  E22 makes that literal: an open-loop, heavy-tailed
arrival process (the :mod:`repro.wan.population` engine) drives 10⁵
simulated client sessions through ramp/steady/cool-down stages against
one wide-area world, with per-stage SLOs and sampled spec-conformance
audits.  The gate: every stage meets its SLO and not one audited
iteration violates Figure 6.

E22a isolates the substrate those populations run on: the same wake
storm — 10⁵ clients, quantized think-time ticks — is replayed through
the frozen seed kernel (:mod:`repro.sim._seed_kernel`, one heapq pop
per event) and the current kernel (timer-wheel scheduler, batched
same-instant dispatch, zero-allocation resume path).  The ``speedup``
column is the events/sec ratio over the seed loop; CI pins it ≥ 3x.

Wall-clock columns are named ``wall_ms`` so the artifact comparator
ignores them; ``events`` counts are seed-deterministic and gated
exactly, ``speedup`` is machine-relative and gated directionally.
"""

from __future__ import annotations

import time

from ..sim import Kernel, Sleep
from ..sim._seed_kernel import Kernel as SeedKernel
from ..wan.population import (
    PopulationEngine,
    PopulationSpec,
    Stage,
    default_behaviors,
)
from ..wan.workload import ScenarioSpec, build_scenario
from .report import ExperimentResult

__all__ = ["run_population", "run_kernel_throughput",
           "population_spec", "wake_storm"]


def population_spec(scenario, scale: float = 1.0,
                    audit_fraction: float = 0.0005) -> PopulationSpec:
    """The E22 schedule: ramp to 1600 arrivals/s, hold, cool down.

    At ``scale=1.0`` the expected arrival count is ~1.06 × 10⁵ clients
    (16k ramp + 80k steady + 10k cool-down).  ``scale`` multiplies the
    stage *rates* — durations and SLOs stay fixed, so a scaled-down run
    (tests, soaks) exercises identical schedule logic.
    """
    rate = 1600.0 * scale
    return PopulationSpec(
        behaviors=default_behaviors(scenario),
        stages=(
            Stage(duration=20.0, arrival_rate=rate, name="ramp-up",
                  max_failure_rate=0.05, max_p95_latency=2.0),
            Stage(duration=50.0, arrival_rate=rate, name="steady",
                  max_failure_rate=0.02, max_p95_latency=1.0),
            Stage(duration=10.0, arrival_rate=rate / 4.0, name="cool-down",
                  max_failure_rate=0.05, max_p95_latency=2.0),
        ),
        arrival="lognormal",
        lognormal_sigma=1.0,
        audit_fraction=audit_fraction,
    )


def run_population(seed: int = 0, scale: float = 1.0) -> ExperimentResult:
    """E22: the population ramp, one row per stage plus a totals row."""
    scenario = build_scenario(ScenarioSpec(), seed=seed)
    spec = population_spec(scenario, scale=scale)
    engine = PopulationEngine(scenario, spec)
    t0 = time.perf_counter()
    stages = engine.run()
    wall = time.perf_counter() - t0
    metrics = scenario.kernel.obs.metrics
    result = ExperimentResult(
        "E22",
        f"Population load: open-loop {spec.arrival} arrivals, "
        f"{len(spec.behaviors)}-behaviour mix, seed={seed}",
        columns=["stage", "target_rate", "arrivals", "completions",
                 "failure_rate", "p95_s", "audit_violations", "slo_ok"],
        notes="open-loop: offered load is independent of completions; "
              "SLOs judged over sessions arriving in the stage; audits "
              "run recorded fig6 iterations inline",
    )
    for r in stages:
        result.add(stage=r.name, target_rate=round(r.target_rate, 1),
                   arrivals=r.arrivals, completions=r.completions,
                   failure_rate=round(r.failure_rate, 4),
                   p95_s=round(r.p95_latency, 4),
                   audit_violations=r.audit_violations,
                   slo_ok=r.slo_ok)
    result.add(stage="total", target_rate="",
               arrivals=sum(r.arrivals for r in stages),
               completions=sum(r.completions for r in stages),
               failure_rate=round(
                   sum(r.failures for r in stages)
                   / max(1, sum(r.completions for r in stages)), 4),
               p95_s="",
               audit_violations=sum(r.audit_violations for r in stages),
               slo_ok=all(r.slo_ok for r in stages))
    # The population.* registry view, for the BENCH_obs metrics
    # attachment (benchmarks pass this to record_result) and for tests.
    result.population_metrics = {
        "population.arrivals": metrics.value("population.arrivals"),
        "population.completions": metrics.value("population.completions"),
        "population.failures": metrics.value("population.failures"),
        "population.peak_active": metrics.value("population.peak_active"),
        "population.audits": metrics.value("population.audits"),
        "population.audit_violations":
            metrics.value("population.audit_violations"),
        "kernel.events": metrics.value("kernel.events"),
        "elapsed_wall_s": round(wall, 3),
    }
    return result


# -- E22a: kernel throughput ------------------------------------------

#: The wake-storm think-time quantum: population sessions pace on
#: tens-of-milliseconds ticks, which is also where same-instant batch
#: dispatch matters (coincident wakes).
_TICK = 0.010


def wake_storm(kernel, n_clients: int, wakes: int,
               transient: bool = True) -> float:
    """Spawn the E22a storm on ``kernel`` and run it; returns wall secs.

    ``n_clients`` generators each sleep a deterministic stagger, then
    ``wakes`` fixed ticks drawn from a 7-value quantized mix — the
    shape of an idling population.  Works on both the current kernel
    and the frozen seed kernel (which predates ``transient=``).
    """
    sleeps = [Sleep(_TICK * (1 + k)) for k in range(7)]
    stagger = [Sleep(k * (_TICK / 64.0)) for k in range(64)]

    def client(i: int):
        yield stagger[i % 64]
        tick = sleeps[(i * 31) % 7]
        for _ in range(wakes):
            yield tick

    for i in range(n_clients):
        if transient:
            kernel.spawn(client(i), transient=True)
        else:
            kernel.spawn(client(i))
    t0 = time.perf_counter()
    kernel.run()
    return time.perf_counter() - t0


def run_kernel_throughput(n_clients: int = 100_000,
                          wakes: int = 4) -> ExperimentResult:
    """E22a: events/sec through seed, heap-mode, and wheel kernels."""
    variants = (
        ("seed", lambda: SeedKernel(seed=1), False),
        ("heap", lambda: Kernel(seed=1, scheduler="heap"), True),
        ("wheel", lambda: Kernel(seed=1, scheduler="wheel"), True),
    )
    result = ExperimentResult(
        "E22a",
        f"Kernel throughput: {n_clients} clients x {wakes + 2} events "
        "(events/sec vs the frozen seed heapq loop)",
        columns=["kernel", "events", "speedup", "wall_ms"],
        notes="seed = pre-refactor kernel kept verbatim in "
              "repro.sim._seed_kernel; speedup = events/sec over seed; "
              "wall_ms is machine-dependent and ignored by the gate",
    )
    rates: dict[str, float] = {}
    # Per client: the spawn step, the stagger wake, then one wake per tick.
    expected = n_clients * (wakes + 2)
    for name, factory, transient in variants:
        kernel = factory()
        wall = wake_storm(kernel, n_clients, wakes, transient=transient)
        events = int(kernel.obs.metrics.value("kernel.events"))
        assert events == expected, (name, events, expected)
        rates[name] = events / wall
        result.add(kernel=name, events=events,
                   speedup=round(rates[name] / rates["seed"], 2),
                   wall_ms=round(wall * 1000.0, 1))
    result.throughput_metrics = {f"{k}_ev_per_s": round(v, 0)
                                 for k, v in rates.items()}
    return result
