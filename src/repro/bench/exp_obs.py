"""E17 — the observability layer measuring a faulty drain workload.

Every other experiment reports what its own harness chose to count.
E17 is the inverse: it runs a standard resilient-drain workload (the
E16 "full stack" client under crash faults) and reports **only what the
unified observability layer recorded** — kernel event counts, transport
message totals, RPC attempt/retry/hedge counters, fetch and drain
latency histograms, and span statistics including the nesting invariant
the tracer promises (every ``rpc.attempt`` inside a drain traces back
to its ``drain`` span).

All reported numbers come from virtual time and seeded RNG streams, so
the table is machine-independent — which is what lets CI diff it via
``python -m repro.bench compare`` against a committed baseline.  The
run can also export its first seed's full JSONL trace
(``export_trace=``), the artifact the CI bench-smoke job uploads.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..net.failures import FaultPlan
from ..net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from ..obs import Histogram, MetricsRegistry, Observability, export_jsonl
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet
from .report import ExperimentResult

__all__ = ["run_obs"]

#: Counters reported in the table.  ``kernel.wall_seconds`` is the one
#: deliberately absent aggregate: wall time is machine noise, and this
#: table must stay byte-stable for the regression gate.
_COUNTERS = (
    "kernel.events", "kernel.sim_seconds",
    "net.messages_sent", "net.messages_delivered", "net.messages_dropped",
    "rpc.attempts", "rpc.retries", "rpc.hedges", "rpc.hedge_wins",
    "rpc.failovers", "rpc.breaker_trips", "rpc.breaker_fast_fails",
    "repo.membership_reads", "repo.cache_hits",
    "drain.completed", "drain.failed", "drain.yields",
    "sync.rounds", "sync.failures",
    "wal.intents", "recovery.replays", "repair.scrub_rounds",
)

#: Span names that root an RPC in a workload: a client-facing drain, or
#: one of the background protocols (anti-entropy, scrub, intent replay).
#: The nesting invariant says every ``rpc.attempt`` reaches one of them.
ROOT_SPANS = ("drain", "sync.round", "repair.scrub", "recovery.replay")

_HISTOGRAMS = (
    "net.delivery_delay", "rpc.attempt_latency",
    "repo.fetch_latency", "drain.latency",
)


def _one_run(seed: int, members: int, crash_rate: float) -> Observability:
    """One seeded resilient drain; returns the kernel's observability."""
    plan = None
    if crash_rate > 0:
        plan = FaultPlan(crash_rate=crash_rate, mean_downtime=2.0,
                         protected=frozenset({"client"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=3, n_members=members,
                        policy="any", replicas=2, object_replicas=1,
                        heavy_tail=True, fault_plan=plan, fail_fast=True,
                        rpc_timeout=1.0)
    scenario = build_scenario(spec, seed=seed)
    resilience = ResilientClient(
        scenario.net,
        policy=RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                           max_delay=0.5, jitter=0.5),
        breaker=BreakerPolicy(failure_threshold=3, cooldown=1.0),
        hedge_delay=0.1)
    ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                    resilience=resilience, rpc_timeout=spec.rpc_timeout,
                    retry_interval=0.25, give_up_after=3.0, failover=True)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    scenario.kernel.run_process(proc())
    if scenario.injector is not None:
        scenario.injector.stop()
    return scenario.kernel.obs


def _merge_histogram(merged: Optional[Histogram], part: Histogram) -> Histogram:
    if merged is None:
        merged = Histogram(part.name, bounds=part.bounds)
    assert merged.bounds == part.bounds
    for i, n in enumerate(part.counts):
        merged.counts[i] += n
    merged.total += part.total
    merged.count += part.count
    if part.vmin is not None:
        merged.vmin = part.vmin if merged.vmin is None else min(merged.vmin, part.vmin)
    if part.vmax is not None:
        merged.vmax = part.vmax if merged.vmax is None else max(merged.vmax, part.vmax)
    return merged


def _span_depth(obs: Observability) -> int:
    tracer = obs.tracer
    return max((1 + sum(1 for _ in tracer.ancestors(s)) for s in tracer), default=0)


def run_obs(seeds: Iterable[int] = (0, 1, 2, 3), members: int = 10,
            crash_rate: float = 0.1,
            export_trace: Optional[Union[str, Path]] = None) -> ExperimentResult:
    """E17: aggregate the obs layer's view of seeded resilient drains."""
    result = ExperimentResult(
        "E17", "Observability of resilient drains "
               f"(registry + spans over {len(tuple(seeds))} seeded runs, "
               f"crash rate {crash_rate})",
        columns=["metric", "kind", "value", "mean", "p95"],
        notes="every number is virtual-time/seeded (machine-independent); "
              "spans.nested_attempts counts rpc.attempt spans whose ancestry "
              "reaches a workload root span (drain, sync.round, repair.scrub "
              "or recovery.replay) — the tracer's nesting invariant",
    )
    counters: dict[str, float] = {name: 0 for name in _COUNTERS}
    histograms: dict[str, Optional[Histogram]] = {name: None for name in _HISTOGRAMS}
    spans_total = drain_spans = attempt_spans = nested_attempts = 0
    max_depth = 0
    exported = False
    for seed in seeds:
        obs = _one_run(seed, members, crash_rate)
        registry: MetricsRegistry = obs.metrics
        for name in _COUNTERS:
            counters[name] += registry.value(name)
        for name in _HISTOGRAMS:
            hist = registry.get(name)
            if isinstance(hist, Histogram):
                histograms[name] = _merge_histogram(histograms[name], hist)
        tracer = obs.tracer
        spans_total += len(tracer)
        drain_spans += len(tracer.spans("drain"))
        attempts = tracer.spans("rpc.attempt")
        attempt_spans += len(attempts)
        nested_attempts += sum(
            1 for a in attempts
            if any(s.name in ROOT_SPANS for s in tracer.ancestors(a)))
        max_depth = max(max_depth, _span_depth(obs))
        if export_trace is not None and not exported:
            export_jsonl(export_trace, metrics=registry, tracer=tracer,
                         meta={"experiment": "E17", "seed": seed})
            exported = True
    for name in _COUNTERS:
        result.add(metric=name, kind="counter", value=counters[name],
                   mean=None, p95=None)
    for name, hist in histograms.items():
        if hist is None:
            continue
        result.add(metric=name, kind="histogram", value=hist.count,
                   mean=hist.mean, p95=hist.quantile(0.95))
    result.add(metric="spans.total", kind="spans", value=spans_total,
               mean=None, p95=None)
    result.add(metric="spans.drain", kind="spans", value=drain_spans,
               mean=None, p95=None)
    result.add(metric="spans.rpc_attempt", kind="spans", value=attempt_spans,
               mean=None, p95=None)
    result.add(metric="spans.nested_attempts", kind="spans",
               value=nested_attempts, mean=None, p95=None)
    result.add(metric="spans.max_depth", kind="spans", value=max_depth,
               mean=None, p95=None)
    return result
