"""E2 — time-to-first-element, and E3 — parallel closest-first prefetch.

E2 quantifies §1.1's advantage (1): "We can return information to the
user more quickly by yielding partial information"; weak iterators
stream, the strong baseline prefetches everything under a lock before
its first yield.

E3 quantifies advantage (2): "we can implement such file system
commands more efficiently by fetching files in parallel, fetching
'closer' files first" — weak_ls against the traditional strict ls, with
parallelism and ordering ablations.
"""

from __future__ import annotations

from typing import Iterable

from ..dynsets import FileSystem, strict_ls, weak_ls
from ..net.fabric import Network
from ..net.link import FixedLatency
from ..net.topology import wan_clusters
from ..sim.kernel import Kernel
from ..store.world import World
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import (
    DynamicSet,
    GrowOnlySet,
    SnapshotSet,
    StrongSet,
    install_lock_service,
)
from .report import ExperimentResult

__all__ = ["run_time_to_first", "run_prefetch", "run_early_exit",
           "build_scattered_fs"]

_E2_IMPLS = (
    ("strong (lock+prefetch)", StrongSet, {}),
    ("fig4 snapshot", SnapshotSet, {}),
    ("fig5 grow-only", GrowOnlySet, {}),
    ("fig6 dynamic", DynamicSet, {}),
)


def run_time_to_first(sizes: Iterable[int] = (10, 40, 160),
                      seed: int = 0) -> ExperimentResult:
    """E2: time to first element and total time, per semantics and size."""
    result = ExperimentResult(
        "E2", "Time-to-first-element vs set size (seconds, simulated)",
        columns=["members", "impl", "time_to_first", "total_time", "yielded"],
        notes="weak iterators stream; the strong baseline's first yield "
              "waits for the full locked prefetch",
    )
    for size in sizes:
        for impl_name, cls, kwargs in _E2_IMPLS:
            policy = "grow-only" if cls is GrowOnlySet else "any"
            spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=size,
                                policy=policy, heavy_tail=False)
            scenario = build_scenario(spec, seed=seed)
            install_lock_service(scenario.world, spec.primary)
            ws = cls(scenario.world, scenario.client, spec.coll_id,
                     record=False, **kwargs)
            iterator = ws.elements()

            def proc():
                return (yield from iterator.drain())

            drained = scenario.kernel.run_process(proc())
            result.add(
                members=size,
                impl=impl_name,
                time_to_first=drained.time_to_first,
                total_time=drained.total_time,
                yielded=len(drained.yields),
            )
    return result


def run_early_exit(set_size: int = 60, wanted: Iterable[int] = (1, 3, 10),
                   seed: int = 0) -> ExperimentResult:
    """E2a: the browsing user who stops after K answers.

    The paper's tourist "would not go hungry": weak sets let a user who
    wants only a few answers pay only for those few.  The strong
    baseline prefetches all ``set_size`` members under its lock before
    the first yield, so K is irrelevant to its cost.
    """
    result = ExperimentResult(
        "E2a", f"Early exit: cost of the first K of {set_size} members",
        columns=["wanted", "impl", "time_to_K", "fraction_of_full_cost"],
        notes="weak cost scales with K; strong cost is flat at the full "
              "prefetch price regardless of K",
    )
    # full-drain costs for the denominator
    full_costs = {}
    for impl_name, cls in (("strong", StrongSet), ("fig6 dynamic", DynamicSet)):
        spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=set_size)
        scenario = build_scenario(spec, seed=seed)
        install_lock_service(scenario.world, spec.primary)
        ws = cls(scenario.world, scenario.client, spec.coll_id, record=False)

        def proc(it=ws.elements()):
            return (yield from it.drain())

        drained = scenario.kernel.run_process(proc())
        full_costs[impl_name] = drained.total_time
    for k in wanted:
        for impl_name, cls in (("strong", StrongSet), ("fig6 dynamic", DynamicSet)):
            spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=set_size)
            scenario = build_scenario(spec, seed=seed)
            install_lock_service(scenario.world, spec.primary)
            ws = cls(scenario.world, scenario.client, spec.coll_id, record=False)
            iterator = ws.elements()

            def proc():
                return (yield from iterator.drain(max_yields=k))

            drained = scenario.kernel.run_process(proc())
            result.add(
                wanted=k,
                impl=impl_name,
                time_to_K=drained.total_time,
                fraction_of_full_cost=drained.total_time / full_costs[impl_name],
            )
    return result


def build_scattered_fs(n_files: int, seed: int = 0, *,
                       n_clusters: int = 4, cluster_size: int = 3,
                       service_time: float = 0.01,
                       file_size: int = 4096):
    """A directory whose files are scattered over WAN clusters."""
    kernel = Kernel(seed=seed)
    # 1 MB/s on every link: file transfer time now accrues on the wire
    # (FIFO links), not as server service time.
    topo = wan_clusters([cluster_size] * n_clusters,
                        intra_latency=FixedLatency(0.002),
                        inter_latency=FixedLatency(0.060),
                        intra_bandwidth=1_000_000.0,
                        inter_bandwidth=1_000_000.0)
    topo.add_node("client")
    topo.add_link("client", "n0.0", FixedLatency(0.002),
                  bandwidth=1_000_000.0)
    net = Network(kernel, topo)
    world = World(net, service_time=service_time)
    fs = FileSystem(world, root_node="n0.0")
    fs.mkdir("/pub", node="n0.0")
    stream = kernel.stream("fs.seed")
    for i in range(n_files):
        cluster = stream.zipf_index(n_clusters, 0.8)
        node = f"n{cluster}.{stream.randint(0, cluster_size - 1)}"
        fs.create_file(f"/pub/f{i:03d}", content=f"bytes-{i}", home=node,
                       size=file_size)
    return kernel, net, world, fs


def run_prefetch(sizes: Iterable[int] = (8, 32),
                 seed: int = 0) -> ExperimentResult:
    """E3: strict ls vs weak ls across parallelism and ordering."""
    variants = (
        ("strict ls (sequential, all-or-nothing)", None),
        ("weak ls p=1", dict(parallelism=1)),
        ("weak ls p=4", dict(parallelism=4)),
        ("weak ls p=8", dict(parallelism=8)),
        ("weak ls p=8 random-order", dict(parallelism=8, closest_first=False)),
    )
    result = ExperimentResult(
        "E3", "ls latency: parallel + closest-first prefetch (seconds)",
        columns=["files", "variant", "time_to_first", "total_time"],
        notes="closest-first cuts time-to-first; parallelism cuts total",
    )
    for n_files in sizes:
        for name, kwargs in variants:
            kernel, net, world, fs = build_scattered_fs(n_files, seed=seed)

            if kwargs is None:
                def proc():
                    return (yield from strict_ls(fs, "client", "/pub"))
            else:
                def proc(kw=kwargs):
                    return (yield from weak_ls(fs, "client", "/pub", **kw))

            ls_result = kernel.run_process(proc())
            result.add(
                files=n_files,
                variant=name,
                time_to_first=ls_result.time_to_first,
                total_time=ls_result.total_time,
            )
    return result
