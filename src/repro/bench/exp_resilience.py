"""E16 — what client-side resilience buys under crash faults.

The paper assumes an environment where "failures are assumed to be
common" and leaves recovery to the client: Figure 6's optimistic
iterator simply waits for repairs.  E16 measures how much of that
waiting a resilient RPC layer (retries + deadlines + circuit breakers +
replica failover + hedging; :mod:`repro.net.resilience`) converts into
completed iterations — without ever weakening the semantics the spec
checker enforces.

We sweep a per-node crash rate and compare three client stacks over the
same seeded worlds:

* **no-retry** — the bare transport; a crashed home blocks the iterator
  until the fault injector repairs the node or ``give_up_after`` fires;
* **retry+failover** — transport failures are retried with backoff and
  element fetches fail over to object replicas;
* **retry+hedge+breaker** — additionally hedges membership reads and
  sheds load to crashed nodes via per-destination circuit breakers.

Reported per point: completion rate (drains that Returned), coverage
(fraction of members yielded), conformance against Figure 6 (must stay
100% — resilience may never invent elements), and the recovery-effort
counters from :class:`~repro.net.stats.NetworkStats`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..net.fabric import Network
from ..net.failures import FaultPlan
from ..net.resilience import BreakerPolicy, ResilientClient, RetryPolicy
from ..spec import Returned, weak_guarantee_violations
from ..wan.workload import Mutator, ScenarioSpec, build_scenario
from ..weaksets import DynamicSet
from .metrics import rate
from .report import ExperimentResult

__all__ = ["run_resilience"]

_RETRY = RetryPolicy(max_attempts=4, base_delay=0.05, multiplier=2.0,
                     max_delay=0.5, jitter=0.5)


def _bare(net: Network) -> Optional[ResilientClient]:
    return None


def _retrying(net: Network) -> Optional[ResilientClient]:
    return ResilientClient(net, policy=_RETRY)


def _full(net: Network) -> Optional[ResilientClient]:
    return ResilientClient(net, policy=_RETRY,
                           breaker=BreakerPolicy(failure_threshold=3,
                                                 cooldown=1.0),
                           hedge_delay=0.1)


#: (variant name, ResilientClient factory, iterator failover flag)
VARIANTS: tuple[tuple[str, Callable[[Network], Optional[ResilientClient]], bool], ...] = (
    ("no-retry", _bare, False),
    ("retry+failover", _retrying, True),
    ("retry+hedge+breaker", _full, True),
)


def one_run(make_resilience: Callable[[Network], Optional[ResilientClient]],
            failover: bool, crash_rate: float, seed: int,
            members: int = 12) -> dict:
    """One seeded drain; returns outcome + counters for one variant."""
    plan = None
    if crash_rate > 0:
        plan = FaultPlan(crash_rate=crash_rate, mean_downtime=2.0,
                         protected=frozenset({"client"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=3, n_members=members,
                        policy="any", replicas=2, object_replicas=1,
                        heavy_tail=True, fault_plan=plan, fail_fast=True,
                        rpc_timeout=1.0)
    scenario = build_scenario(spec, seed=seed)
    # Background churn makes conformance non-trivial: stale views now
    # list removed members, which failover must not resurrect.
    mutator = Mutator(scenario, add_rate=0.2, remove_rate=0.3)
    mutator.start()
    ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                    resilience=make_resilience(scenario.net),
                    rpc_timeout=spec.rpc_timeout,
                    retry_interval=0.25, give_up_after=3.0,
                    failover=failover)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    drained = scenario.kernel.run_process(proc())
    if scenario.injector is not None:
        scenario.injector.stop()
    # §3.4's weak guarantee is the safety bar resilience must clear:
    # every yielded element was a member at some point inside the run's
    # window.  (Full Figure 6 conformance additionally forbids the
    # Failed outcome, but give_up_after exists precisely to bound bench
    # runs, so blocked drains report as incomplete, not as unsound.)
    violations = weak_guarantee_violations(
        ws.last_trace, scenario.world.membership_history(spec.coll_id))
    stats = scenario.net.transport.stats
    return {
        "success": isinstance(drained.outcome, Returned),
        "coverage": len(drained.yields) / members,
        "latency": drained.total_time,
        "sound": not violations,
        "retries": stats.retries,
        "hedges": stats.hedges,
        "failovers": stats.failovers,
        "breaker_trips": stats.breaker_trips,
    }


def run_resilience(rates: Iterable[float] = (0.0, 0.05, 0.1, 0.2),
                   runs_per_point: int = 8) -> ExperimentResult:
    """E16: sweep the crash rate; compare the three client stacks."""
    result = ExperimentResult(
        "E16", "Resilient RPC under crash faults "
               "(per-node crash rate, 2s mean downtime)",
        columns=["crash_rate", "variant", "completion_rate", "mean_coverage",
                 "spec_ok", "retries", "hedges", "failovers", "breaker_trips"],
        notes="resilience converts blocked/abandoned drains into completed "
              "ones; spec_ok must stay yes everywhere — recovery may reorder "
              "work but never invent or resurrect elements",
    )
    for crash_rate in rates:
        for name, make, failover in VARIANTS:
            outcomes = [one_run(make, failover, crash_rate, seed)
                        for seed in range(runs_per_point)]
            result.add(
                crash_rate=crash_rate,
                variant=name,
                completion_rate=rate(sum(o["success"] for o in outcomes),
                                     runs_per_point),
                mean_coverage=(sum(o["coverage"] for o in outcomes)
                               / runs_per_point),
                spec_ok=all(o["sound"] for o in outcomes),
                retries=sum(o["retries"] for o in outcomes),
                hedges=sum(o["hedges"] for o in outcomes),
                failovers=sum(o["failovers"] for o in outcomes),
                breaker_trips=sum(o["breaker_trips"] for o in outcomes),
            )
    return result
