"""E1 — the conformance matrix (Figures 1, 3, 4, 5, 6).

For each implementation, run it in its intended environment — with the
mutations and transient failures that environment permits — and check
the recorded trace against *every* figure specification.  The paper's
design-space ordering predicts the matrix's shape; the checker fills in
the cells mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sim.events import Sleep
from ..spec import ALL_FIGURES, RELAXED_VARIANTS, check_conformance
from ..weaksets import (
    DynamicSet,
    Figure1Set,
    GrowOnlySet,
    ImmutableSet,
    PerRunGrowOnlySet,
    PerRunImmutableSet,
    SnapshotSet,
    install_lock_service,
)
from ..wan.workload import ScenarioSpec, build_scenario
from .report import ExperimentResult

__all__ = ["IMPL_CASES", "MATRIX_SPECS", "run_conformance_matrix"]

MATRIX_SPECS = ALL_FIGURES + RELAXED_VARIANTS


@dataclass(frozen=True)
class ImplCase:
    """One implementation plus the environment it is designed for."""

    impl_id: str
    cls: type
    policy: str
    mutate: str          # "none" | "grow" | "churn" | "between-runs"
    blip: bool           # inject a transient partition mid-run


IMPL_CASES: tuple[ImplCase, ...] = (
    ImplCase("figure1", Figure1Set, "immutable", "none", blip=False),
    ImplCase("immutable", ImmutableSet, "immutable", "none", blip=True),
    ImplCase("snapshot", SnapshotSet, "any", "churn", blip=True),
    ImplCase("grow-only", GrowOnlySet, "grow-only", "grow", blip=True),
    ImplCase("per-run-immutable", PerRunImmutableSet, "any",
             "between-runs", blip=False),
    ImplCase("per-run-grow-only", PerRunGrowOnlySet, "grow-during-run",
             "churn", blip=True),
    ImplCase("dynamic", DynamicSet, "any", "churn", blip=True),
)


def _run_case(case: ImplCase, seed: int):
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=10,
                        policy=case.policy, coll_id="coll")
    scenario = build_scenario(spec, seed=seed)
    if case.policy == "immutable":
        scenario.world.seal("coll")
    install_lock_service(scenario.world, spec.primary)
    ws = case.cls(scenario.world, scenario.client, "coll")
    if case.mutate == "between-runs":
        return _run_between_runs_case(scenario, ws)
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        if case.mutate in ("grow", "churn"):
            yield from ws.repo.add("coll", "zz-mid-add", value="A")
        if case.mutate == "churn":
            victim = next(
                (e for e in scenario.elements if e != first.element), None)
            if victim is not None:
                yield from ws.repo.remove("coll", victim)
        if case.blip:
            scenario.net.isolate("n1.1")
            yield Sleep(0.3)
            scenario.net.rejoin("n1.1")
        yield from iterator.drain()

    scenario.kernel.run_process(proc())
    return ws.last_trace, scenario.world


def _run_between_runs_case(scenario, ws):
    """Two runs with a mutation in between (§3.1's intended usage)."""

    def proc():
        first = yield from ws.elements().drain()
        yield from ws.repo.add("coll", "between-runs", value="B")
        victim = first.elements[0]
        yield from ws.repo.remove("coll", victim)
        yield from ws.elements().drain()

    scenario.kernel.run_process(proc())
    # judge the second run: its window saw only the between-runs world
    return ws.traces[-1], scenario.world


def run_conformance_matrix(seeds: Iterable[int] = range(5)) -> ExperimentResult:
    """The E1 matrix: conforming runs per (implementation, figure)."""
    seeds = list(seeds)
    result = ExperimentResult(
        "E1", "Conformance matrix (conforming runs / total runs)",
        columns=["impl"] + [s.spec_id for s in MATRIX_SPECS],
        notes="each impl driven in its intended environment; "
              "checker = ensures + constraint over the run's window",
    )
    for case in IMPL_CASES:
        counts = {s.spec_id: 0 for s in MATRIX_SPECS}
        for seed in seeds:
            trace, world = _run_case(case, seed)
            for figure in MATRIX_SPECS:
                report = check_conformance(trace, figure, world)
                if report.conformant:
                    counts[figure.spec_id] += 1
        row = {"impl": case.impl_id}
        row.update({sid: f"{n}/{len(seeds)}" for sid, n in counts.items()})
        result.add(**row)
    return result
