"""E14 — the run-it-again idiom, quantified.

"If clients were concerned about these possible losses, after the
iterator terminates (returns), they can run the iterator again and hope
to catch discrepancies."  (§3.2)

How many re-runs does agreement take, and when is it hopeless?  We
sweep the mutation rate and report rounds-to-stable for the dynamic
iterator, plus how often the budget runs out with the answers still
moving — the quantitative version of "hope".
"""

from __future__ import annotations

from typing import Iterable

from ..wan.workload import Mutator, ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, iterate_until_stable
from .metrics import rate, summarize
from .report import ExperimentResult

__all__ = ["run_convergence"]


def run_convergence(mutation_rates: Iterable[float] = (0.0, 0.2, 1.0, 4.0),
                    runs_per_point: int = 8,
                    max_rounds: int = 6) -> ExperimentResult:
    """E14: rounds until two consecutive answers agree, vs churn."""
    result = ExperimentResult(
        "E14", "Re-run-until-agreement (§3.2) vs mutation rate",
        columns=["mutation_rate", "stable_rate", "mean_rounds_when_stable",
                 "mean_final_discrepancy"],
        notes="quiescent sets stabilize in 2 rounds; under churn the "
              "budget runs out with answers still moving — re-running "
              "is 'hope', not a guarantee",
    )
    for mutation_rate in mutation_rates:
        stable_counts = []
        rounds_when_stable = []
        final_discrepancies = []
        for seed in range(runs_per_point):
            spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=10)
            scenario = build_scenario(spec, seed=seed)
            if mutation_rate > 0:
                Mutator(scenario, add_rate=mutation_rate / 2,
                        remove_rate=mutation_rate / 2).start()
            ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                            record=False)

            def proc():
                return (yield from iterate_until_stable(
                    ws, max_rounds=max_rounds, pause_between=0.2))

            outcome = scenario.kernel.run_process(proc())
            stable_counts.append(1 if outcome.stable else 0)
            if outcome.stable:
                rounds_when_stable.append(outcome.rounds)
            final_discrepancies.append(len(outcome.discrepancies))
        rounds_summary = summarize(rounds_when_stable)
        result.add(
            mutation_rate=mutation_rate,
            stable_rate=rate(sum(stable_counts), runs_per_point),
            mean_rounds_when_stable=(rounds_summary.mean
                                     if rounds_summary else float("nan")),
            mean_final_discrepancy=(sum(final_discrepancies)
                                    / len(final_discrepancies)),
        )
    return result
