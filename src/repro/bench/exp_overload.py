"""E23 — overload protection: the saturation knee, with and without.

The paper's environment is open-loop: "thousands of workstations"
offer load regardless of what the service can absorb.  E23 rams a
population arrival ramp straight through the primary's saturation
knee twice, on identical worlds with identical finite capacity
(``concurrency`` workers x ``service_time`` per request):

* **protected** — bounded admission queue with the priority
  discipline, brownout membership reads, and a client stack carrying
  a retry budget plus the AIMD adaptive-concurrency limiter.  Excess
  load is shed early with ``retry_after`` hints; goodput plateaus at
  capacity and the p95 of *successful* sessions stays bounded.
* **ablation** — the same workers behind an *unbounded* FIFO queue
  and a client stack that retries without a budget: the textbook
  congestion collapse.  Queueing delay blows through the RPC timeout,
  servers burn worker-seconds on requests whose callers already gave
  up, retries amplify the offered load, and late-stage goodput falls
  off a cliff.

A third leg crashes the primary mid-overload under a writer-heavy
mix and proves robustness is not bought with correctness: after
recovery the world passes every cross-component invariant and a
recorded Figure-6 iteration is conformant — shed, queued, and
crash-interrupted writes never leak.

All three legs are seed-deterministic simulations; goodput and p95
columns are virtual-time quantities, so the gates travel to any
machine.
"""

from __future__ import annotations

import time
from typing import Generator

from ..net.executor import ExecutorPolicy
from ..net.failures import FaultSchedule
from ..net.resilience import (
    AIMDPolicy,
    AdaptiveLimiter,
    ResilientClient,
    RetryBudgetPolicy,
)
from ..sim.rng import Stream
from ..spec import check_conformance, spec_by_id
from ..store.repository import Repository
from ..wan.population import Behavior, PopulationEngine, PopulationSpec, Stage
from ..wan.workload import Scenario, ScenarioSpec, build_scenario
from ..weaksets import make_weak_set
from .report import ExperimentResult

__all__ = ["run_overload", "overload_scenario_spec", "overload_stages",
           "overload_behaviors", "CONCURRENCY", "SERVICE_TIME"]

#: The finite capacity both arms share: 4 workers x 10 ms per request
#: puts the primary's membership-read knee at ~400 sessions/s.
CONCURRENCY = 4
SERVICE_TIME = 0.010

#: Admission queue depth for the protected arm (the ablation's is
#: unbounded — that *is* the ablation).
QUEUE_LIMIT = 16


def overload_scenario_spec(protected: bool) -> ScenarioSpec:
    """The E23 world: one capacity, two admission disciplines."""
    if protected:
        executor = ExecutorPolicy(concurrency=CONCURRENCY,
                                  queue_limit=QUEUE_LIMIT,
                                  discipline="priority", brownout=True)
    else:
        # Finite workers, infinite queue: the pre-admission-control
        # server.  Nothing is ever shed; everything eventually times out.
        executor = ExecutorPolicy(concurrency=CONCURRENCY, queue_limit=None)
    return ScenarioSpec(service_time=SERVICE_TIME, executor=executor)


def overload_stages(duration_scale: float = 1.0) -> tuple[Stage, ...]:
    """The ramp: below the knee, at it, past it, far past it.

    ``duration_scale`` shrinks stage *durations* (fewer arrivals for
    tests and soaks) while leaving the rates — and therefore the knee
    physics — untouched.  Scaling rates instead would scale the
    overload away.
    """
    d = 8.0 * duration_scale
    return (
        Stage(duration=d, arrival_rate=160.0, name="below"),
        Stage(duration=d, arrival_rate=400.0, name="knee"),
        Stage(duration=d, arrival_rate=800.0, name="saturate"),
        Stage(duration=d, arrival_rate=1400.0, name="overload"),
    )


def overload_behaviors(scenario: Scenario, repo: Repository,
                       reader_weight: float = 8.0,
                       writer_weight: float = 1.0) -> tuple[Behavior, ...]:
    """Reader/writer mix running against one *shared* repository.

    Sharing the repository is the point: the retry budget and the AIMD
    limiter are per-client-stack state, and the population models many
    sessions behind one stub.  Readers read membership and fetch one
    member; writers add a fresh member and remove it (stationary size).
    """
    coll = scenario.coll_id
    counter = iter(range(1, 1 << 30))

    def reader(sc: Scenario, stream: Stream) -> Generator:
        view = yield from repo.read_membership(coll)
        members = sorted(view.members, key=lambda e: e.name)
        if members:
            target = members[stream.randint(0, len(members) - 1)]
            yield from repo.fetch(target)

    def writer(sc: Scenario, stream: Stream) -> Generator:
        i = next(counter)
        element = yield from repo.add(coll, f"ovl-{i:07d}",
                                      value=f"ovl-payload-{i}")
        yield from repo.remove(coll, element)

    return (
        Behavior("reader", reader_weight, reader),
        Behavior("writer", writer_weight, writer),
    )


def _protected_repo(scenario: Scenario) -> Repository:
    """The full client stack: retries honoring retry_after, a token-
    bucket retry budget, and a shared AIMD window for the pipelines."""
    client = ResilientClient(scenario.net,
                             retry_budget=RetryBudgetPolicy(ratio=0.1,
                                                            burst=10.0))
    limiter = AdaptiveLimiter(AIMDPolicy(max_window=32),
                              metrics=scenario.kernel.obs.metrics)
    return Repository(scenario.world, scenario.client,
                      resilience=client, limiter=limiter)


def _ablation_repo(scenario: Scenario) -> Repository:
    """Retries without a budget: each timed-out attempt begets more."""
    return Repository(scenario.world, scenario.client,
                      resilience=ResilientClient(scenario.net))


def _overload_counters(scenario: Scenario) -> dict:
    metrics = scenario.kernel.obs.metrics
    return {name: int(metrics.value(f"overload.{name}"))
            for name in ("admitted", "shed", "brownout_served",
                         "retry_budget_exhausted")}


def _run_arm(arm: str, seed: int, duration_scale: float):
    scenario = build_scenario(overload_scenario_spec(arm == "protected"),
                              seed=seed)
    repo = (_protected_repo(scenario) if arm == "protected"
            else _ablation_repo(scenario))
    spec = PopulationSpec(
        behaviors=overload_behaviors(scenario, repo),
        stages=overload_stages(duration_scale),
        arrival="lognormal", lognormal_sigma=1.0,
        audit_fraction=0.001,
        # Long enough for a full timeout x retry chain to land as a
        # counted failure instead of lingering in flight.
        drain_grace=20.0,
    )
    engine = PopulationEngine(scenario, spec)
    stages = engine.run()
    return scenario, stages, _overload_counters(scenario)


def _run_crash_leg(seed: int, duration_scale: float):
    """Primary crash mid-overload, writer-heavy: the correctness leg."""
    sspec = overload_scenario_spec(True)
    scenario = build_scenario(sspec, seed=seed)
    kernel = scenario.kernel
    repo = _protected_repo(scenario)
    duration = 10.0 * duration_scale
    schedule = (FaultSchedule()
                .crash_at(duration * 0.3, sspec.primary)
                .recover_at(duration * 0.5, sspec.primary))
    kernel.spawn(schedule.run(scenario.net), name="fault-schedule",
                 daemon=True)
    spec = PopulationSpec(
        behaviors=overload_behaviors(scenario, repo,
                                     reader_weight=4.0, writer_weight=4.0),
        stages=(Stage(duration=duration, arrival_rate=500.0,
                      start_rate=500.0, name="crash-overload"),),
        arrival="lognormal", lognormal_sigma=1.0,
        drain_grace=20.0,
    )
    engine = PopulationEngine(scenario, spec)
    stages = engine.run()
    # Quiesce: stragglers, WAL replay, and a few scrub periods, so the
    # invariant check sees the repaired steady state.
    kernel.run(until=kernel.now + 30.0)
    problems = scenario.world.check_invariants()
    # Post-recovery conformance: a recorded Figure-6 iteration over the
    # survivor state must be conformant — shedding and the crash never
    # produce an observably-wrong weak set.
    ws = make_weak_set(scenario.world, scenario.client, scenario.coll_id,
                       semantics="dynamic", record=True)
    kernel.run_process(ws.elements().drain())
    report = check_conformance(ws.last_trace, spec_by_id("fig6"),
                               scenario.world)
    return scenario, stages, _overload_counters(scenario), problems, report


def run_overload(seed: int = 0, duration_scale: float = 1.0) -> ExperimentResult:
    """E23: protected vs unprotected saturation, plus the crash leg."""
    t0 = time.perf_counter()
    result = ExperimentResult(
        "E23",
        "Overload protection: identical capacity "
        f"({CONCURRENCY} workers x {SERVICE_TIME * 1000:.0f} ms), "
        f"bounded+priority+brownout vs unbounded queue, seed={seed}",
        columns=["arm", "stage", "target_rate", "arrivals", "completions",
                 "failures", "goodput", "p95_ok_s", "shed", "brownout"],
        notes="goodput = successful sessions per virtual second of "
              "stage; p95_ok over successful sessions only; shed and "
              "brownout are whole-arm admission-control totals; the "
              "crash arm's verdict rows gate invariant leaks and "
              "post-recovery fig6 conformance",
    )
    metrics: dict[str, float] = {}
    arm_stages: dict[str, list] = {}
    for arm in ("protected", "ablation"):
        scenario, stages, counters = _run_arm(arm, seed, duration_scale)
        arm_stages[arm] = stages
        for r in stages:
            result.add(arm=arm, stage=r.name,
                       target_rate=round(r.target_rate, 1),
                       arrivals=r.arrivals, completions=r.completions,
                       failures=r.failures,
                       goodput=round(r.goodput, 1),
                       p95_ok_s=round(r.p95_ok_latency, 4),
                       shed="", brownout="")
        result.add(arm=arm, stage="total", target_rate="",
                   arrivals=sum(r.arrivals for r in stages),
                   completions=sum(r.completions for r in stages),
                   failures=sum(r.failures for r in stages),
                   goodput="", p95_ok_s="",
                   shed=counters["shed"],
                   brownout=counters["brownout_served"])
        peak = max(r.goodput for r in stages)
        final = stages[-1].goodput
        metrics[f"{arm}.goodput_peak"] = round(peak, 1)
        metrics[f"{arm}.goodput_final"] = round(final, 1)
        metrics[f"{arm}.p95_ok_final_s"] = round(stages[-1].p95_ok_latency, 4)
        metrics[f"{arm}.shed"] = counters["shed"]
        metrics[f"{arm}.brownout_served"] = counters["brownout_served"]
        metrics[f"{arm}.retry_budget_exhausted"] = (
            counters["retry_budget_exhausted"])
        metrics[f"{arm}.audits"] = int(
            scenario.kernel.obs.metrics.value("population.audits"))
        metrics[f"{arm}.audit_violations"] = sum(
            r.audit_violations for r in stages)
    _, crash_stages, crash_counters, problems, report = _run_crash_leg(
        seed, duration_scale)
    for r in crash_stages:
        result.add(arm="crash", stage=r.name,
                   target_rate=round(r.target_rate, 1),
                   arrivals=r.arrivals, completions=r.completions,
                   failures=r.failures, goodput=round(r.goodput, 1),
                   p95_ok_s=round(r.p95_ok_latency, 4),
                   shed=crash_counters["shed"],
                   brownout=crash_counters["brownout_served"])
    result.add(arm="crash", stage="verdict", target_rate="",
               arrivals="", completions="", failures=len(problems),
               goodput="", p95_ok_s="",
               shed="conformant" if report.conformant else "VIOLATION",
               brownout="")
    metrics["crash.invariant_leaks"] = len(problems)
    metrics["crash.conformant"] = int(report.conformant)
    metrics["crash.shed"] = crash_counters["shed"]
    metrics["elapsed_wall_s"] = round(time.perf_counter() - t0, 3)
    result.overload_metrics = metrics
    if problems:  # pragma: no cover - the gate this experiment exists for
        result.notes += f" | INVARIANT LEAKS: {problems}"
    return result
