"""Summary statistics for experiment results."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

__all__ = ["Summary", "summarize", "rate"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.4f} median={self.median:.4f} "
                f"p95={self.p95:.4f} min={self.minimum:.4f} max={self.maximum:.4f}")


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile on a pre-sorted sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    frac = pos - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # interpolation can drift past the endpoints by an ulp; clamp
    return min(max(value, ordered[lo]), ordered[hi])


def summarize(values: Iterable[float]) -> Optional[Summary]:
    """Summary of a sample; None for an empty one."""
    ordered = sorted(values)
    if not ordered:
        return None
    return Summary(
        n=len(ordered),
        mean=sum(ordered) / len(ordered),
        median=_percentile(ordered, 0.5),
        p95=_percentile(ordered, 0.95),
        minimum=ordered[0],
        maximum=ordered[-1],
    )


def rate(numerator: int, denominator: int) -> float:
    """A safe ratio (0.0 when the denominator is zero)."""
    return numerator / denominator if denominator else 0.0
