"""E13 — the system under a population of users.

The paper's closing promise is about a *system*: many (human-paced)
clients querying shared collections while writers publish.  We run a
user population against one world, dynamic-sets vs strong semantics,
and measure what each user experiences (query latency) and what the
writer experiences (publish latency) — the whole-system version of the
per-query experiments.
"""

from __future__ import annotations


from ..sim.events import Sleep
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import StrongSet, install_lock_service, make_weak_set
from .metrics import summarize
from .report import ExperimentResult

__all__ = ["run_system"]


def _run_population(semantics: str, *, n_users: int, queries_per_user: int,
                    think_time: float, n_members: int, seed: int,
                    writer_priority: bool = False):
    spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=n_members)
    scenario = build_scenario(spec, seed=seed)
    install_lock_service(scenario.world, spec.primary,
                         writer_priority=writer_priority)
    kernel = scenario.kernel
    query_latencies: list[float] = []
    publish_latencies: list[float] = []
    user_nodes = [f"n{c}.{i}" for c in range(4) for i in range(3)]

    def user(index: int):
        node = user_nodes[index % len(user_nodes)]
        ws = make_weak_set(scenario.world, node, spec.coll_id, semantics,
                           record=False)
        stream = kernel.stream(f"user{index}")
        for _ in range(queries_per_user):
            t0 = kernel.now
            result = yield from ws.elements().drain()
            if not result.failed:
                query_latencies.append(kernel.now - t0)
            yield Sleep(stream.exponential(think_time))

    def publisher():
        ws = StrongSet(scenario.world, spec.primary, spec.coll_id,
                       record=False)
        stream = kernel.stream("publisher")
        for i in range(6):
            yield Sleep(stream.exponential(2.0))
            t0 = kernel.now
            try:
                yield from ws.add(f"published-{i}", value=i)
                publish_latencies.append(kernel.now - t0)
            except Exception:
                pass

    for i in range(n_users):
        kernel.spawn(user(i), name=f"user-{i}")
    kernel.spawn(publisher(), name="publisher", daemon=True)
    kernel.run(until=600.0)
    return query_latencies, publish_latencies, kernel.now


def run_system(n_users: int = 8, queries_per_user: int = 3,
               think_time: float = 1.0, n_members: int = 24,
               seed: int = 0) -> ExperimentResult:
    """E13: user-visible latencies under load, per semantics."""
    result = ExperimentResult(
        "E13", f"System under load: {n_users} users x {queries_per_user} "
               f"queries, one publisher",
        columns=["semantics", "queries_ok", "query_mean", "query_p95",
                 "publishes_ok", "publish_mean"],
        notes="strong readers share the lock with each other but "
              "serialize against the publisher, inflating publish "
              "latency; dynamic queries and publishes never interfere",
    )
    variants = (
        ("dynamic", False),
        ("strong", False),
        ("strong + writer-priority", True),
    )
    for label, writer_priority in variants:
        semantics = "dynamic" if label == "dynamic" else "strong"
        queries, publishes, _ = _run_population(
            semantics, n_users=n_users, queries_per_user=queries_per_user,
            think_time=think_time, n_members=n_members, seed=seed,
            writer_priority=writer_priority,
        )
        q = summarize(queries)
        p = summarize(publishes)
        result.add(
            semantics=label,
            queries_ok=len(queries),
            query_mean=q.mean if q else float("nan"),
            query_p95=q.p95 if q else float("nan"),
            publishes_ok=len(publishes),
            publish_mean=p.mean if p else float("nan"),
        )
    return result
