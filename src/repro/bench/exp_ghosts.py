"""E10 — §3.3's grow-only machinery: ghosts vs plain removal.

"To ensure that sets only grow during the iterator's use of the set, we
can prevent objects from being deleted until the iterator terminates.
Alternatively, we can create copies of any deleted objects and then
garbage collect these 'ghost' copies upon termination."

A churn workload removes members while a slow iterator runs.  Under the
ghost protocol (``grow-during-run``) the run sees every member it
started with (growth-only within a run, constraint verified); under
plain ``any`` removal takes effect immediately and the dynamic iterator
simply misses removed members.  The cost side: removals are deferred —
we measure how long ghosts linger.
"""

from __future__ import annotations

from ..sim.events import Sleep
from ..spec import per_run_grow_only
from ..store.repository import Repository
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, PerRunGrowOnlySet
from .report import ExperimentResult

__all__ = ["run_ghosts"]


def _one_run(policy: str, cls, seed: int = 0, members: int = 10,
             think: float = 0.3, removals: int = 3):
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=members,
                        policy=policy)
    scenario = build_scenario(spec, seed=seed)
    ws = cls(scenario.world, scenario.client, spec.coll_id)
    iterator = ws.elements()
    primary_repo = Repository(scenario.world, spec.primary)
    removal_info = {"requested_at": [], "took_effect_at": []}

    def remover():
        # remove a few members early in the run
        yield Sleep(think * 1.5)
        victims = sorted(scenario.elements, key=lambda e: e.name,
                         reverse=True)[:removals]
        for victim in victims:
            t0 = scenario.kernel.now
            try:
                yield from primary_repo.remove(spec.coll_id, victim)
            except Exception:
                continue
            removal_info["requested_at"].append(t0)

    def consumer():
        yields = []
        while True:
            outcome = yield from iterator.invoke()
            if not outcome.suspends:
                break
            yields.append(outcome.element)
            yield Sleep(think)
        return yields

    scenario.kernel.spawn(remover(), daemon=True)
    yields = scenario.kernel.run_process(consumer())
    # let deferred purges complete
    scenario.kernel.run(until=scenario.kernel.now + 1.0)
    final = scenario.world.true_members(spec.coll_id)
    history = scenario.world.membership_history(spec.coll_id)
    window = ws.last_trace.window()
    grow_only_ok = (per_run_grow_only().check_windows(history, [window]) == []
                    if window else True)
    return {
        "yields": len(yields),
        "initial": members,
        "final": len(final),
        "coverage_of_initial": len([e for e in yields
                                    if e in set(scenario.elements)]) / members,
        "grow_only_during_run": grow_only_ok,
        "removals_effective": members - len(final),
    }


def run_ghosts(seed: int = 0) -> ExperimentResult:
    """E10: ghost protocol vs plain removal under a churn workload."""
    result = ExperimentResult(
        "E10", "§3.3 ghost protocol vs immediate removal (slow run, 3 removes)",
        columns=["policy", "impl", "yields", "coverage_of_initial",
                 "grow_only_during_run", "final_size"],
        notes="ghosts keep the run growth-only (full coverage) and defer "
              "removals to run end; plain removal loses members mid-run",
    )
    ghost = _one_run("grow-during-run", PerRunGrowOnlySet, seed=seed)
    result.add(policy="grow-during-run", impl="per-run-grow-only",
               yields=ghost["yields"],
               coverage_of_initial=ghost["coverage_of_initial"],
               grow_only_during_run=ghost["grow_only_during_run"],
               final_size=ghost["final"])
    plain = _one_run("any", DynamicSet, seed=seed)
    result.add(policy="any (immediate remove)", impl="dynamic",
               yields=plain["yields"],
               coverage_of_initial=plain["coverage_of_initial"],
               grow_only_during_run=plain["grow_only_during_run"],
               final_size=plain["final"])
    return result
