"""E8 — the Garcia-Molina/Wiederhold taxonomy, and E9 — reachability.

E8 re-derives §4's classification of the four figures from spec
structure and prints the table the paper gives in prose.

E9 replays Figure 2's example exactly, then scales the ``reachable``
model over random partition patterns: the reachable fraction tracks the
observer's partition size, and existence never changes — accessibility
does.
"""

from __future__ import annotations

from typing import Iterable

from ..net.fabric import Network
from ..net.link import FixedLatency
from ..net.topology import full_mesh
from ..sim.kernel import Kernel
from ..store.reachability import figure2_world
from ..store.world import World
from ..spec.taxonomy import taxonomy_table
from .report import ExperimentResult

__all__ = ["run_taxonomy", "run_reachability", "PAPER_TAXONOMY"]

# What §4 says, verbatim targets for the derived table.
PAPER_TAXONOMY = {
    "fig3": ("strong (serializable)", "first-vintage"),
    "fig4": ("weak", "first-vintage"),
    "fig5": ("none", "first-bound"),
    "fig6": ("none", "first-bound"),
}


def run_taxonomy() -> ExperimentResult:
    """E8: derived classification vs the paper's prose."""
    result = ExperimentResult(
        "E8", "Garcia-Molina & Wiederhold classification (§4)",
        columns=["spec", "figure", "consistency", "currency", "matches_paper"],
    )
    for spec_id, figure, classification in taxonomy_table():
        expected = PAPER_TAXONOMY.get(spec_id)
        matches = (expected is None or
                   (classification.consistency, classification.currency) == expected)
        result.add(
            spec=spec_id,
            figure=figure,
            consistency=classification.consistency,
            currency=classification.currency,
            matches_paper="n/a (fig1 not classified)" if expected is None else matches,
        )
    return result


def run_reachability(sizes: Iterable[int] = (8, 16, 32),
                     seed: int = 0) -> ExperimentResult:
    """E9: Figure 2 replayed, then random partitions at scale."""
    result = ExperimentResult(
        "E9", "Reachability: existence vs accessibility (Figure 2)",
        columns=["scenario", "members", "reachable", "exists"],
        notes="partitioning changes reachable(a), never a's value",
    )
    # -- the exact Figure 2 example -----------------------------------------
    fig = figure2_world(seed=seed)
    result.add(scenario="fig2 sigma (no partition)", members=3,
               reachable=len(fig.reachable_from_n()), exists=3)
    fig.partition_n_from_c()
    result.add(scenario="fig2 sigma' (N | C split)", members=3,
               reachable=len(fig.reachable_from_n()), exists=3)
    fig.heal()

    # -- random partitions at scale ---------------------------------------
    for n in sizes:
        kernel = Kernel(seed=seed)
        nodes = [f"n{i}" for i in range(n)]
        net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
        world = World(net)
        world.create_collection("c", primary="n0")
        for i in range(n):
            world.seed_member("c", f"m{i}", home=f"n{i}")
        stream = kernel.stream("part")
        cut = stream.sample(nodes[1:], k=n // 4)       # keep the observer in
        net.split(cut)
        reachable = world.reachable_members("c", "n0")
        result.add(
            scenario=f"random split ({n // 4} nodes cut)",
            members=n,
            reachable=len(reachable),
            exists=len(world.true_members("c")),
        )
        net.heal()
    return result
