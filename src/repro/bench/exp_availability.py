"""E4 — availability under partitions: pessimistic vs optimistic vs strong.

"The appropriate choice depends on the number of failures, and the
tradeoff between high availability and consistency of the data."

We sweep a per-node isolation rate (mobile nodes dropping off and
rejoining, exponential downtimes) and measure, per semantics:

* **success rate** — runs that terminated without the failure exception;
* **coverage** — fraction of the initial membership yielded;
* **mean latency** of successful runs (optimism trades waiting for
  completeness, so its latency grows where pessimism's success drops).

The expected shape: optimistic ≥ pessimistic ≥ strong in success at
every rate, with the gap widening as failures become common.
"""

from __future__ import annotations

from typing import Iterable

from ..net.failures import FaultPlan
from ..spec import Returned
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, GrowOnlySet, StrongSet, install_lock_service
from .metrics import rate, summarize
from .report import ExperimentResult

__all__ = ["run_availability"]

_IMPLS = (
    ("strong", StrongSet, {"lock_wait_timeout": 10.0}),
    ("fig5 pessimistic", GrowOnlySet, {}),
    ("fig6 optimistic", DynamicSet, {"retry_interval": 0.25}),
)


def _one_run(impl_name, cls, kwargs, isolate_rate, seed, members=12,
             fail_fast=True, replicas=0):
    policy = cls.expected_policy or "any"
    plan = FaultPlan(
        isolate_rate=isolate_rate,
        mean_downtime=1.0,
        protected=frozenset({"client", "n0.0"}),  # the client and primary stay up
    )
    spec = ScenarioSpec(n_clusters=3, cluster_size=3, n_members=members,
                        policy=policy, fault_plan=plan, fail_fast=fail_fast,
                        replicas=replicas, rpc_timeout=2.0)
    scenario = build_scenario(spec, seed=seed)
    install_lock_service(scenario.world, spec.primary)
    ws = cls(scenario.world, scenario.client, spec.coll_id,
             record=False, **kwargs)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    drained = scenario.kernel.run_process(proc())
    if scenario.injector is not None:
        scenario.injector.stop()
    success = isinstance(drained.outcome, Returned)
    coverage = len(drained.yields) / members
    return success, coverage, drained.total_time


def run_availability_ablation(isolate_rate: float = 0.1,
                              runs_per_point: int = 10) -> ExperimentResult:
    """E4a: two ablations at a fixed failure rate.

    * **quorum reads** (§3.3's aside): replicated membership + majority
      reads let the pessimistic iterator tolerate primary loss and
      lagging replicas — here the primary is protected, so the visible
      effect is cost (extra reads) for equal availability;
    * **failure detection**: with ``fail_fast`` off, every failure is
      discovered by burning the full RPC timeout — same verdicts, far
      higher latency.  "We assume we can detect failures … signaled
      from the lower network and transport layers"; this is what that
      assumption is worth.
    """
    from ..weaksets import QuorumGrowOnlySet

    variants = (
        ("fig5 primary-read (fail-fast)", GrowOnlySet, {}, True, 0),
        ("fig5 quorum-read (fail-fast)", QuorumGrowOnlySet, {}, True, 2),
        ("fig5 primary-read (timeout-only)", GrowOnlySet, {}, False, 0),
        ("fig6 optimistic (fail-fast)", DynamicSet,
         {"retry_interval": 0.25}, True, 0),
        ("fig6 optimistic (timeout-only)", DynamicSet,
         {"retry_interval": 0.25}, False, 0),
    )
    result = ExperimentResult(
        "E4a", f"Ablations at isolate_rate={isolate_rate} "
               "(quorum reads; transport failure detection)",
        columns=["variant", "success_rate", "mean_coverage", "mean_latency_ok"],
        notes="quorum reads trade read cost for availability; timeout-only "
              "discovery is slower per attempt — which accidentally waits "
              "out transient failures (slow pessimism drifts optimistic)",
    )
    for name, cls, kwargs, fail_fast, replicas in variants:
        successes, coverages, latencies_ok = 0, [], []
        for seed in range(runs_per_point):
            success, coverage, latency = _one_run(
                name, cls, kwargs, isolate_rate, seed,
                fail_fast=fail_fast, replicas=replicas)
            if success:
                successes += 1
                latencies_ok.append(latency)
            coverages.append(coverage)
        summary = summarize(latencies_ok)
        result.add(
            variant=name,
            success_rate=rate(successes, runs_per_point),
            mean_coverage=sum(coverages) / len(coverages),
            mean_latency_ok=summary.mean if summary else float("nan"),
        )
    return result


def run_availability(rates: Iterable[float] = (0.0, 0.02, 0.05, 0.1, 0.2),
                     runs_per_point: int = 10) -> ExperimentResult:
    """E4: sweep the isolation rate; report success/coverage/latency."""
    result = ExperimentResult(
        "E4", "Availability under partitions "
              "(per-node isolation rate, 1s mean downtime)",
        columns=["isolate_rate", "impl", "success_rate", "mean_coverage",
                 "mean_latency_ok"],
        notes="optimistic >= pessimistic >= strong at every rate "
              "(optimistic trades waiting time for completeness)",
    )
    for isolate_rate in rates:
        for impl_name, cls, kwargs in _IMPLS:
            successes = 0
            coverages = []
            latencies_ok = []
            for seed in range(runs_per_point):
                success, coverage, latency = _one_run(
                    impl_name, cls, kwargs, isolate_rate, seed)
                if success:
                    successes += 1
                    latencies_ok.append(latency)
                coverages.append(coverage)
            latency_summary = summarize(latencies_ok)
            result.add(
                isolate_rate=isolate_rate,
                impl=impl_name,
                success_rate=rate(successes, runs_per_point),
                mean_coverage=sum(coverages) / len(coverages),
                mean_latency_ok=(latency_summary.mean
                                 if latency_summary else float("nan")),
            )
    return result
