"""E21 — disconnected operation: offline reads, the outbox, reconcile.

The paper's motivating clients are *mobile*: "nodes may crash and
communication links may fail", and the weakest semantics exist exactly
so a disconnected client can keep working against stale state.  E21
makes that a first-class scenario:

* **E21** — availability of each semantics while the client itself is
  DISCONNECTED.  Figure 1's ensures clause has no reachability term on
  yields, so a warm cache drains to completion offline *and still
  conforms to the spec*; the reachability-requiring semantics must
  fail — and fail *fast* (the ``DisconnectedError`` gate), not burn
  their ``give_up_after`` budget discovering what the client already
  knows.
* **E21a** — reconciliation cost as the outbox deepens: delta pull,
  conflict/tombstone classification, pair cancellation, and the
  batched replay drain, in virtual seconds.
* **E21b** — the crash-mid-drain soak: the durable (WAL-modeled)
  outbox must be item-precise across a client crash — no lost queued
  adds, no double-applies — while the volatile ablation measurably
  leaks.
* **E21c** — the geo-replicated end-to-end: a flapping mobile client
  (``disconnect_rate`` / ``offline_duration``) over clusters suffering
  correlated whole-DC partitions (``dc_partition_rate``), with remote
  churn; after healing, everything reconciles and the world's
  invariants hold.
"""

from __future__ import annotations

from ..net import FaultSchedule, FixedLatency, Network, full_mesh
from ..sim import Kernel
from ..sim.events import Sleep
from ..spec import Returned, check_conformance, spec_by_id
from ..store import ClientCache, OfflineClient, Repository, World
from ..store.offline import CONNECTED, DISCONNECTED, LOST
from ..wan.workload import Mutator, ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, Figure1Set, GrowOnlySet, StrongSet, install_lock_service
from .metrics import rate
from .report import ExperimentResult

__all__ = ["run_disconnected", "run_reconcile_cost", "run_outbox_crash",
           "run_geo_flap"]

_IMPLS = (
    ("fig1 immutable", Figure1Set, "fig1", {}),
    ("fig5 pessimistic", GrowOnlySet, None, {}),
    ("fig6 optimistic", DynamicSet, None,
     {"retry_interval": 0.25, "give_up_after": 10.0}),
    ("strong", StrongSet, None, {"lock_wait_timeout": 2.0}),
)


def _one_drain(cls, kwargs, offline_leg, seed, members=12):
    spec = ScenarioSpec(n_clusters=3, cluster_size=3, n_members=members,
                        policy=cls.expected_policy or "any", rpc_timeout=2.0)
    scenario = build_scenario(spec, seed=seed)
    install_lock_service(scenario.world, spec.primary)
    cache = ClientCache(ttl=120.0)
    ws = cls(scenario.world, scenario.client, spec.coll_id,
             cache=cache, **kwargs)
    offline = OfflineClient(scenario.world, scenario.client, spec.coll_id,
                            cache=cache)
    offline.attach(ws.repo)
    if offline_leg:
        # Warm the membership view, then lose the network.
        scenario.kernel.run_process(
            offline.repo.read_membership(spec.coll_id, source="primary"))
        offline.disconnect()
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    drained = scenario.kernel.run_process(proc())
    success = isinstance(drained.outcome, Returned)
    coverage = len(drained.yields) / members
    return success, coverage, drained.total_time, ws, scenario.world


def run_disconnected(runs_per_point: int = 6) -> ExperimentResult:
    """E21: availability and conformance while the client is offline."""
    result = ExperimentResult(
        "E21", "Disconnected operation: availability of each semantics "
               "while the client is DISCONNECTED (warm cache)",
        columns=["impl", "state", "success_rate", "mean_coverage",
                 "mean_latency", "fig1_conformant"],
        notes="fig1 permits offline reads — full coverage from the cached "
              "view with zero spec violations; the reachability-requiring "
              "semantics fail, and fail *fast* (DisconnectedError, not a "
              "give_up_after burn: mean_latency ~0 while offline)",
    )
    for impl_name, cls, spec_id, kwargs in _IMPLS:
        for offline_leg in (False, True):
            successes, coverages, latencies, conformant = 0, [], [], True
            for seed in range(runs_per_point):
                success, coverage, latency, ws, world = _one_drain(
                    cls, kwargs, offline_leg, seed)
                successes += success
                coverages.append(coverage)
                latencies.append(latency)
                if spec_id is not None:
                    report = check_conformance(ws.last_trace,
                                               spec_by_id(spec_id), world)
                    conformant = conformant and report.conformant
            result.add(
                impl=impl_name,
                state="offline" if offline_leg else "connected",
                success_rate=rate(successes, runs_per_point),
                mean_coverage=sum(coverages) / len(coverages),
                mean_latency=sum(latencies) / len(latencies),
                fig1_conformant=("yes" if conformant else "NO")
                                if spec_id is not None else "-",
            )
    return result


def run_reconcile_cost(depths=(4, 16, 48)) -> ExperimentResult:
    """E21a: reconciliation cost as the offline outbox deepens."""
    result = ExperimentResult(
        "E21a", "Reconnect reconciliation vs. outbox depth "
                "(queued adds + removes, remote churn while offline)",
        columns=["queued", "replayed", "conflicts", "dropped", "cancelled",
                 "pulled", "drain_s"],
        notes="each run queues N adds + 4 removes + 1 add/remove pair "
              "offline while a remote node tombstones two victims and "
              "re-adds one name — drops and conflicts classify against the "
              "pulled delta, the pair cancels locally, the rest replays "
              "through one batched write pipeline; drain_s is virtual time",
    )
    for depth in depths:
        spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=12,
                            rpc_timeout=2.0)
        scenario = build_scenario(spec, seed=depth)
        kernel = scenario.kernel
        offline = OfflineClient(scenario.world, scenario.client,
                                spec.coll_id, window=4, batch_size=8)
        kernel.run_process(
            offline.repo.read_membership(spec.coll_id, source="primary"))
        offline.disconnect()
        for i in range(depth):
            offline.queue_add(f"off-{i:03d}", value=f"v{i}")
        victims = sorted(scenario.elements, key=lambda e: e.name)[:4]
        for victim in victims:
            offline.queue_remove(victim)
        pair = offline.queue_add("ephemeral", value="tmp")
        offline.queue_remove(pair)
        queued = offline.outbox.depth()
        # Remote churn while we are away: two tombstones (one victim's
        # name re-added under a fresh element — the conflict case).
        remote = Repository(scenario.world, "n1.0")
        kernel.run_process(remote.remove(spec.coll_id, victims[0]))
        kernel.run_process(remote.remove(spec.coll_id, victims[1]))
        kernel.run_process(remote.add(spec.coll_id, victims[1].name,
                                      value="readded"))
        started = kernel.now
        report = kernel.run_process(offline.reconnect())
        result.add(queued=queued, replayed=report.replayed,
                   conflicts=report.conflicts, dropped=report.dropped,
                   cancelled=report.cancelled, pulled=report.pulled,
                   drain_s=kernel.now - started)
        assert scenario.world.check_invariants() == []
    return result


def _crash_run(seed: int, durable: bool):
    """One mid-drain client crash; mirrors tests/test_disconnected_soak.py."""
    nodes = ["client"] + [f"s{i}" for i in range(4)]
    kernel = Kernel(seed=seed)
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.01)))
    world = World(net)
    world.create_collection("coll", primary="s0", policy="any")
    elements = [world.seed_member("coll", f"m{i:03d}", value=f"v{i}",
                                  home=f"s{i % 4}") for i in range(8)]
    offline = OfflineClient(world, "client", "coll",
                            durable_outbox=durable, window=1, batch_size=1)
    kernel.run_process(offline.repo.read_membership("coll", source="primary"))
    stream = kernel.stream("soak")
    offline.disconnect()
    added = [offline.queue_add(f"off-{seed}-{i:02d}", value=f"v{i}")
             for i in range(stream.randint(3, 6))]
    for victim in elements[:2]:
        offline.queue_remove(victim)
    offline.start_reconcile()
    schedule = FaultSchedule()
    schedule.crash_at(stream.uniform(0.05, 0.10), "client")
    schedule.recover_at(0.5, "client")
    kernel.spawn(schedule.run(net), name="crash-schedule", daemon=True)
    kernel.run(until=kernel.now + 2.0)
    if offline.outbox.depth() > 0:
        kernel.run_process(offline.reconcile())
    names = [e.name for e in world.true_members("coll")]
    lost = sum(1 for e in offline.outbox.entries if e.status == LOST)
    leaked = sum(1 for e in added if e.name not in names)
    doubled = sum(1 for e in added if names.count(e.name) > 1)
    return lost, leaked, doubled, len(world.check_invariants())


def run_outbox_crash(n_seeds: int = 24) -> ExperimentResult:
    """E21b: client crash mid-drain — durable outbox vs. the ablation."""
    result = ExperimentResult(
        "E21b", f"Crash mid-reconcile over {n_seeds} seeded schedules: "
                "durable (WAL-modeled) outbox vs. volatile ablation",
        columns=["outbox", "crashes", "lost", "leaked_adds",
                 "double_applied", "violations"],
        notes="every schedule crashes the client while the replay drain is "
              "in flight; durable must be item-precise (zero lost / leaked "
              "/ double-applied, zero invariant violations) while the "
              "volatile ablation leaks its queued tail on every seed",
    )
    for durable in (True, False):
        lost = leaked = doubled = violations = 0
        for seed in range(n_seeds):
            run_lost, run_leaked, run_doubled, run_violations = \
                _crash_run(seed, durable)
            lost += run_lost
            leaked += run_leaked
            doubled += run_doubled
            violations += run_violations
        result.add(outbox="durable" if durable else "volatile",
                   crashes=n_seeds, lost=lost, leaked_adds=leaked,
                   double_applied=doubled, violations=violations)
    return result


def _offline_writer(scenario, offline):
    """The mobile client keeps working while offline: queue mutations
    into the outbox whenever a DISCONNECTED stint is in progress."""
    stream = scenario.kernel.stream("offline-writer")
    i = 0
    while True:
        yield Sleep(stream.exponential(0.25))
        if offline.state != DISCONNECTED:
            continue
        if stream.bernoulli(0.7):
            offline.queue_add(f"mob-{i:03d}", value=f"mobile-{i}")
            i += 1
        else:
            current = sorted(offline.read_members(), key=lambda e: e.name)
            if current:
                offline.queue_remove(stream.choice(current))


def run_geo_flap(run_for: float = 30.0) -> ExperimentResult:
    """E21c: flapping mobile client over partitioning geo clusters."""
    result = ExperimentResult(
        "E21c", "Geo-replicated end-to-end: flapping client "
                "(disconnect_rate) + correlated whole-DC partitions "
                "(dc_partition_rate) + remote churn",
        columns=["disconnect_rate", "dc_rate", "flaps", "dc_partitions",
                 "sessions", "replayed", "conflicts_dropped", "violations"],
        notes="the client flapper drives explicit DISCONNECTED sessions "
              "(outbox + reconcile-on-reconnect) while whole clusters "
              "partition off together; after healing, the outbox drains "
              "and the world settles with zero invariant violations",
    )
    for disconnect_rate, dc_rate in ((0.5, 0.0), (0.5, 0.1)):
        spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=12,
                            disconnect_rate=disconnect_rate,
                            offline_duration=0.8, dc_partition_rate=dc_rate,
                            rpc_timeout=1.0)
        scenario = build_scenario(spec, seed=7)
        kernel = scenario.kernel
        offline = OfflineClient(scenario.world, scenario.client,
                                spec.coll_id)
        scenario.offline = offline
        kernel.run_process(
            offline.repo.read_membership(spec.coll_id, source="primary"))
        mutator = Mutator(scenario, add_rate=0.2, remove_rate=0.2)
        mutator.start()
        kernel.spawn(_offline_writer(scenario, offline),
                     name="offline-writer", daemon=True)
        kernel.run(until=run_for)
        if scenario.injector is not None:
            scenario.injector.stop()
        net = scenario.net
        for node in sorted(net.nodes):
            if not net.node(node).up:
                net.recover(node)
        net.heal()
        if offline.state != CONNECTED:
            kernel.run_process(offline.reconnect())
        elif offline.outbox.depth() > 0:
            kernel.run_process(offline.reconcile())
        metrics = kernel.obs.metrics
        injected = scenario.injector.injected if scenario.injector else []
        result.add(
            disconnect_rate=disconnect_rate,
            dc_rate=dc_rate,
            flaps=scenario.flaps,
            dc_partitions=sum(1 for (_, kind, _) in injected
                              if kind == "dc-partition"),
            sessions=int(metrics.value("offline.sessions")),
            replayed=int(metrics.value("reconcile.replayed")),
            conflicts_dropped=int(metrics.value("reconcile.conflicts")
                                  + metrics.value("reconcile.dropped")),
            violations=len(scenario.world.check_invariants()),
        )
    return result
