"""E18 — crash-consistent recovery: invariant violations vs. crash rate.

The paper's specification is stated over a *quiescent* system: "an item
is in the weak set if it is in the set of items at the home node".  A
multi-step removal (delete the copies, delete the home object, pop the
membership) has windows where a crash leaves that statement false — a
*dangling member* with no live home object, or an *orphaned copy* no
collection lists.  E18 injects exactly those crashes (the fault
injector's ``wal_crash_rate`` arms a crash point on a primary's intent
log, fired mid-erase at the ``home-deleted`` step) and compares two
systems over the same seeded schedules:

* **wal=on** — every mutation is intent-logged; recovery replays pending
  intents on node restart and the scrub daemon retries blocked ones and
  heals what it finds.  The acceptance bar: **zero** invariant
  violations at quiescence, at every crash rate.
* **wal=off** — the ablation: same crash points, no log, no replay, no
  scrub.  Violations must appear as soon as crashes do, which is what
  proves the protocol (not luck) is doing the work.

Also reported: how many crash points actually fired, the recovery
effort (replays, intents replayed, mean replay latency in virtual
seconds), and the anti-entropy traffic (sync rounds and total transport
messages) — recovery and sync are real RPC users now, so their cost is
visible, not free.
"""

from __future__ import annotations

from typing import Iterable

from ..net.failures import FaultPlan
from ..wan.workload import Mutator, ScenarioSpec, build_scenario
from .report import ExperimentResult

__all__ = ["run_recovery"]

#: virtual seconds of remove-heavy churn before the quiescence check
_RUN_FOR = 20.0
_SCRUB = 1.0


def one_run(crash_rate: float, recovery: bool, seed: int) -> dict:
    """One seeded churn run under mid-erase crash injection."""
    plan = None
    if crash_rate > 0:
        # half the crash points land at "begin" (nothing durable yet:
        # replay redoes every delete over RPC), half at "home-deleted"
        # (the dangerous window: only the membership pop remains)
        plan = FaultPlan(wal_crash_rate=crash_rate, mean_downtime=1.0,
                         wal_crash_steps=("begin", "home-deleted"),
                         protected=frozenset({"client"}))
    spec = ScenarioSpec(n_clusters=3, cluster_size=2, n_members=16,
                        policy="any", replicas=2, object_replicas=1,
                        fault_plan=plan, fail_fast=True, rpc_timeout=1.0,
                        recovery_enabled=recovery, scrub_interval=_SCRUB)
    scenario = build_scenario(spec, seed=seed)
    mutator = Mutator(scenario, remove_rate=1.0)
    mutator.start()
    scenario.kernel.run(until=_RUN_FOR)
    if scenario.injector is not None:
        scenario.injector.stop()
    net = scenario.net
    for node in sorted(net.nodes):          # heal before judging quiescence
        if not net.node(node).up:
            net.recover(node)
    scenario.kernel.run(until=scenario.kernel.now + 5 * _SCRUB)
    fired = sum(1 for (_, kind, _) in
                (scenario.injector.injected if scenario.injector else [])
                if kind == "wal-crash")
    metrics = scenario.kernel.obs.metrics
    latency = metrics.get("recovery.latency")
    return {
        "violations": len(scenario.world.check_invariants()),
        "crashes": fired,
        "removes": len(mutator.removed),
        "replays": metrics.value("recovery.replays"),
        "replayed": metrics.value("recovery.intents_replayed"),
        "replay_latency": (latency.mean if latency is not None
                           and latency.count else 0.0),
        "sync_rounds": metrics.value("sync.rounds"),
        "messages": metrics.value("net.messages_sent"),
    }


def run_recovery(rates: Iterable[float] = (0.0, 0.1, 0.2, 0.4),
                 runs_per_point: int = 4) -> ExperimentResult:
    """E18: sweep the mid-erase crash rate, with and without recovery."""
    result = ExperimentResult(
        "E18", "Crash-consistent recovery under mid-erase crash injection "
               "(per-primary crash-point rate, 1s mean downtime)",
        columns=["crash_rate", "wal", "violations", "crashes", "removes",
                 "replays", "replayed", "mean_replay_latency",
                 "sync_rounds", "messages"],
        notes="violations = invariant breaches at quiescence summed over "
              f"{runs_per_point} seeded runs; wal=on must stay at 0 at every "
              "rate while the wal=off ablation shows the exposure; "
              "replay latency is virtual seconds; sync_rounds/messages show "
              "that recovery and anti-entropy ride the real RPC fabric",
    )
    for crash_rate in rates:
        for recovery in (True, False):
            outcomes = [one_run(crash_rate, recovery, seed)
                        for seed in range(runs_per_point)]
            agg = {k: sum(o[k] for o in outcomes) for k in
                   ("violations", "crashes", "removes", "replays",
                    "replayed", "sync_rounds", "messages")}
            with_latency = [o["replay_latency"] for o in outcomes
                            if o["replay_latency"] > 0]
            result.add(
                crash_rate=crash_rate,
                wal="on" if recovery else "off",
                violations=agg["violations"],
                crashes=agg["crashes"],
                removes=agg["removes"],
                replays=agg["replays"],
                replayed=agg["replayed"],
                mean_replay_latency=(sum(with_latency) / len(with_latency)
                                     if with_latency else 0.0),
                sync_rounds=agg["sync_rounds"],
                messages=agg["messages"],
            )
    return result
