"""E19 — the batched, pipelined fetch engine (window / batch sweeps).

Every read path now drains through :class:`~repro.store.fetchplan.FetchPipeline`:
a sliding window of in-flight fetches, same-home candidates coalesced
into one ``get_objects`` multi-get.  E19 measures what that buys on the
WAN topology against the serial baseline (``window=1, batch=1`` — one
round-trip per element, the pre-pipeline read path), and that it buys
it without weakening semantics: every drain in the sweep is checked for
Figure 6 conformance and must report zero violations.

Two sweeps against the same seeded worlds:

* **window sweep** — window ∈ {2, 4, 8, 16} at ``batch=4``: how much
  concurrency the sliding window converts into wall-clock;
* **batch sweep** — batch ∈ {1, 2, 8} at ``window=8``: what same-home
  coalescing adds on top (one service-time charge per multi-get).
"""

from __future__ import annotations

from typing import Iterable

from ..spec import check_conformance, spec_by_id
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet
from .report import ExperimentResult

__all__ = ["run_fetchpipe"]


def _one_drain(window: int, batch: int, seed: int, members: int):
    """One seeded fig6 drain at the given pipeline shape."""
    spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=members,
                        policy="any", heavy_tail=False)
    scenario = build_scenario(spec, seed=seed)
    ws = DynamicSet(scenario.world, scenario.client, spec.coll_id,
                    fetch_window=window, fetch_batch=batch)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    drained = scenario.kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id("fig6"),
                               scenario.world)
    return drained, (0 if report.conformant else 1)


def run_fetchpipe(members: int = 24,
                  seeds: Iterable[int] = range(3)) -> ExperimentResult:
    """E19: drain cost vs pipeline window and batch size."""
    seeds = list(seeds)
    result = ExperimentResult(
        "E19", "Fetch pipeline: batched drain vs serial (fig6, WAN)",
        columns=["mode", "window", "batch", "time_to_first", "total_time",
                 "speedup_vs_serial", "violations"],
        notes="serial = window 1 / batch 1, one round-trip per element; "
              "speedup is serial total over batched total on the same "
              "seeds; violations must stay 0 — pipelining may not "
              "weaken fig6",
    )

    def sweep_point(window: int, batch: int):
        tt_first = total = 0.0
        violations = 0
        for seed in seeds:
            drained, bad = _one_drain(window, batch, seed, members)
            tt_first += drained.time_to_first
            total += drained.total_time
            violations += bad
        n = len(seeds)
        return tt_first / n, total / n, violations

    serial_first, serial_total, serial_bad = sweep_point(1, 1)
    result.add(mode="serial", window=1, batch=1,
               time_to_first=serial_first, total_time=serial_total,
               speedup_vs_serial=1.0, violations=serial_bad)
    for window in (2, 4, 8, 16):
        first, total, bad = sweep_point(window, 4)
        result.add(mode="window-sweep", window=window, batch=4,
                   time_to_first=first, total_time=total,
                   speedup_vs_serial=serial_total / total, violations=bad)
    for batch in (1, 2, 8):
        first, total, bad = sweep_point(8, batch)
        result.add(mode="batch-sweep", window=8, batch=batch,
                   time_to_first=first, total_time=total,
                   speedup_vs_serial=serial_total / total, violations=bad)
    return result
