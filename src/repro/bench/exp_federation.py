"""E11 — federated queries over independent repositories.

"there is no global consistency requirement that must be upheld across
a set of information repositories" — so composition should be free:
a union of weak sets over two repositories needs no coordination, and
the failure of one repository costs exactly that repository's answers.

We build two catalogs with a configurable overlap, fail one of them,
and compare three query plans: single-repository, federated with the
skip-on-failure policy, and federated with the fail-on-failure policy.
"""

from __future__ import annotations

from ..net.fabric import Network
from ..net.link import FixedLatency
from ..net.topology import full_mesh
from ..sim.kernel import Kernel
from ..spec import Returned
from ..store.world import World
from ..weaksets import DynamicSet, union
from .report import ExperimentResult

__all__ = ["run_federation"]


def _build(seed: int, overlap: int, per_repo: int):
    kernel = Kernel(seed=seed)
    nodes = ["client", "a0", "a1", "b0", "b1"]
    net = Network(kernel, full_mesh(nodes, FixedLatency(0.02)))
    world = World(net)
    world.create_collection("repo-a", primary="a0")
    world.create_collection("repo-b", primary="b0")
    for i in range(per_repo):
        world.seed_member("repo-a", f"a-only-{i}", value=i, home=f"a{i % 2}")
        world.seed_member("repo-b", f"b-only-{i}", value=i, home=f"b{i % 2}")
    for i in range(overlap):
        world.seed_member("repo-a", f"shared-{i}", value=i, home="a1")
        world.seed_member("repo-b", f"shared-{i}", value=i, home="b1")
    return kernel, net, world


def run_federation(per_repo: int = 8, overlap: int = 4,
                   seed: int = 0) -> ExperimentResult:
    """E11: answers and success per query plan, with repo B failed."""
    result = ExperimentResult(
        "E11", f"Federated search ({per_repo} unique/repo + {overlap} shared; "
               "repo B's hosts down)",
        columns=["plan", "success", "answers", "dups_suppressed",
                 "total_time"],
        notes="union-skip degrades gracefully to exactly repo A's view; "
              "union-fail inherits the strong all-or-nothing brittleness",
    )
    plans = (
        ("repo A only", ["repo-a"], "skip"),
        ("union (skip failures)", ["repo-a", "repo-b"], "skip"),
        ("union (fail on failure)", ["repo-a", "repo-b"], "fail"),
    )
    for plan_name, repos, policy in plans:
        kernel, net, world = _build(seed, overlap, per_repo)
        net.crash("b0")
        net.crash("b1")
        sets = [DynamicSet(world, "client", r, give_up_after=1.5, record=False)
                for r in repos]
        u = union(*sets, on_failure=policy)

        def proc():
            return (yield from u.drain())

        drained = kernel.run_process(proc())
        result.add(
            plan=plan_name,
            success=isinstance(drained.outcome, Returned),
            answers=len(drained.yields),
            dups_suppressed=u.duplicates_suppressed,
            total_time=drained.total_time,
        )
    # healthy-world reference: full federation with dedup
    kernel, net, world = _build(seed, overlap, per_repo)
    sets = [DynamicSet(world, "client", r, record=False)
            for r in ("repo-a", "repo-b")]
    u = union(*sets)

    def proc_healthy():
        return (yield from u.drain())

    drained = kernel.run_process(proc_healthy())
    result.add(
        plan="union (healthy world)",
        success=isinstance(drained.outcome, Returned),
        answers=len(drained.yields),
        dups_suppressed=u.duplicates_suppressed,
        total_time=drained.total_time,
    )
    return result
