"""Run experiments and gate regressions: ``python -m repro.bench``.

Usage::

    python -m repro.bench                     # all experiments, ASCII tables
    python -m repro.bench E1 E4               # a subset
    python -m repro.bench --markdown E8       # markdown tables (EXPERIMENTS.md)
    python -m repro.bench --obs BENCH_obs.json E16 E17
                                              # also write the BENCH_obs artifact
    python -m repro.bench compare old.json new.json --tolerance 0.1
                                              # regression gate over two artifacts
                                              # (--warn-only, --ignore key[,key…])
"""

from __future__ import annotations

import sys
import time
from typing import Optional

from . import ALL_EXPERIMENTS
from .artifact import write_artifact
from .compare import main as compare_main
from .report import ExperimentResult


def main(argv: list[str]) -> int:
    if argv and argv[0] == "compare":
        return compare_main(argv[1:])
    markdown = False
    obs_path: Optional[str] = None
    ids: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg in ("--markdown", "-m"):
            markdown = True
        elif arg == "--obs":
            obs_path = next(it, None)
            if obs_path is None:
                print("--obs needs a path", file=sys.stderr)
                return 2
        elif arg.startswith("--obs="):
            obs_path = arg.split("=", 1)[1]
        elif arg in ("--help", "-h"):
            print(__doc__)
            print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
            return 0
        else:
            ids.append(arg.upper())
    wanted = ids or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; "
              f"known: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    records: list[dict] = []
    for eid in wanted:
        started = time.perf_counter()
        result: ExperimentResult = ALL_EXPERIMENTS[eid]()
        elapsed = time.perf_counter() - started
        if markdown:
            print(result.to_markdown())
        else:
            print(result)
            print(f"  ({elapsed:.2f}s wall clock)")
        print()
        record = result.to_obs()
        record["elapsed_wall_s"] = elapsed
        records.append(record)
    if obs_path is not None:
        path = write_artifact(obs_path, records,
                              meta={"source": "python -m repro.bench",
                                    "experiments": wanted})
        print(f"wrote {path} ({len(records)} experiments)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
