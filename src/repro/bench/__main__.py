"""Run every experiment and print its table: ``python -m repro.bench``.

Usage::

    python -m repro.bench                # all experiments, ASCII tables
    python -m repro.bench E1 E4          # a subset
    python -m repro.bench --markdown E8  # markdown tables (EXPERIMENTS.md)
"""

from __future__ import annotations

import sys
import time

from . import ALL_EXPERIMENTS


def main(argv: list[str]) -> int:
    markdown = False
    ids: list[str] = []
    for arg in argv:
        if arg in ("--markdown", "-m"):
            markdown = True
        elif arg in ("--help", "-h"):
            print(__doc__)
            print(f"experiments: {', '.join(ALL_EXPERIMENTS)}")
            return 0
        else:
            ids.append(arg.upper())
    wanted = ids or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {unknown}; "
              f"known: {list(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    for eid in wanted:
        started = time.perf_counter()
        result = ALL_EXPERIMENTS[eid]()
        elapsed = time.perf_counter() - started
        if markdown:
            print(result.to_markdown())
        else:
            print(result)
            print(f"  ({elapsed:.2f}s wall clock)")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
