"""E7 — the three motivating queries, end-to-end, under failures.

WWW ``.face`` display, LIS author search, restaurant-menu browse — each
run with the dynamic-sets semantics and with the strong baseline, on a
world with background node churn.  The paper's claim: the weak query
returns the full reachable answer despite failures, while the strong
one fails or pays heavily.
"""

from __future__ import annotations

from ..net.failures import FaultPlan
from ..spec import Returned
from ..wan import build_faces, build_library, build_restaurants
from ..weaksets import install_lock_service, make_weak_set, select
from .report import ExperimentResult

__all__ = ["run_motivating"]


def _plan() -> FaultPlan:
    return FaultPlan(crash_rate=0.01, isolate_rate=0.01, mean_downtime=1.5,
                     protected=frozenset({"client", "n0.0"}))


def _run_query(workload, coll_id, semantics, predicate=None, seed_kwargs=None):
    world = workload.world
    kernel = workload.kernel
    install_lock_service(world, "n0.0")
    kwargs = dict(seed_kwargs or {})
    ws = make_weak_set(world, "client", coll_id, semantics,
                       record=False, **kwargs)
    if predicate is not None:
        runner = select(ws, predicate)
    else:
        runner = ws.elements()

    def proc():
        return (yield from runner.drain())

    result = kernel.run_process(proc())
    if workload.scenario.injector is not None:
        workload.scenario.injector.stop()
    return result


def run_motivating(seed: int = 0) -> ExperimentResult:
    """E7: success, answers, and latency for each §1 query × semantics."""
    result = ExperimentResult(
        "E7", "The paper's motivating queries under failures (§1)",
        columns=["query", "semantics", "success", "answers",
                 "time_to_first", "total_time"],
        notes="dynamic completes with the full answer (waiting out "
              "failures); strong aborts when anything is unreachable",
    )
    plan = _plan()
    cases = []

    faces_dyn = build_faces(seed=seed, n_people=30, fault_plan=plan)
    cases.append(("WWW .face display", faces_dyn, "cmu-home-page",
                  "dynamic", None))
    faces_strong = build_faces(seed=seed, n_people=30, fault_plan=plan)
    cases.append(("WWW .face display", faces_strong, "cmu-home-page",
                  "strong", None))

    lib_dyn = build_library(seed=seed, n_entries=40, fault_plan=plan)
    cases.append(("LIS papers by author", lib_dyn, "lis-catalog", "dynamic",
                  lambda e, v: v is not None and v.author == "wing"))
    lib_strong = build_library(seed=seed, n_entries=40, fault_plan=plan)
    cases.append(("LIS papers by author", lib_strong, "lis-catalog", "strong",
                  lambda e, v: v is not None and v.author == "wing"))

    rest_dyn = build_restaurants(seed=seed, n_restaurants=24, fault_plan=plan)
    cases.append(("Chinese restaurant menus", rest_dyn, "pgh-restaurants",
                  "dynamic",
                  lambda e, v: v is not None and v.cuisine == "chinese"))
    rest_strong = build_restaurants(seed=seed, n_restaurants=24,
                                    fault_plan=plan)
    cases.append(("Chinese restaurant menus", rest_strong, "pgh-restaurants",
                  "strong",
                  lambda e, v: v is not None and v.cuisine == "chinese"))

    for query_name, workload, coll_id, semantics, predicate in cases:
        drained = _run_query(workload, coll_id, semantics, predicate)
        result.add(
            query=query_name,
            semantics=semantics,
            success=isinstance(drained.outcome, Returned),
            answers=len(drained.yields),
            time_to_first=drained.time_to_first,
            total_time=drained.total_time,
        )
    return result
