"""The evaluation harness: experiments E1–E25 (see DESIGN.md §5).

Each ``run_*`` function builds its worlds, runs the simulation, and
returns an :class:`~repro.bench.report.ExperimentResult` whose ``str()``
is the table recorded in EXPERIMENTS.md.  The ``benchmarks/`` directory
wraps each one in a pytest-benchmark target with shape assertions.
"""

from .exp_availability import run_availability, run_availability_ablation
from .exp_conformance import IMPL_CASES, run_conformance_matrix
from .exp_disconnected import (
    run_disconnected,
    run_geo_flap,
    run_outbox_crash,
    run_reconcile_cost,
)
from .exp_federation import run_federation
from .exp_consistency import run_cache_ablation, run_staleness
from .exp_convergence import run_convergence
from .exp_detector import run_detector
from .exp_fetchpipe import run_fetchpipe
from .exp_ghosts import run_ghosts
from .exp_latency import (
    build_scattered_fs,
    run_early_exit,
    run_prefetch,
    run_time_to_first,
)
from .exp_locking import run_disconnection, run_lock_cost
from .exp_motivating import run_motivating
from .exp_obs import run_obs
from .exp_overload import run_overload
from .exp_population import run_kernel_throughput, run_population
from .exp_recovery import run_recovery
from .exp_resilience import run_resilience
from .exp_scale import run_scale
from .exp_sharding import run_sharding
from .exp_system import run_system
from .exp_wire import run_wire
from .exp_writepipe import run_writepipe
from .exp_static import PAPER_TAXONOMY, run_reachability, run_taxonomy
from .metrics import Summary, rate, summarize
from .report import ExperimentResult, format_kv, format_table

__all__ = [
    "ExperimentResult",
    "IMPL_CASES",
    "PAPER_TAXONOMY",
    "Summary",
    "build_scattered_fs",
    "format_kv",
    "format_table",
    "rate",
    "run_availability",
    "run_availability_ablation",
    "run_cache_ablation",
    "run_conformance_matrix",
    "run_convergence",
    "run_detector",
    "run_disconnected",
    "run_disconnection",
    "run_federation",
    "run_early_exit",
    "run_geo_flap",
    "run_fetchpipe",
    "run_kernel_throughput",
    "run_ghosts",
    "run_lock_cost",
    "run_motivating",
    "run_obs",
    "run_outbox_crash",
    "run_overload",
    "run_population",
    "run_prefetch",
    "run_reconcile_cost",
    "run_recovery",
    "run_resilience",
    "run_reachability",
    "run_scale",
    "run_sharding",
    "run_staleness",
    "run_system",
    "run_taxonomy",
    "run_time_to_first",
    "run_wire",
    "run_writepipe",
    "summarize",
]

ALL_EXPERIMENTS = {
    "E1": run_conformance_matrix,
    "E2": run_time_to_first,
    "E2a": run_early_exit,
    "E3": run_prefetch,
    "E4": run_availability,
    "E4a": run_availability_ablation,
    "E5": run_staleness,
    "E5a": run_cache_ablation,
    "E6": run_lock_cost,
    "E6b": run_disconnection,
    "E7": run_motivating,
    "E8": run_taxonomy,
    "E9": run_reachability,
    "E10": run_ghosts,
    "E11": run_federation,
    "E12": run_scale,
    "E13": run_system,
    "E14": run_convergence,
    "E15": run_detector,
    "E16": run_resilience,
    "E17": run_obs,
    "E18": run_recovery,
    "E19": run_fetchpipe,
    "E20": run_writepipe,
    "E21": run_disconnected,
    "E21a": run_reconcile_cost,
    "E21b": run_outbox_crash,
    "E21c": run_geo_flap,
    "E22": run_population,
    "E22a": run_kernel_throughput,
    "E23": run_overload,
    "E24": run_sharding,
    "E25": run_wire,
}
