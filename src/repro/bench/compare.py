"""The bench regression gate: diff two ``BENCH_obs.json`` artifacts.

``python -m repro.bench compare old.json new.json --tolerance 0.1``
compares every experiment's table, row by row and field by field:

* non-numeric fields (strings, booleans — variant names, ``spec_ok``
  flags) must match exactly: a flipped conformance bit is a regression
  at any tolerance;
* numeric fields may deviate by at most ``tolerance`` as a fraction of
  the old value (``|new - old| / |old|``); a value appearing where the
  baseline had 0 is treated as an unbounded deviation;
* wall-clock keys (``elapsed_wall_s`` and ``wall_ms`` by default) are
  ignored — the artifact's simulation numbers are seed-deterministic,
  wall time is not, and gating on CI-machine noise helps nobody.

Numeric deviations beyond tolerance are classified by the field's
*direction* (:func:`metric_direction`): a latency that shrank or a
speedup that grew is an **improvement**, not a regression.  Improvements
never fail the gate, but they are printed loudly — a baseline that keeps
reporting "you got faster" has rotted and should be regenerated so the
gate can catch the *next* regression from the new, better level.

Exit status: 0 clean, 1 regressions found (0 with ``--warn-only``),
2 usage/loading errors.  Experiments present only in the baseline are
regressions (coverage must not silently shrink); experiments only in
the new artifact are reported as info and pass.
"""

from __future__ import annotations

import numbers
from typing import Iterable

from .artifact import load_artifact

__all__ = ["compare_artifacts", "compare_files", "main",
           "metric_direction", "DEFAULT_IGNORED_KEYS",
           "EXPLICIT_DIRECTIONS"]

#: Machine-dependent keys never gated on.
DEFAULT_IGNORED_KEYS = frozenset({"elapsed_wall_s", "wall_ms"})

#: Substrings marking a field where *smaller* is better.
_LOWER_BETTER = ("time", "latency", "cost", "staleness", "lag", "viol",
                 "ghost", "dangling", "orphan", "message", "bytes", "rpc",
                 "failure", "retries", "blocked", "abort", "miss",
                 "p50", "p95", "p99")
#: Substrings marking a field where *larger* is better.
_HIGHER_BETTER = ("speedup", "yield", "ok", "hit", "completion", "throughput",
                  "avail", "acked", "healed", "conform")

#: Exact metric names (and their dotted sub-families) with a declared
#: direction, checked before the substring heuristics.  The wire's
#: bytes family is registered explicitly so ``net.bytes_sent.object``
#: and friends gate lower-is-better by declaration, not by a substring
#: accident — and the codec's naive/compact ratio gates higher-is-better
#: even though "compact" matches no heuristic marker.
EXPLICIT_DIRECTIONS = {
    "net.bytes_sent": "lower",
    "net.bytes_received": "lower",
    "net.link.queue_delay": "lower",
    "bytes_sent": "lower",
    "bytes_received": "lower",
    "bytes_per_member": "lower",
    "queue_delay": "lower",
    "naive_over_compact": "higher",
}


def metric_direction(key: str) -> str:
    """Which way a numeric field is allowed to move and still be good.

    Returns ``"lower"`` (smaller is better), ``"higher"`` (larger is
    better), or ``"neutral"`` (no idea — any out-of-tolerance move is a
    regression, the conservative default).  Exact names in
    :data:`EXPLICIT_DIRECTIONS` win (a dotted prefix match covers
    per-family counters like ``net.bytes_sent.membership``); otherwise
    matching is on substrings of the lowercased key, lower-better
    first: ``viol`` in a name trumps ``speedup`` because a violation
    count must never be read as good.
    """
    lowered = key.lower()
    for name, direction in EXPLICIT_DIRECTIONS.items():
        if lowered == name or lowered.startswith(name + "."):
            return direction
    if any(mark in lowered for mark in _LOWER_BETTER):
        return "lower"
    if any(mark in lowered for mark in _HIGHER_BETTER):
        return "higher"
    return "neutral"


def _is_number(value) -> bool:
    return isinstance(value, numbers.Real) and not isinstance(value, bool)


def _deviation(old: float, new: float) -> float:
    """Relative deviation of ``new`` from ``old`` (inf when 0 → nonzero)."""
    if old == new:
        return 0.0
    if old == 0:
        return float("inf")
    return abs(new - old) / abs(old)


def compare_rows(exp_id: str, index: int, old_row: dict, new_row: dict,
                 tolerance: float, ignore: frozenset[str],
                 regressions: list[str],
                 improvements: list[str] | None = None) -> None:
    for key in old_row:
        if key in ignore:
            continue
        if key not in new_row:
            regressions.append(
                f"{exp_id} row {index}: field {key!r} disappeared")
            continue
        old_value, new_value = old_row[key], new_row[key]
        if _is_number(old_value) and _is_number(new_value):
            deviation = _deviation(old_value, new_value)
            if deviation > tolerance:
                direction = metric_direction(key)
                got_better = (
                    (direction == "lower" and new_value < old_value)
                    or (direction == "higher" and new_value > old_value))
                message = (
                    f"{exp_id} row {index}: {key} {old_value} -> {new_value} "
                    f"(deviation {deviation:.1%} > tolerance {tolerance:.1%})")
                if got_better and improvements is not None:
                    improvements.append(message)
                else:
                    regressions.append(message)
        elif old_value != new_value:
            regressions.append(
                f"{exp_id} row {index}: {key} {old_value!r} -> {new_value!r}")


def compare_artifacts(old: dict, new: dict, tolerance: float = 0.1,
                      ignore: Iterable[str] = DEFAULT_IGNORED_KEYS,
                      ) -> tuple[list[str], list[str], list[str]]:
    """Diff two artifacts; returns (regressions, improvements, info).

    Regressions fail the gate.  Improvements — numeric fields that moved
    beyond tolerance in their *good* direction (see
    :func:`metric_direction`) — pass it, but signal the baseline has
    rotted and should be regenerated.
    """
    ignored = frozenset(ignore)
    regressions: list[str] = []
    improvements: list[str] = []
    info: list[str] = []
    old_experiments = {e["id"]: e for e in old.get("experiments", [])}
    new_experiments = {e["id"]: e for e in new.get("experiments", [])}
    for exp_id, old_exp in old_experiments.items():
        new_exp = new_experiments.get(exp_id)
        if new_exp is None:
            regressions.append(f"{exp_id}: present in baseline, missing in new run")
            continue
        old_rows, new_rows = old_exp.get("rows", []), new_exp.get("rows", [])
        if len(old_rows) != len(new_rows):
            regressions.append(
                f"{exp_id}: row count {len(old_rows)} -> {len(new_rows)}")
            continue
        for index, (old_row, new_row) in enumerate(zip(old_rows, new_rows)):
            compare_rows(exp_id, index, old_row, new_row, tolerance,
                         ignored, regressions, improvements)
    for exp_id in new_experiments:
        if exp_id not in old_experiments:
            info.append(f"{exp_id}: new experiment (not in baseline), skipped")
    return regressions, improvements, info


def compare_files(old_path: str, new_path: str, tolerance: float = 0.1,
                  ignore: Iterable[str] = DEFAULT_IGNORED_KEYS,
                  ) -> tuple[list[str], list[str], list[str]]:
    return compare_artifacts(load_artifact(old_path), load_artifact(new_path),
                             tolerance=tolerance, ignore=ignore)


def main(argv: list[str]) -> int:
    """``python -m repro.bench compare OLD NEW [--tolerance F]
    [--warn-only] [--ignore key[,key…]]``."""
    tolerance = 0.1
    warn_only = False
    ignore = set(DEFAULT_IGNORED_KEYS)
    paths: list[str] = []
    it = iter(argv)
    for arg in it:
        if arg == "--tolerance":
            value = next(it, None)
            if value is None:
                print("--tolerance needs a value", flush=True)
                return 2
            tolerance = float(value)
        elif arg.startswith("--tolerance="):
            tolerance = float(arg.split("=", 1)[1])
        elif arg == "--warn-only":
            warn_only = True
        elif arg == "--ignore":
            value = next(it, None)
            if value is None:
                print("--ignore needs a value", flush=True)
                return 2
            ignore.update(k for k in value.split(",") if k)
        elif arg.startswith("--ignore="):
            ignore.update(k for k in arg.split("=", 1)[1].split(",") if k)
        elif arg.startswith("-"):
            print(f"unknown compare option {arg!r}", flush=True)
            return 2
        else:
            paths.append(arg)
    if len(paths) != 2 or tolerance < 0:
        print("usage: python -m repro.bench compare OLD.json NEW.json "
              "[--tolerance F] [--warn-only] [--ignore key[,key…]]",
              flush=True)
        return 2
    try:
        regressions, improvements, info = compare_files(
            paths[0], paths[1], tolerance=tolerance, ignore=ignore)
    except (OSError, ValueError) as exc:
        print(f"compare: {exc}", flush=True)
        return 2
    for note in info:
        print(f"note: {note}")
    if improvements:
        print(f"IMPROVED: {len(improvements)} metric(s) beat the baseline "
              f"beyond tolerance {tolerance:.1%} — regenerate the baseline "
              f"so the gate tracks the new level")
        for improvement in improvements:
            print(f"  {improvement}")
    if regressions:
        verdict = "WARN" if warn_only else "FAIL"
        print(f"{verdict}: {len(regressions)} regression(s) beyond "
              f"tolerance {tolerance:.1%}")
        for regression in regressions:
            print(f"  {regression}")
        return 0 if warn_only else 1
    if improvements:
        print("OK: no regressions (improvements noted above)")
    else:
        print(f"OK: artifacts agree within tolerance {tolerance:.1%}")
    return 0
