"""E12 — scale sweep: simulated cost and message traffic vs system size.

Not a claim from the paper, but the sanity check any systems evaluation
owes its readers: how do the implementations' costs *scale*?  We sweep
the set size at fixed topology and report, per semantics, the simulated
completion time, messages sent, and messages per member — the last is
the per-element protocol overhead, which should be flat (O(1) per
member) for every design point.
"""

from __future__ import annotations

import time
from typing import Iterable

from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, GrowOnlySet, SnapshotSet, StrongSet, install_lock_service
from .report import ExperimentResult

__all__ = ["run_scale"]

_IMPLS = (
    ("strong", StrongSet),
    ("fig4 snapshot", SnapshotSet),
    ("fig5 grow-only", GrowOnlySet),
    ("fig6 dynamic", DynamicSet),
)


def run_scale(sizes: Iterable[int] = (20, 80, 320),
              seed: int = 0) -> ExperimentResult:
    """E12: simulated time and message counts across set sizes."""
    result = ExperimentResult(
        "E12", "Scale sweep: cost vs set size (fixed 4x3 WAN topology)",
        columns=["members", "impl", "sim_time", "messages",
                 "msgs_per_member", "wall_ms"],
        notes="messages/member is the per-element protocol overhead; "
              "flat means O(1) per member for every design point",
    )
    for size in sizes:
        for impl_name, cls in _IMPLS:
            policy = cls.expected_policy or "any"
            spec = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=size,
                                policy=policy)
            scenario = build_scenario(spec, seed=seed)
            install_lock_service(scenario.world, spec.primary)
            ws = cls(scenario.world, scenario.client, spec.coll_id,
                     record=False)
            iterator = ws.elements()

            def proc():
                return (yield from iterator.drain())

            wall_start = time.perf_counter()
            drained = scenario.kernel.run_process(proc())
            wall_ms = (time.perf_counter() - wall_start) * 1000.0
            messages = scenario.net.transport.stats.total_sent
            result.add(
                members=size,
                impl=impl_name,
                sim_time=drained.total_time,
                messages=messages,
                msgs_per_member=messages / size,
                wall_ms=wall_ms,
            )
    return result
