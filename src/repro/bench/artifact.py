"""The ``BENCH_obs.json`` artifact: one schema for every bench run.

Both entry points into the evaluation emit the same shape —

* ``python -m repro.bench --obs BENCH_obs.json E1 E16 …`` writes it
  directly, and
* a pytest run of ``benchmarks/`` collects every experiment result a
  ``bench_*.py`` registers via :func:`record_result` and (when
  ``REPRO_BENCH_OBS`` names a path) writes it at session end — the CI
  bench-smoke job's artifact.

The schema (version ``repro.bench_obs/1``)::

    {
      "schema": "repro.bench_obs/1",
      "meta": {...},                       # free-form run metadata
      "experiments": [
        {"id": "E16", "title": "...", "columns": [...],
         "rows": [{...}, ...], "notes": "...",
         "elapsed_wall_s": 1.23}           # optional, never gated on
      ]
    }

Rows are the experiment's own table — seeded simulation numbers, so a
given (code, seed) produces identical artifacts on any machine.  That
determinism is what lets ``python -m repro.bench compare`` (see
:mod:`repro.bench.compare`) gate regressions with a real tolerance
instead of hand-waving at CI noise; only ``elapsed_wall_s`` is
machine-dependent, and the comparator ignores it by default.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional, Union

from .report import ExperimentResult

__all__ = ["SCHEMA", "record_result", "recorded", "clear_recorded",
           "make_artifact", "write_artifact", "load_artifact"]

SCHEMA = "repro.bench_obs/1"

#: Experiment records registered by the current process's bench runs.
_RECORDS: list[dict] = []


def record_result(result: ExperimentResult,
                  elapsed_wall_s: Optional[float] = None,
                  metrics: Optional[dict[str, Any]] = None) -> dict:
    """Register one experiment result for the session artifact.

    ``metrics`` attaches a registry snapshot (or any JSON-safe mapping)
    when the caller has one; ``elapsed_wall_s`` is advisory only.
    Returns the record appended.
    """
    record = result.to_obs()
    if elapsed_wall_s is not None:
        record["elapsed_wall_s"] = elapsed_wall_s
    if metrics:
        record["metrics"] = dict(metrics)
    _RECORDS.append(record)
    return record


def recorded() -> list[dict]:
    return list(_RECORDS)


def clear_recorded() -> None:
    _RECORDS.clear()


def make_artifact(records: Optional[list[dict]] = None,
                  meta: Optional[dict[str, Any]] = None) -> dict:
    return {
        "schema": SCHEMA,
        "meta": dict(meta) if meta else {},
        "experiments": records if records is not None else recorded(),
    }


def write_artifact(path: Union[str, Path],
                   records: Optional[list[dict]] = None,
                   meta: Optional[dict[str, Any]] = None) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    artifact = make_artifact(records, meta)
    path.write_text(json.dumps(artifact, indent=2, sort_keys=True,
                               default=str) + "\n", encoding="utf-8")
    return path


def load_artifact(path: Union[str, Path]) -> dict:
    artifact = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = artifact.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, found {schema!r}"
        )
    if not isinstance(artifact.get("experiments"), list):
        raise ValueError(f"{path}: missing 'experiments' list")
    return artifact
