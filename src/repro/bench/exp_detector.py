"""E15 — characterizing the failure detector.

"We assume we can detect failures" is the paper's load-bearing
assumption; this experiment measures what a timeout-based detector
actually delivers: **detection latency** (crash → suspected), **recovery
latency** (repair → trusted again), and **false suspicions** on a lossy
network, swept over the suspicion threshold.  The classic trade-off
should appear: aggressive thresholds detect fast but mistrust healthy
nodes; conservative ones are accurate but slow.
"""

from __future__ import annotations

from typing import Iterable

from ..net.fabric import Network
from ..net.failure_detector import FailureDetector
from ..net.link import FixedLatency
from ..net.topology import full_mesh
from ..sim.kernel import Kernel
from .metrics import summarize
from .report import ExperimentResult

__all__ = ["run_detector"]


def _one_run(suspect_after: float, loss_rate: float, seed: int,
              crash_at: float = 10.0, recover_at: float = 20.0,
              horizon: float = 40.0):
    kernel = Kernel(seed=seed)
    nodes = ["home", "victim", "healthy"]
    topo = full_mesh(nodes, FixedLatency(0.01))
    for link in topo.links():
        link.loss_rate = loss_rate
    net = Network(kernel, topo, default_timeout=0.5)
    FailureDetector.install_ping(net, ["victim", "healthy"])
    detector = FailureDetector(net, "home", ["victim", "healthy"],
                               period=0.5, suspect_after=suspect_after,
                               rpc_timeout=0.3)
    detector.start()

    def schedule():
        from ..sim.events import Sleep
        yield Sleep(crash_at)
        net.crash("victim")
        yield Sleep(recover_at - crash_at)
        net.recover("victim")

    kernel.spawn(schedule(), daemon=True)
    kernel.run(until=horizon)

    # Reconstruct the suspected-state timeline per node; detection
    # latency is "crash → first moment the detector suspects" (zero if a
    # false suspicion already had the victim suspected at crash time).
    detect_latency = None
    recover_latency = None
    false_suspicions = 0
    victim_suspected_at_crash = False
    for t, node, suspected in detector.transitions:
        if node == "victim" and t < crash_at:
            victim_suspected_at_crash = suspected
            if suspected:
                false_suspicions += 1
        if (node == "victim" and suspected and crash_at <= t < recover_at
                and detect_latency is None):
            detect_latency = t - crash_at
        if (node == "victim" and not suspected and t >= recover_at
                and recover_latency is None):
            recover_latency = t - recover_at
        if node == "healthy" and suspected:
            false_suspicions += 1
    if detect_latency is None and victim_suspected_at_crash:
        detect_latency = 0.0
    return detect_latency, recover_latency, false_suspicions


def run_detector(thresholds: Iterable[float] = (0.8, 1.5, 3.0, 6.0),
                 loss_rate: float = 0.15,
                 runs_per_point: int = 5) -> ExperimentResult:
    """E15: detection/recovery latency and false suspicions vs threshold."""
    result = ExperimentResult(
        "E15", f"Failure detector characterization (lossy links, "
               f"loss={loss_rate})",
        columns=["suspect_after", "mean_detect_latency",
                 "mean_recover_latency", "false_suspicions_total"],
        notes="aggressive thresholds detect crashes fast but mistrust "
              "healthy nodes on a lossy network; conservative ones are "
              "slow but sure",
    )
    for threshold in thresholds:
        detects, recovers, false_total = [], [], 0
        for seed in range(runs_per_point):
            d, r, f = _one_run(threshold, loss_rate, seed)
            if d is not None:
                detects.append(d)
            if r is not None:
                recovers.append(r)
            false_total += f
        d_summary = summarize(detects)
        r_summary = summarize(recovers)
        result.add(
            suspect_after=threshold,
            mean_detect_latency=d_summary.mean if d_summary else float("nan"),
            mean_recover_latency=r_summary.mean if r_summary else float("nan"),
            false_suspicions_total=false_total,
        )
    return result
