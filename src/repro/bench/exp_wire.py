"""E25 — the real wire: codec bytes, bandwidth, and byte-aware batching.

Until now the network charged latency but moved weightless messages.
:mod:`repro.net.wire` gives every RPC a size (compact tag-dispatched
binary codec vs the naive pickle-the-envelope baseline) and every link
a finite bandwidth with a FIFO transmission queue.  E25 measures what
that buys and what it costs, on the standard fig6 drain workload:

* **codec leg** — compact vs naive bytes-on-wire for the same seeded
  drains.  The gated row is the metadata drain (``member_size=0``):
  the codec's whole job is envelope + membership metadata, and there
  compact must ship >= 4x fewer bytes.  The 2 KB-body row is the
  honesty row: declared object bytes are charged identically by both
  codecs, so the ratio shrinks toward 1 as bodies dominate — the codec
  does not pretend to compress payloads.
* **batch sweep** — batch size {1, 4, 16} on an unconstrained fabric
  vs the WAN preset (1.25 MB/s inter-cluster and access links).  With
  free links, bigger batches only amortize round-trips; once
  serialization + transmission cost is real, store-and-forward makes a
  32 KB multi-get reply pay every constrained hop serially, and the
  sweet spot shifts away from "as big as possible".
* **byte-cap leg** — ``max_batch_bytes`` on the fetch pipeline under
  the WAN preset: capping batches by bytes (keeping the item cap)
  must beat uncapped batching on drain throughput.
* **determinism leg** — the same seeded scenario drained twice must
  move byte-for-byte identical traffic.

Every drain is audited for fig6 conformance (plus one fig4 snapshot
audit under the WAN preset) and must report zero violations.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..spec import check_conformance, spec_by_id
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import DynamicSet, SnapshotSet
from .report import ExperimentResult

__all__ = ["run_wire"]

# The standard drain world: 4 clusters x 3, members scattered nearly
# uniformly (low skew) so fetches actually cross the constrained
# inter-cluster links, one membership replica so anti-entropy
# sync_delta traffic is on the wire too.
_BASE = ScenarioSpec(n_clusters=4, cluster_size=3, n_members=32,
                     policy="any", heavy_tail=False, replicas=1,
                     placement_skew=0.2)

# The heavy drain for the bandwidth legs: fewer, fatter homes (8 members
# per node, so the item cap actually binds) and 16 KB bodies (so a
# 16-item multi-get reply is 256 KB — real time on a 1.25 MB/s link).
_HEAVY = replace(_BASE, cluster_size=2, n_members=64, member_size=16384)


def _drain(spec: ScenarioSpec, seed: int, *, window: int = 8,
           batch: int = 4, max_bytes: Optional[int] = None,
           size_hint: Optional[int] = None, snapshot: bool = False) -> dict:
    """One seeded drain; returns timings, byte counters, violations."""
    scenario = build_scenario(spec, seed=seed)
    kwargs: dict = dict(fetch_window=window, fetch_batch=batch)
    if max_bytes is not None:
        kwargs.update(fetch_max_bytes=max_bytes, fetch_size_hint=size_hint)
    cls = SnapshotSet if snapshot else DynamicSet
    ws = cls(scenario.world, scenario.client, spec.coll_id, **kwargs)
    iterator = ws.elements()

    def proc():
        return (yield from iterator.drain())

    drained = scenario.kernel.run_process(proc())
    fig = "fig4" if snapshot else "fig6"
    report = check_conformance(ws.last_trace, spec_by_id(fig),
                               scenario.world)
    metrics = scenario.kernel.obs.metrics
    return {
        "time_to_first": drained.time_to_first,
        "total_time": drained.total_time,
        "yielded": len(drained.yields),
        "violations": 0 if report.conformant else 1,
        "bytes_sent": metrics.value("net.bytes_sent"),
        "object_bytes": metrics.value("net.bytes_sent.object"),
        "membership_bytes": metrics.value("net.bytes_sent.membership"),
        "sync_bytes": metrics.value("net.bytes_sent.sync"),
        "queue_delay_p95": _quantile(metrics, "net.link.queue_delay", 0.95),
    }


def _quantile(metrics, name: str, q: float) -> float:
    hist = metrics.get(name)
    return hist.quantile(q) if hist is not None and hist.count else 0.0


def run_wire(members: int = 32, seed: int = 0) -> ExperimentResult:
    """E25: bytes-on-wire, bandwidth-aware batching, byte-capped drains."""
    result = ExperimentResult(
        "E25", "The wire: compact codec bytes, WAN bandwidth, byte caps",
        columns=["mode", "codec", "link", "member_size", "batch",
                 "max_bytes", "bytes_sent", "bytes_per_member",
                 "naive_over_compact", "time_to_first", "total_time",
                 "throughput", "queue_p95", "violations"],
        notes="codec gate: compact ships >=4x fewer bytes than naive on "
              "the metadata drain (member_size=0); the 2KB-body row is "
              "the honesty row (declared payload bytes are charged "
              "identically, so the ratio shrinks as bodies dominate). "
              "Under the WAN preset byte-capped batching must beat "
              "uncapped on throughput, and byte counts are seed-"
              "deterministic. All drains audit fig6 (snapshot audit: "
              "fig4) with zero violations.",
    )
    base = replace(_BASE, n_members=members)

    # -- codec leg: compact vs naive bytes on the same drains ----------
    for member_size in (0, 2048):
        sized = replace(base, member_size=member_size)
        bytes_by_codec = {}
        for codec in ("compact", "naive"):
            r = _drain(replace(sized, codec=codec), seed)
            bytes_by_codec[codec] = r["bytes_sent"]
            result.add(mode="codec", codec=codec, link="free",
                       member_size=member_size, batch=4,
                       bytes_sent=r["bytes_sent"],
                       bytes_per_member=r["bytes_sent"] / members,
                       naive_over_compact=None,
                       time_to_first=r["time_to_first"],
                       total_time=r["total_time"],
                       violations=r["violations"])
        result.add(mode="codec-ratio", codec="naive/compact", link="free",
                   member_size=member_size,
                   naive_over_compact=(bytes_by_codec["naive"]
                                       / bytes_by_codec["compact"]),
                   violations=0)

    # -- batch sweep: the sweet spot moves once the wire is real -------
    for link in ("free", "wan"):
        preset = None if link == "free" else "wan"
        for batch in (1, 4, 16):
            spec = replace(_HEAVY, bandwidth_preset=preset)
            r = _drain(spec, seed, batch=batch)
            result.add(mode="batch-sweep", codec="compact", link=link,
                       member_size=_HEAVY.member_size, batch=batch,
                       bytes_sent=r["bytes_sent"],
                       time_to_first=r["time_to_first"],
                       total_time=r["total_time"],
                       throughput=_HEAVY.n_members / r["total_time"],
                       queue_p95=r["queue_delay_p95"],
                       violations=r["violations"])

    # -- byte-cap leg: capped vs uncapped under the WAN preset ---------
    wan = replace(_HEAVY, bandwidth_preset="wan")
    for max_bytes in (None, 3 * _HEAVY.member_size):
        r = _drain(wan, seed, batch=16, max_bytes=max_bytes,
                   size_hint=_HEAVY.member_size)
        result.add(mode="byte-cap", codec="compact", link="wan",
                   member_size=_HEAVY.member_size, batch=16,
                   max_bytes=max_bytes or 0,
                   bytes_sent=r["bytes_sent"],
                   time_to_first=r["time_to_first"],
                   total_time=r["total_time"],
                   throughput=_HEAVY.n_members / r["total_time"],
                   queue_p95=r["queue_delay_p95"],
                   violations=r["violations"])

    # -- fig4 audit: one snapshot drain on the constrained fabric ------
    r = _drain(wan, seed, snapshot=True)
    result.add(mode="fig4-audit", codec="compact", link="wan",
               member_size=_HEAVY.member_size, batch=4,
               bytes_sent=r["bytes_sent"], total_time=r["total_time"],
               violations=r["violations"])

    # -- determinism: same seed => byte-identical traffic --------------
    runs = [_drain(wan, seed)["bytes_sent"] for _ in range(2)]
    result.add(mode="determinism", codec="compact", link="wan",
               member_size=_HEAVY.member_size, batch=4,
               bytes_sent=runs[0],
               naive_over_compact=None,
               throughput=1.0 if runs[0] == runs[1] else 0.0,
               violations=0 if runs[0] == runs[1] else 1)
    return result
