"""E24 — sharded membership: throughput, conformance, rebalance.

The paper's collections have a single membership registry on one
primary — fine for "elements change infrequently", but the registry
becomes the write bottleneck the moment a population of writers shows
up (E22/E23 hit exactly that knee).  ``repro.store.sharding``
partitions the registry over a consistent-hash ring of shard servers;
E24 is the experiment that earns it:

* **throughput** — closed-loop writers slam membership registrations
  into worlds that differ *only* in shard count, at fixed per-server
  capacity (1 worker x 4 ms).  Registration capacity should scale with
  the ring: the 4-shard world must clear >= 2.5x the 1-shard world.
* **conformance** — the E1 matrix re-run on sharded collections (3
  shards + 2 mirror replicas), plus the quorum variant (per-shard
  majorities) and the strong baseline (per-shard locks in ring order):
  scatter-gather reads must leave every implementation conformant to
  its figure.
* **rebalance** — ``add_shard``/``remove_shard`` while churn writers
  keep mutating, over several seeds; some seeds crash the migration
  *target* mid-handoff and recover it later.  Gates: the coordinator
  finishes anyway, zero cross-component invariant violations, zero
  lost acked members, zero resurrected removals, and a scatter read
  agrees with ground truth exactly.

All quantities are virtual-time, seed-deterministic; the gates travel.
"""

from __future__ import annotations

import time
from typing import Generator, Iterable

from ..errors import FailureException
from ..net.executor import ExecutorPolicy
from ..net.failures import FaultSchedule
from ..net.resilience import ResilientClient
from ..sim.events import Fork, Join, Sleep
from ..spec import check_conformance, spec_by_id
from ..store.repository import Repository
from ..wan.workload import ScenarioSpec, build_scenario
from ..weaksets import (
    DynamicSet,
    Figure1Set,
    GrowOnlySet,
    ImmutableSet,
    PerRunGrowOnlySet,
    PerRunImmutableSet,
    QuorumGrowOnlySet,
    SnapshotSet,
    StrongSet,
    install_lock_services,
)
from .report import ExperimentResult

__all__ = ["run_sharding", "throughput_spec", "SHARD_COUNTS", "WRITERS",
           "ADDS_PER_WRITER", "SERVICE_TIME"]

#: Throughput-leg capacity: every server gets exactly one worker at
#: 4 ms per request, so a k-shard ring registers at most k/0.004 per
#: second no matter how hard the writers push.
SERVICE_TIME = 0.004
CONCURRENCY = 1
SHARD_COUNTS = (1, 2, 4)
WRITERS = 48
ADDS_PER_WRITER = 15


def throughput_spec(shards: int) -> ScenarioSpec:
    """The throughput world: only the ring size varies.

    Latencies are uniformly small so queueing at the shard servers —
    not WAN distance — is the measured quantity, and object homes go
    to non-shard slots so creation capacity never masks registration
    capacity.
    """
    return ScenarioSpec(
        n_clusters=4, cluster_size=3, n_members=0,
        shards=shards, replicas=0,
        service_time=SERVICE_TIME,
        intra_latency=0.002, inter_latency=0.002,
        executor=ExecutorPolicy(concurrency=CONCURRENCY, queue_limit=None),
    )


def _throughput_arm(shards: int, seed: int) -> tuple[int, float]:
    scenario = build_scenario(throughput_spec(shards), seed=seed)
    kernel, world = scenario.kernel, scenario.world
    repo = scenario.repo()
    coll = scenario.coll_id
    done = {"adds": 0}

    def writer(wid: int) -> Generator:
        for i in range(ADDS_PER_WRITER):
            # Homes round-robin over the 8 non-shard slots (slots 1-2
            # of each cluster), which the ring never contains.
            j = wid * ADDS_PER_WRITER + i
            home = f"n{j % 4}.{1 + (j // 4) % 2}"
            yield from repo.add(coll, f"w{wid:02d}-{i:03d}",
                                value=None, home=home, size=0)
            done["adds"] += 1

    def parent() -> Generator:
        children = []
        for wid in range(WRITERS):
            child = yield Fork(writer(wid), name=f"writer-{wid}")
            children.append(child)
        for child in children:
            yield Join(child)

    start = kernel.now
    kernel.run_process(parent())
    elapsed = kernel.now - start
    problems = world.check_invariants()
    if problems:  # pragma: no cover - the gate this leg carries
        raise AssertionError(f"invariant leak at {shards} shards: {problems}")
    return done["adds"], elapsed


# -- conformance leg ------------------------------------------------------

#: (impl id, class, policy, mutate, blip, judged-against figure).
#: The first seven mirror E1's matrix cases; quorum and strong are the
#: cross-shard read protocols the sharded store adds.
CONF_CASES = (
    ("figure1", Figure1Set, "immutable", "none", False, "fig1"),
    ("immutable", ImmutableSet, "immutable", "none", True, "fig3"),
    ("snapshot", SnapshotSet, "any", "churn", True, "fig4"),
    ("grow-only", GrowOnlySet, "grow-only", "grow", True, "fig5"),
    ("per-run-immutable", PerRunImmutableSet, "any", "none", False, "fig4"),
    ("per-run-grow-only", PerRunGrowOnlySet, "grow-during-run", "churn",
     True, "fig5"),
    ("dynamic", DynamicSet, "any", "churn", True, "fig6"),
    ("quorum", QuorumGrowOnlySet, "grow-only", "grow", True, "fig5"),
    ("strong", StrongSet, "any", "none", False, "fig4"),
)


def _conformance_case(case, seed: int) -> bool:
    impl_id, cls, policy, mutate, blip, figure = case
    spec = ScenarioSpec(n_clusters=4, cluster_size=2, n_members=10,
                        policy=policy, shards=3, replicas=2,
                        coll_id="coll")
    scenario = build_scenario(spec, seed=seed)
    world, kernel = scenario.world, scenario.kernel
    install_lock_services(world, "coll")
    ws = cls(world, scenario.client, "coll")
    iterator = ws.elements()

    def proc():
        first = yield from iterator.invoke()
        if mutate in ("grow", "churn"):
            yield from ws.repo.add("coll", "zz-mid-add", value="A")
        if mutate == "churn":
            victim = next(
                (e for e in scenario.elements if e != first.element), None)
            if victim is not None:
                yield from ws.repo.remove("coll", victim)
        if blip:
            # n1.1 is neither a shard nor a mirror in this layout: a
            # plain object host going dark mid-run, exactly E1's blip.
            scenario.net.isolate("n1.1")
            yield Sleep(0.3)
            scenario.net.rejoin("n1.1")
        yield from iterator.drain()

    kernel.run_process(proc())
    report = check_conformance(ws.last_trace, spec_by_id(figure), world)
    return report.conformant


# -- rebalance-under-churn leg --------------------------------------------

CHURN_WRITERS = 4
CHURN_OPS = 20


class _ChurnLedger:
    """Exactly what each churn writer attempted and what was acked."""

    def __init__(self):
        self.attempted_adds: set[str] = set()
        self.acked_adds: dict[str, object] = {}
        self.acked_removes: set[str] = set()
        self.attempted_removes: set[str] = set()
        self.failures = 0


def _churn_writer(repo: Repository, coll: str, wid: int,
                  ledger: _ChurnLedger) -> Generator:
    for i in range(CHURN_OPS):
        name = f"churn-{wid}-{i:03d}"
        ledger.attempted_adds.add(name)
        try:
            element = yield from repo.add(coll, name, value=None,
                                          home=f"n{(wid + i) % 4}.1", size=0)
            ledger.acked_adds[name] = element
        except FailureException:
            ledger.failures += 1
        if i % 3 == 2:
            victim_name = f"churn-{wid}-{i - 2:03d}"
            victim = ledger.acked_adds.get(victim_name)
            if victim is not None:
                ledger.attempted_removes.add(victim_name)
                try:
                    yield from repo.remove(coll, victim)
                    ledger.acked_removes.add(victim_name)
                except FailureException:
                    ledger.failures += 1
        yield Sleep(0.02)


def _rebalance_arm(seed: int, crash: bool):
    """One churn seed: grow the ring (and shrink it back, when the
    target is not being crashed) while writers keep writing."""
    spec = ScenarioSpec(n_clusters=4, cluster_size=2, n_members=30,
                        shards=3, replicas=0, coll_id="coll",
                        intra_latency=0.002, inter_latency=0.002)
    scenario = build_scenario(spec, seed=seed)
    world, kernel = scenario.world, scenario.kernel
    # Writers ride a resilient stack: freezes during handoff surface as
    # ServerBusyFailure hints and must be retried, not dropped.
    repo = Repository(world, scenario.client,
                      resilience=ResilientClient(scenario.net))
    ledger = _ChurnLedger()
    target = "n3.0"  # slot-major layout leaves n3.0 off the 3-node ring

    if crash:
        schedule = (FaultSchedule()
                    .crash_at(0.35, target)
                    .recover_at(1.6, target))
        kernel.spawn(schedule.run(scenario.net), name="fault-schedule",
                     daemon=True)

    def driver() -> Generator:
        children = []
        for wid in range(CHURN_WRITERS):
            child = yield Fork(_churn_writer(repo, "coll", wid, ledger),
                               name=f"churn-{wid}")
            children.append(child)
        yield Sleep(0.2)
        grow = world.add_shard("coll", target)
        yield Join(grow)
        if not crash:
            shrink = world.remove_shard("coll", "n1.0")
            yield Join(shrink)
        for child in children:
            yield Join(child)

    kernel.run_process(driver())
    # Settle: WAL replay, scrub, and mirror rounds after the dust.
    problems = ["not yet"]
    deadline = kernel.now + 60.0
    while problems and kernel.now < deadline:
        kernel.run(until=kernel.now + 1.0)
        problems = world.check_invariants()
    truth = {e.name for e in world.true_members("coll")}
    seeded = {e.name for e in scenario.elements}
    live_acked = {n for n in ledger.acked_adds
                  if n not in ledger.attempted_removes}
    lost = live_acked - truth
    resurrected = ledger.acked_removes & truth
    foreign = truth - seeded - ledger.attempted_adds

    def read_back():
        view = yield from repo.read_membership("coll", source="primary")
        return {e.name for e in view.members}

    scatter = kernel.run_process(read_back())
    smap = world.collections["coll"].shard_map
    return {
        "violations": len(problems),
        "lost": len(lost),
        "resurrected": len(resurrected),
        "foreign": len(foreign),
        "scatter_matches": scatter == truth,
        "acked_adds": len(ledger.acked_adds),
        "acked_removes": len(ledger.acked_removes),
        "failures": ledger.failures,
        "generation": smap.generation,
        "migration_done": smap.migration is None,
        "ring_size": len(smap.ring.nodes),
    }


def run_sharding(seed: int = 0, shard_counts: Iterable[int] = SHARD_COUNTS,
                 conf_seeds: Iterable[int] = range(3),
                 churn_seeds: Iterable[int] = range(3)) -> ExperimentResult:
    """E24: registration throughput vs ring size, the conformance
    matrix over scatter-gather reads, and rebalancing under churn."""
    t0 = time.perf_counter()
    shard_counts = list(shard_counts)
    conf_seeds = list(conf_seeds)
    churn_seeds = list(churn_seeds)
    result = ExperimentResult(
        "E24",
        "Sharded membership: consistent-hash registry partitioning, "
        f"fixed per-server capacity ({CONCURRENCY} worker x "
        f"{SERVICE_TIME * 1000:.0f} ms)",
        columns=["leg", "arm", "detail", "value"],
        notes="throughput in registrations per virtual second; "
              "conformance counts conforming seeds per impl against its "
              "own figure; rebalance rows gate invariant leaks, lost "
              "acked members, resurrected removals, and scatter-read "
              "agreement over add_shard/remove_shard (some seeds crash "
              "the migration target mid-handoff)",
    )
    metrics: dict[str, float] = {}

    throughput: dict[int, float] = {}
    for k in shard_counts:
        adds, elapsed = _throughput_arm(k, seed)
        rate = adds / elapsed if elapsed > 0 else 0.0
        throughput[k] = rate
        metrics[f"throughput.{k}_shard"] = round(rate, 1)
        result.add(leg="throughput", arm=f"{k}-shard",
                   detail=f"{adds} adds in {elapsed:.3f}s",
                   value=f"{rate:.0f}/s")
    base = min(shard_counts)
    for k in shard_counts:
        metrics[f"speedup.{k}_vs_{base}"] = round(
            throughput[k] / throughput[base], 2)
    result.add(leg="throughput", arm="speedup",
               detail=f"{max(shard_counts)}-shard vs {base}-shard",
               value=f"{metrics[f'speedup.{max(shard_counts)}_vs_{base}']}x")

    all_conformant = True
    for case in CONF_CASES:
        ok = sum(1 for s in conf_seeds if _conformance_case(case, s))
        all_conformant &= ok == len(conf_seeds)
        metrics[f"conformance.{case[0]}"] = ok
        result.add(leg="conformance", arm=case[0],
                   detail=f"vs {case[5]}, 3 shards + 2 mirrors",
                   value=f"{ok}/{len(conf_seeds)}")
    metrics["conformance.all"] = int(all_conformant)

    totals = {"violations": 0, "lost": 0, "resurrected": 0, "foreign": 0,
              "scatter_mismatch": 0, "incomplete": 0}
    for i, s in enumerate(churn_seeds):
        crash = i % 2 == 0  # alternate: crash legs and shrink legs
        r = _rebalance_arm(s, crash)
        totals["violations"] += r["violations"]
        totals["lost"] += r["lost"]
        totals["resurrected"] += r["resurrected"]
        totals["foreign"] += r["foreign"]
        totals["scatter_mismatch"] += int(not r["scatter_matches"])
        totals["incomplete"] += int(not r["migration_done"])
        result.add(leg="rebalance",
                   arm=f"seed{s}" + ("+crash" if crash else "+shrink"),
                   detail=(f"acked {r['acked_adds']}+/{r['acked_removes']}- "
                           f"fail {r['failures']} gen {r['generation']} "
                           f"ring {r['ring_size']}"),
                   value=(f"viol {r['violations']} lost {r['lost']} "
                          f"res {r['resurrected']} "
                          f"scatter {'ok' if r['scatter_matches'] else 'MISMATCH'}"))
    for key, total in totals.items():
        metrics[f"rebalance.{key}"] = total
    metrics["elapsed_wall_s"] = round(time.perf_counter() - t0, 3)
    result.sharding_metrics = metrics
    return result
