"""Plain-text tables for experiment output.

Every experiment prints through these helpers so EXPERIMENTS.md and the
benchmark logs show identical rows.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

__all__ = ["format_table", "format_kv", "ExperimentResult"]


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    if value is None:
        return "-"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]],
                 columns: Optional[Sequence[str]] = None,
                 title: str = "") -> str:
    """Render rows (dicts) as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(row.get(c)) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in cells)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(cols))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_kv(pairs: Mapping[str, Any], title: str = "") -> str:
    width = max(len(k) for k in pairs) if pairs else 0
    lines = [title] if title else []
    for k, v in pairs.items():
        lines.append(f"  {k.ljust(width)} : {_fmt(v)}")
    return "\n".join(lines)


def format_markdown(rows: Sequence[Mapping[str, Any]],
                    columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if not rows:
        return "*(empty)*"
    cols = list(columns) if columns else list(rows[0].keys())
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "|".join("---" for _ in cols) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_fmt(row.get(c)) for c in cols) + " |")
    return "\n".join(lines)


class ExperimentResult:
    """Rows + metadata for one experiment, printable as the paper table."""

    def __init__(self, experiment_id: str, title: str,
                 rows: Optional[list[dict]] = None,
                 columns: Optional[Sequence[str]] = None,
                 notes: str = ""):
        self.experiment_id = experiment_id
        self.title = title
        self.rows: list[dict] = rows if rows is not None else []
        self.columns = columns
        self.notes = notes

    def add(self, **fields: Any) -> None:
        self.rows.append(fields)

    def to_markdown(self) -> str:
        """The table as markdown, for pasting into EXPERIMENTS.md."""
        out = f"### {self.experiment_id} — {self.title}\n\n"
        out += format_markdown(self.rows, self.columns)
        if self.notes:
            out += f"\n\n*{self.notes}*"
        return out

    def to_obs(self) -> dict:
        """The experiment as a BENCH_obs record (JSON-safe; see
        ``docs/observability.md`` for the schema)."""
        return {
            "id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns) if self.columns else
                       (list(self.rows[0].keys()) if self.rows else []),
            "rows": [dict(row) for row in self.rows],
            "notes": self.notes,
        }

    def __str__(self) -> str:
        out = format_table(self.rows, self.columns,
                           title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            out += f"\n  note: {self.notes}"
        return out
