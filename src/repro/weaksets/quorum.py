"""The quorum variant of the pessimistic iterator (§3.3's aside).

"Alternatively, one could easily specify the iterator to use a quorum
or token-based scheme by changing the last line."

:class:`QuorumGrowOnlyIterator` changes exactly that: instead of
reading ``s_pre`` from the primary (a single point of failure), each
invocation reads membership from a **majority of the collection's
hosts** and takes the union of the views (for a grow-only set, the
union of any set of views is a *lower bound* on the true current
membership — growth is monotone, so merging stale views is safe and
never invents members).  The failure branch becomes: fail only when no
majority of hosts is reachable, or a known member is unreachable.

The availability ablation (E4a) shows what this buys: the plain Fig 5
iterator dies with its primary; the quorum variant keeps answering as
long as any majority is up.
"""

from __future__ import annotations

from typing import Any, Generator

from ..errors import FailureException
from ..store.elements import Element
from .base import WeakSet
from .grow_only import GrowOnlyIterator

__all__ = ["QuorumGrowOnlyIterator", "QuorumGrowOnlySet"]


class QuorumGrowOnlyIterator(GrowOnlyIterator):
    """Figure 5 with the last line changed: quorum reads of s_pre.

    The fetch pipeline runs with ``failover=True`` (a transport failure
    at the home diverts to replica copies, batched per replica host)
    and ``validation="none"``: a grow-only collection never removes
    members and objects are immutable, so a value fetched while its
    host *was* reachable stays valid no matter how connectivity churns
    before the pop — revalidating would only manufacture spurious
    unreachable verdicts for data already in hand.
    """

    impl_name = "quorum-grow-only"
    pipeline_validation = "none"
    pipeline_failover = True

    def _read_quorum(self) -> Generator[Any, Any, frozenset[Element]]:
        if self.repo.shard_map_of(self.coll_id) is not None:
            return (yield from self._read_sharded_quorum())
        hosts = self.repo.hosts_of(self.coll_id)
        needed = len(hosts) // 2 + 1
        merged: set[Element] = set()
        reached = 0
        last_error: FailureException = FailureException("no hosts")
        for host in hosts:
            try:
                view = yield from self.repo.read_membership(
                    self.coll_id, source=host)
                merged |= view.members
                reached += 1
                if reached >= needed and reached == len(hosts):
                    break
            except FailureException as exc:
                last_error = exc
        if reached < needed:
            raise FailureException(
                f"no quorum: reached {reached}/{len(hosts)} hosts of "
                f"{self.coll_id} (need {needed}); last error: {last_error}"
            )
        return frozenset(merged)

    def _read_sharded_quorum(self) -> Generator[Any, Any, frozenset[Element]]:
        """Per-shard majorities, unioned across shards.

        Each shard owns a disjoint key range, so a *collection* quorum
        is meaningless — a majority of all partitions could miss one
        shard entirely and silently drop its range.  Instead every shard
        must independently assemble a majority among its own copies (the
        shard itself plus each mirror replica); the union of per-shard
        unions is then a lower bound on true membership, by the same
        grow-only monotonicity argument as the flat case.  If any single
        shard cannot reach a majority, the whole read fails: a partial
        union would violate Figure 5's "yields every pre-existing,
        reachable member" obligation for the missing range.
        """
        smap = self.repo.shard_map_of(self.coll_id)
        merged: set[Element] = set()
        for shard in smap.shards:
            hosts = self.repo.shard_hosts(self.coll_id, shard)
            needed = len(hosts) // 2 + 1
            reached = 0
            last_error: FailureException = FailureException("no hosts")
            for host in hosts:
                try:
                    view = yield from self.repo.read_shard_membership(
                        self.coll_id, shard, host)
                    merged |= view.members
                    reached += 1
                except FailureException as exc:
                    last_error = exc
            if reached < needed:
                raise FailureException(
                    f"no quorum for shard {shard} of {self.coll_id}: reached "
                    f"{reached}/{len(hosts)} (need {needed}); "
                    f"last error: {last_error}"
                )
        return frozenset(merged)

    def _read_view(self) -> Generator[Any, Any, frozenset[Element]]:
        return (yield from self._read_quorum())


class QuorumGrowOnlySet(WeakSet):
    """Figure 5 semantics, quorum reads; needs ``replicas >= 2``.

    Conformance note: against ground truth, a quorum-union view may lag
    the primary's very latest additions (replica lag), so the variant
    conforms to Figure 5 in the same window sense as everything else —
    additions propagate within one anti-entropy round.
    """

    semantics = "fig5"
    iterator_cls = QuorumGrowOnlyIterator
    expected_policy = "grow-only"
