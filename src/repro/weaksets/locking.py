"""Distributed read/write locks.

"The more restrictive the specification, the harder it is to implement
efficiently in a distributed system.  For instance, preventing mutation
requires distributed locking …"

The :class:`LockService` lives on a collection's primary node and hands
out collection-level read/write locks over RPC.  It is intentionally
classical: multiple readers or one writer, wake-all on release, FIFO
fairness *not* guaranteed, and — by default — **no leases**: a client
that disconnects while holding a read lock blocks writers until it
comes back (§3.1's indefinite lock extension, measured in E6).  Passing
``lease`` enables expiry, the standard mitigation, as an ablation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..errors import FailureException, LockUnavailableFailure, SimulationError
from ..sim.events import Signal, Sleep, Wait
from ..store.repository import Repository
from ..store.world import World

__all__ = [
    "LockService",
    "LockClient",
    "install_lock_service",
    "install_lock_services",
    "acquire_collection_locks",
    "release_collection_locks",
]

_owner_ids = itertools.count(1)


@dataclass
class _LockState:
    readers: set[str] = field(default_factory=set)
    writer: Optional[str] = None
    waiters: list[Signal] = field(default_factory=list)
    expiries: dict[str, float] = field(default_factory=dict)
    waiting_writers: int = 0

    def grantable(self, mode: str, writer_priority: bool = False) -> bool:
        if mode == "read":
            if writer_priority and self.waiting_writers > 0:
                # a writer is parked: new readers queue behind it so a
                # steady reader stream cannot starve writers forever
                return False
            return self.writer is None
        if mode == "write":
            return self.writer is None and not self.readers
        raise SimulationError(f"unknown lock mode {mode!r}")

    def holders(self) -> set[str]:
        held = set(self.readers)
        if self.writer is not None:
            held.add(self.writer)
        return held


class LockService:
    """Collection-level read/write locks, hosted on one node."""

    SERVICE = "locks"

    def __init__(self, world: World, lease: Optional[float] = None,
                 writer_priority: bool = False):
        """
        Args:
            world: for virtual time and scheduling.
            lease: lock auto-expiry (None = locks never expire; §3.1's
                disconnection hazard in full).
            writer_priority: park new readers behind waiting writers,
                preventing a steady reader stream from starving writers
                (at the price of reduced read concurrency).
        """
        self.world = world
        self.lease = lease
        self.writer_priority = writer_priority
        self._locks: dict[str, _LockState] = {}
        self.max_wait_observed = 0.0
        self.grants = 0

    # -- RPC methods ----------------------------------------------------
    def acquire(self, coll_id: str, mode: str, owner: str,
                wait_timeout: Optional[float] = None) -> Generator[Any, Any, float]:
        """Block (in simulated time) until the lock is granted.

        Returns the time spent waiting.  Raises ``TimeoutFailure`` (via
        the Wait) if ``wait_timeout`` elapses first.
        """
        state = self._locks.setdefault(coll_id, _LockState())
        started = self.world.now
        self._expire_stale(state)
        is_waiting_writer = False
        try:
            while not state.grantable(mode, self.writer_priority):
                if mode == "write" and not is_waiting_writer:
                    is_waiting_writer = True
                    state.waiting_writers += 1
                signal = Signal(name=f"lock:{coll_id}")
                state.waiters.append(signal)
                remaining = None
                if wait_timeout is not None:
                    elapsed = self.world.now - started
                    remaining = max(0.0, wait_timeout - elapsed)
                    if remaining == 0.0:
                        raise LockUnavailableFailure(
                            f"{mode} lock on {coll_id} not granted within {wait_timeout}s"
                        )
                yield Wait(signal, timeout=remaining)
                self._expire_stale(state)
        finally:
            if is_waiting_writer:
                state.waiting_writers -= 1
        if mode == "read":
            state.readers.add(owner)
        else:
            state.writer = owner
        if self.lease is not None:
            state.expiries[owner] = self.world.now + self.lease
            # Without this wake-up, a lease expiring while everyone is
            # parked would go unnoticed until the next release.
            self.world.kernel.call_soon(
                lambda: self._on_lease_expiry(coll_id), delay=self.lease + 1e-6
            )
        self.grants += 1
        waited = self.world.now - started
        self.max_wait_observed = max(self.max_wait_observed, waited)
        return waited

    def release(self, coll_id: str, mode: str, owner: str) -> Generator[Any, Any, bool]:
        yield Sleep(0.0)
        state = self._locks.get(coll_id)
        if state is None:
            return False
        released = self._drop(state, mode, owner)
        self._wake(state)
        return released

    def holders(self, coll_id: str) -> list[str]:
        state = self._locks.get(coll_id)
        return sorted(state.holders()) if state else []

    # -- internals ----------------------------------------------------------
    def _drop(self, state: _LockState, mode: str, owner: str) -> bool:
        state.expiries.pop(owner, None)
        if mode == "read":
            if owner in state.readers:
                state.readers.discard(owner)
                return True
            return False
        if state.writer == owner:
            state.writer = None
            return True
        return False

    def _wake(self, state: _LockState) -> None:
        waiters, state.waiters = state.waiters, []
        for signal in waiters:
            if not signal.fired:
                signal.fire(None)

    def _on_lease_expiry(self, coll_id: str) -> None:
        state = self._locks.get(coll_id)
        if state is not None:
            self._expire_stale(state)
            self._wake(state)

    def _expire_stale(self, state: _LockState) -> None:
        if self.lease is None:
            return
        now = self.world.now
        for owner, deadline in list(state.expiries.items()):
            if now > deadline:
                state.expiries.pop(owner, None)
                state.readers.discard(owner)
                if state.writer == owner:
                    state.writer = None


def install_lock_service(world: World, node: str,
                         lease: Optional[float] = None,
                         writer_priority: bool = False) -> LockService:
    """Register a :class:`LockService` on ``node`` and return it."""
    service = LockService(world, lease=lease, writer_priority=writer_priority)
    world.net.register_service(node, LockService.SERVICE, service)
    return service


def install_lock_services(world: World, coll_id: str,
                          lease: Optional[float] = None,
                          writer_priority: bool = False) -> dict[str, LockService]:
    """Install one :class:`LockService` per lock node of ``coll_id``.

    For an unsharded collection this is just the primary; for a sharded
    one, every shard hosts the lock over its own key range.  Nodes that
    already expose a lock service are left untouched.
    """
    services: dict[str, LockService] = {}
    for node in world.collections[coll_id].shards:
        existing = world.net.node(node).services.get(LockService.SERVICE)
        if existing is None:
            existing = install_lock_service(
                world, node, lease=lease, writer_priority=writer_priority
            )
        services[node] = existing
    return services


class LockClient:
    """Client-side handle for one lock on one collection."""

    def __init__(self, repo: Repository, coll_id: str, node: Optional[str] = None):
        """``node`` pins the lock service host; default is the collection
        primary (correct for unsharded collections — sharded ones need one
        lock per shard, see :func:`acquire_collection_locks`)."""
        self.repo = repo
        self.coll_id = coll_id
        self.node = node
        self.owner = f"{repo.client}#{next(_owner_ids)}"
        self.mode: Optional[str] = None

    @property
    def _lock_node(self) -> str:
        if self.node is not None:
            return self.node
        return self.repo.primary_of(self.coll_id)

    def acquire(self, mode: str, wait_timeout: Optional[float] = None,
                rpc_timeout: Optional[float] = None) -> Generator[Any, Any, float]:
        """Acquire; returns simulated seconds spent waiting for the grant."""
        waited = yield from self.repo.net.call(
            self.repo.client, self._lock_node, LockService.SERVICE, "acquire",
            self.coll_id, mode, self.owner, wait_timeout,
            timeout=rpc_timeout if rpc_timeout is not None else float("inf"),
        )
        self.mode = mode
        return waited

    def release(self) -> Generator[Any, Any, None]:
        if self.mode is None:
            return
        mode, self.mode = self.mode, None
        yield from self.repo.net.call(
            self.repo.client, self._lock_node, LockService.SERVICE, "release",
            self.coll_id, mode, self.owner,
        )

    def release_quietly(self) -> Generator[Any, Any, None]:
        """Release, swallowing failures (used on iterator teardown)."""
        try:
            yield from self.release()
        except FailureException:
            pass


def acquire_collection_locks(
    repo: Repository, coll_id: str, mode: str,
    wait_timeout: Optional[float] = None,
    rpc_timeout: Optional[float] = None,
) -> Generator[Any, Any, list[LockClient]]:
    """Acquire ``mode`` locks covering the whole collection.

    Unsharded collections need one lock (on the primary); sharded ones
    need one per shard, each guarding its own key range.  Locks are
    taken in *ring order* — every client walks the shards in the same
    deterministic sequence, so two pessimistic writers cannot deadlock
    by grabbing shards in opposite orders.  On any failure the locks
    already held are rolled back (in reverse) before the exception
    propagates.
    """
    held: list[LockClient] = []
    try:
        for node in repo.lock_nodes(coll_id):
            lock = LockClient(repo, coll_id, node=node)
            yield from lock.acquire(mode, wait_timeout=wait_timeout,
                                    rpc_timeout=rpc_timeout)
            held.append(lock)
    except BaseException:
        yield from release_collection_locks(held, quiet=True)
        raise
    return held


def release_collection_locks(locks, quiet: bool = False) -> Generator[Any, Any, None]:
    """Release a set of locks in reverse acquisition order."""
    ordered = list(locks)
    for lock in reversed(ordered):
        if quiet:
            yield from lock.release_quietly()
        else:
            yield from lock.release()
