"""Union queries across repositories.

"unlike for transaction-oriented databases … there is no global
consistency requirement that must be upheld across a set of information
repositories in the WWW."

A :class:`UnionIterator` interleaves the element streams of several
weak-set iterators — typically the same logical query against several
independent repositories (two library consortia, several web indexes) —
deduplicating by element name, since "there are no duplicates (though
we probably would not be overly annoyed if there were)".

The union is exactly as weak as its weakest source.  Failure policy is
a knob:

* ``on_failure="skip"`` (default, the weak-set spirit): a failing
  source is dropped and the union continues with the others;
* ``on_failure="fail"``: any source failure fails the union
  (pessimistic composition).
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from ..spec.termination import Failed, Outcome, Returned, Yielded
from .iterator import DrainResult, ElementsIterator

__all__ = ["UnionIterator", "union"]


class UnionIterator:
    """Round-robin interleaving of several element streams."""

    def __init__(self, sources: Sequence[ElementsIterator], *,
                 on_failure: str = "skip", dedupe: bool = True):
        if on_failure not in ("skip", "fail"):
            raise ValueError(f"on_failure must be 'skip' or 'fail', got {on_failure!r}")
        self.sources = list(sources)
        self.on_failure = on_failure
        self.dedupe = dedupe
        self._active = list(self.sources)
        self._cursor = 0
        self.yielded_names: set[str] = set()
        self.duplicates_suppressed = 0
        self.failed_sources: list[tuple[ElementsIterator, Failed]] = []
        self.terminated = False

    @property
    def world(self):
        return self.sources[0].repo.world if self.sources else None

    def invoke(self) -> Generator[Any, Any, Outcome]:
        """One union invocation: the next novel element from any source."""
        while self._active:
            source = self._active[self._cursor % len(self._active)]
            outcome = yield from source.invoke()
            if isinstance(outcome, Yielded):
                self._cursor += 1
                name = outcome.element.name
                if self.dedupe and name in self.yielded_names:
                    self.duplicates_suppressed += 1
                    continue
                self.yielded_names.add(name)
                return outcome
            # source terminated (returns or fails): retire it
            self._active.remove(source)
            if isinstance(outcome, Failed):
                self.failed_sources.append((source, outcome))
                if self.on_failure == "fail":
                    self.terminated = True
                    return Failed(f"source {source.impl_name} over "
                                  f"{source.coll_id} failed: {outcome.reason}")
        self.terminated = True
        return Returned()

    def drain(self, max_yields: Optional[int] = None) -> Generator[Any, Any, DrainResult]:
        world = self.world
        started_at = world.now if world else 0.0
        first_yield_at: Optional[float] = None
        yields: list[Yielded] = []
        while True:
            outcome = yield from self.invoke()
            if isinstance(outcome, Yielded):
                now = world.now if world else 0.0
                if first_yield_at is None:
                    first_yield_at = now
                yields.append(outcome)
                if max_yields is not None and len(yields) >= max_yields:
                    break
            else:
                break
        finished_at = world.now if world else 0.0
        return DrainResult(yields, outcome, started_at, first_yield_at,
                           finished_at)


def union(*weaksets, on_failure: str = "skip", dedupe: bool = True) -> UnionIterator:
    """Fresh union iteration over several weak sets.

    Example — the same author query against two library consortia::

        result = yield from union(catalog_a, catalog_b).drain()
    """
    return UnionIterator([ws.elements() for ws in weaksets],
                         on_failure=on_failure, dedupe=dedupe)
