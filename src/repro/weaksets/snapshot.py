"""Figure 4: mutable set with loss of mutations (first-state snapshot).

"The iterator will yield only those elements of s as it appears the
first time the iterator is called. … it still assumes that the set can
be obtained in one atomic action (to get a snapshot of s in the
first-state), and distributed atomic actions are extremely expensive in
practice."

The implementation takes that expensive atomic snapshot honestly: the
first invocation reads the membership from the **primary** (one RPC ==
one atomic action in our model; a stale replica would not be the
first-state value and would break conformance).  Subsequent invocations
yield elements of the snapshot, closest-first, failing pessimistically
only when *every* remaining element is unreachable.

A member removed mid-run is still yielded (descriptor with
``value=None``): that is precisely the "loss of mutations" the figure's
title announces, and Figure 4 *requires* it — the element is still in
``s_first`` and its home still answers, so it is in
``reachable(s_first)``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..spec.termination import Failed, Outcome, Returned, Yielded
from ..store.elements import Element
from .base import WeakSet
from .iterator import ElementsIterator

__all__ = ["SnapshotIterator", "SnapshotSet"]


class SnapshotIterator(ElementsIterator):
    """Iterator over the set's first-state value.

    Values are drained through the shared :class:`FetchPipeline`
    (``validation="probe"``: results buffered across a world change are
    re-validated at the home before being trusted).  A ``gone`` result —
    removed since the snapshot — is still *yielded* (descriptor with
    ``value=None``): its home answered, so it is in
    ``reachable(s_first)``, and Figure 4 says lost mutations may show.
    """

    impl_name = "snapshot"
    pipeline_validation = "probe"

    def __init__(self, *args: Any, fetch_values: bool = True, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.fetch_values = fetch_values
        self.snapshot: Optional[frozenset[Element]] = None

    def _step(self) -> Generator[Any, Any, Outcome]:
        if self.snapshot is None:
            # The atomic first-state snapshot.  If the primary is
            # unreachable, the FailureException propagates and the
            # iterator fails before yielding anything.
            view = yield from self.repo.read_membership(self.coll_id, source="primary")
            self.snapshot = view.members
        remaining = self.snapshot - self.yielded
        if not remaining:
            return Returned()
        if not self.fetch_values:
            return Yielded(self.closest_first(remaining)[0], None)
        pipe = self._ensure_pipeline()
        pipe.submit(remaining)
        retried = False
        while True:
            result, unreachable = yield from self._next_from_pipeline()
            if result is not None:
                if result.ok:
                    return Yielded(result.element, result.value)
                # Removed since the snapshot: yield it anyway (a "lost"
                # mutation the client may observe).
                return Yielded(result.element, None)
            if unreachable and not retried:
                # One fresh attempt within this invocation — connectivity
                # may have changed since those fetches were issued.
                retried = True
                pipe.submit(unreachable)
                continue
            return Failed(
                f"{len(remaining)} snapshot element(s) unreachable and none yieldable"
            )


class SnapshotSet(WeakSet):
    """Figure 4 semantics: weak consistency, first-vintage."""

    semantics = "fig4"
    iterator_cls = SnapshotIterator
    expected_policy = "any"
