"""The paper's re-run idiom, packaged.

"If clients were concerned about these possible losses, after the
iterator terminates (returns), they can run the iterator again and hope
to catch discrepancies."

:func:`iterate_until_stable` runs a weak set's iterator repeatedly
until two consecutive complete runs return the same member set (or the
round budget runs out).  Under quiescence this converges in two rounds;
under churn it reports the last two answers and the fact that they
still differ — which is itself the honest answer a weakly-consistent
system can give.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from ..sim.events import Sleep
from ..spec.termination import Returned
from ..store.elements import Element
from .base import WeakSet

__all__ = ["StableResult", "iterate_until_stable"]


@dataclass
class StableResult:
    """The outcome of the re-run-until-agreement loop."""

    answers: list[frozenset[Element]] = field(default_factory=list)
    stable: bool = False
    rounds: int = 0
    failed_rounds: int = 0

    @property
    def final(self) -> frozenset[Element]:
        return self.answers[-1] if self.answers else frozenset()

    @property
    def discrepancies(self) -> frozenset[Element]:
        """Symmetric difference of the last two answers (the 'losses')."""
        if len(self.answers) < 2:
            return frozenset()
        return self.answers[-1] ^ self.answers[-2]


def iterate_until_stable(weakset: WeakSet, *, max_rounds: int = 5,
                         pause_between: float = 0.1
                         ) -> Generator[Any, Any, StableResult]:
    """Drain ``weakset`` repeatedly until two runs agree.

    Failed runs (pessimistic semantics may fail) count toward
    ``max_rounds`` but never toward agreement.
    """
    result = StableResult()
    while result.rounds < max_rounds:
        iterator = weakset.elements()
        drained = yield from iterator.drain()
        result.rounds += 1
        if not isinstance(drained.outcome, Returned):
            result.failed_rounds += 1
        else:
            answer = frozenset(drained.elements)
            result.answers.append(answer)
            if len(result.answers) >= 2 and result.answers[-1] == result.answers[-2]:
                result.stable = True
                return result
        if pause_between > 0:
            yield Sleep(pause_between)
    return result
