"""Weak sets: the paper's design points as working distributed programs.

Every class here sees the world only through RPC (reads that may be
stale, fetches that may fail); the God's-eye ground truth stays with
the specification checker.  See DESIGN.md §3 for the figure-to-class
map and :mod:`repro.weaksets.factory` for selection by name.
"""

from ..spec.termination import Failed, Outcome, Returned, Yielded
from .base import WeakSet
from .dynamic import DynamicIterator, DynamicSet
from .factory import SEMANTICS, make_weak_set, policy_for, weak_set_class
from .grow_only import (
    GrowOnlyIterator,
    GrowOnlySet,
    PerRunGrowOnlyIterator,
    PerRunGrowOnlySet,
)
from .immutable import (
    Figure1Iterator,
    Figure1Set,
    ImmutableSet,
    PerRunImmutableIterator,
    PerRunImmutableSet,
)
from .iterator import DrainResult, ElementsIterator
from .locking import (
    LockClient,
    LockService,
    acquire_collection_locks,
    install_lock_service,
    install_lock_services,
    release_collection_locks,
)
from .query import QueryIterator, select
from .quorum import QuorumGrowOnlyIterator, QuorumGrowOnlySet
from .snapshot import SnapshotIterator, SnapshotSet
from .stabilize import StableResult, iterate_until_stable
from .strong import StrongIterator, StrongSet
from .union import UnionIterator, union

__all__ = [
    "DrainResult",
    "DynamicIterator",
    "DynamicSet",
    "ElementsIterator",
    "Failed",
    "Figure1Iterator",
    "Figure1Set",
    "GrowOnlyIterator",
    "GrowOnlySet",
    "ImmutableSet",
    "LockClient",
    "LockService",
    "Outcome",
    "PerRunGrowOnlyIterator",
    "PerRunGrowOnlySet",
    "PerRunImmutableIterator",
    "PerRunImmutableSet",
    "QueryIterator",
    "QuorumGrowOnlyIterator",
    "QuorumGrowOnlySet",
    "Returned",
    "SEMANTICS",
    "SnapshotIterator",
    "StableResult",
    "SnapshotSet",
    "StrongIterator",
    "StrongSet",
    "UnionIterator",
    "WeakSet",
    "Yielded",
    "acquire_collection_locks",
    "install_lock_service",
    "install_lock_services",
    "iterate_until_stable",
    "make_weak_set",
    "policy_for",
    "release_collection_locks",
    "select",
    "union",
    "weak_set_class",
]
