"""The :class:`WeakSet` facade: one client's handle on one collection.

A ``WeakSet`` binds together a client node, a collection, and a choice
of iterator semantics (one of the paper's design points).  It exposes
the type interface of the paper's Figure 1 —

    set = type create, add, remove, size, elements

— where ``create`` is the constructor, ``add``/``remove``/``size`` are
procedures (simulated sub-generators, since they involve RPC), and
``elements`` produces a fresh :class:`~repro.weaksets.iterator.ElementsIterator`.

Every iteration is recorded by default, so conformance checking is a
one-liner afterwards::

    ws = DynamicSet(world, client="laptop", coll_id="menus")
    result = yield from ws.elements().drain()
    report = check_conformance(ws.last_trace, spec_by_id("fig6"), world)
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Type

from ..net.address import NodeId
from ..net.resilience import ResilientClient
from ..spec.trace import IterationTrace, TraceRecorder
from ..store.cache import ClientCache
from ..store.elements import Element
from ..store.repository import Repository
from ..store.world import World
from .iterator import ElementsIterator

__all__ = ["WeakSet"]


class WeakSet:
    """Base class for the design points; subclasses pick the iterator."""

    semantics = "?"                     # spec id this implementation targets
    iterator_cls: Type[ElementsIterator] = ElementsIterator
    expected_policy: Optional[str] = None  # collection policy this is meant for

    def __init__(self, world: World, client: NodeId, coll_id: str, *,
                 cache: Optional[ClientCache] = None,
                 rpc_timeout: Optional[float] = None,
                 resilience: Optional[ResilientClient] = None,
                 record: bool = True,
                 **iterator_kwargs: Any):
        self.world = world
        self.client = client
        self.coll_id = coll_id
        self.repo = Repository(world, client, cache=cache,
                               rpc_timeout=rpc_timeout, resilience=resilience)
        self.record = record
        self.iterator_kwargs = iterator_kwargs
        self.traces: list[IterationTrace] = []

    # -- Figure 1's type interface ------------------------------------------
    def elements(self) -> ElementsIterator:
        """Start a fresh iteration (the membership-defining operation)."""
        recorder: Optional[TraceRecorder] = None
        if self.record:
            recorder = TraceRecorder(
                self.world, self.coll_id, self.client,
                impl_name=type(self).__name__,
            )
            self.traces.append(recorder.trace)
        return self.iterator_cls(
            self.repo, self.coll_id, recorder=recorder, **self.iterator_kwargs
        )

    def add(self, name: str, value: Any = None, home: Optional[NodeId] = None,
            size: int = 0) -> Generator[Any, Any, Element]:
        """``add``: register a new member (object created at its home)."""
        return (yield from self.repo.add(self.coll_id, name, value, home, size))

    def add_many(self, specs, *, window: int = 4, batch_size: int = 8
                 ) -> Generator[Any, Any, list[Element]]:
        """Bulk ``add`` through the batched write pipeline.

        ``specs`` are :class:`~repro.store.writeplan.AddSpec` entries
        (bare strings mean "name only").  Same semantics as a sequence
        of ``add`` calls — every element's copies exist before it
        becomes visible — at a fraction of the round trips.
        """
        return (yield from self.repo.add_many(
            self.coll_id, specs, window=window, batch_size=batch_size))

    def remove(self, element: Element) -> Generator[Any, Any, None]:
        """``remove``: delete a member (policy permitting)."""
        yield from self.repo.remove(self.coll_id, element)

    def size(self) -> Generator[Any, Any, int]:
        """``size``: |s_pre| as known by the primary."""
        view = yield from self.repo.read_membership(self.coll_id, source="primary")
        return len(view.members)

    # -- conveniences -------------------------------------------------------
    @property
    def last_trace(self) -> Optional[IterationTrace]:
        return self.traces[-1] if self.traces else None

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.coll_id!r} from {self.client!r}, "
                f"semantics={self.semantics})")
