"""Figures 1 and 3: iterators over immutable sets.

Figures 1 and 3 share their iteration structure with Figure 4 — the
ensures clauses of Figures 3 and 4 are textually identical; the figures
differ only in the ``constraint`` the *environment* upholds (the set
never mutates).  Accordingly:

* :class:`ImmutableSet` reuses the snapshot iterator against a
  collection whose policy is ``immutable``, and conforms to Figure 3.
* :class:`Figure1Iterator` is the failure-blind variant for Figure 1:
  it yields descriptors straight from the snapshot without testing
  reachability.  In a failure-free world it conforms to Figure 1 (and
  3); under failures it may yield unreachable elements — the exact
  deficiency that motivated adding ``reachable`` to the assertion
  language.
* :class:`PerRunImmutableSet` implements §3.1's relaxation ("mutations
  may occur between different uses of the iterator, but not between
  invocations of any one use") by holding a read lock on the collection
  for the duration of each run — which is why §3.1 warns that "the use
  of mobile (and possibly) disconnected computers may extend the period
  a lock is held indefinitely".
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..spec.termination import Outcome, Returned, Yielded
from .base import WeakSet
from .locking import (
    LockClient,
    acquire_collection_locks,
    release_collection_locks,
)
from .snapshot import SnapshotIterator

__all__ = ["ImmutableSet", "Figure1Iterator", "Figure1Set", "PerRunImmutableSet",
           "PerRunImmutableIterator"]


class ImmutableSet(WeakSet):
    """Figure 3 semantics: strong consistency, first-vintage.

    Intended for collections created with ``policy="immutable"`` and
    sealed after population; the constraint clause is then upheld by the
    store itself, and the snapshot iterator's behaviour satisfies
    Figure 3's ensures clause.
    """

    semantics = "fig3"
    iterator_cls = SnapshotIterator
    expected_policy = "immutable"


class Figure1Iterator(SnapshotIterator):
    """Figure 1: failures ignored (yields without reachability checks)."""

    impl_name = "figure1"

    def _step(self) -> Generator[Any, Any, Outcome]:
        if self.snapshot is None:
            view = yield from self.repo.read_membership(self.coll_id, source="primary")
            self.snapshot = view.members
        remaining = self.snapshot - self.yielded
        if not remaining:
            return Returned()
        # No reachability check, no failure branch: Figure 1's world has
        # no failures, so e ∈ s_first − yielded is all that is required.
        element = self.closest_first(remaining)[0]
        return Yielded(element, None)


class Figure1Set(WeakSet):
    """Figure 1 semantics (only meaningful in a failure-free world)."""

    semantics = "fig1"
    iterator_cls = Figure1Iterator
    expected_policy = "immutable"


class PerRunImmutableIterator(SnapshotIterator):
    """§3.1 relaxation: read-lock the collection for the run's duration."""

    impl_name = "per-run-immutable"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._locks: Optional[list[LockClient]] = None

    def _step(self) -> Generator[Any, Any, Outcome]:
        if self._locks is None:
            # One lock per shard for sharded collections, taken in ring
            # order (same order as every other pessimistic client).
            self._locks = yield from acquire_collection_locks(
                self.repo, self.coll_id, "read"
            )
        outcome = yield from super()._step()
        if not isinstance(outcome, Yielded):
            # returns or fails: the run is over either way — release.
            yield from release_collection_locks(self._locks, quiet=True)
        return outcome


class PerRunImmutableSet(WeakSet):
    """§3.1 semantics: immutable during a run, mutable between runs.

    Requires a :class:`~repro.weaksets.locking.LockService` on the
    collection's primary (see :func:`~repro.weaksets.locking.install_lock_service`),
    and writers that go through :class:`~repro.weaksets.strong.StrongSet`
    (or otherwise take the write lock).
    """

    semantics = "fig4"  # ensures clause is Fig 3/4's; constraint is per-run
    iterator_cls = PerRunImmutableIterator
    expected_policy = "any"
