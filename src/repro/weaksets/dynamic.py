"""Figure 6: growing and shrinking set, optimistic — **dynamic sets**.

"The behavior of elements captured in our last specification is the
weakest of the four presented in this paper. … We are currently
implementing the weakest design … Our decision … was based on the
desire to maximize the usability of the system while preserving good
performance and ease of implementation."

The implementation choices mirror that philosophy:

* membership is read from the **nearest reachable host** (primary or
  replica) — cheap, possibly stale;
* candidate elements are validated by fetching from their *home*, which
  is authoritative for existence: a stale replica may still list a
  removed member, but its data object is tombstoned (removal deletes
  the object before the membership entry), so the fetch comes back
  ``NoSuchObjectError`` and the candidate is silently skipped instead of
  being incorrectly yielded;
* failures are handled **optimistically**: when every remaining member
  is unreachable, the iterator does not fail — it sleeps and retries,
  "with the expectation that in a later invocation inaccessible objects
  will become accessible again (because the failure has been repaired
  by that time)".  Figure 6 has no ``signals (failure)`` clause: the
  only exits are yielding and returning.  ``give_up_after`` bounds the
  blocking for benchmark runs that must terminate; leaving it ``None``
  is the faithful spec behaviour.
* before returning, the iterator double-checks with the primary when it
  is reachable, so a stale replica view cannot cause an early return
  that misses recent additions (which Figure 6's "∃ e ∈ s_pre" branch
  forbids).  If the primary is unreachable the best known view decides
  — the honest residual weakness of optimism, measured in E5.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import FailureException, NoSuchObjectError
from ..sim.events import Sleep
from ..spec.termination import Failed, Outcome, Returned, Yielded
from ..store.elements import Element
from .base import WeakSet
from .iterator import ElementsIterator

__all__ = ["DynamicIterator", "DynamicSet"]


class DynamicIterator(ElementsIterator):
    """The optimistic iterator CMU shipped for Unix dynamic sets."""

    impl_name = "dynamic"

    def __init__(self, *args: Any, retry_interval: float = 0.25,
                 give_up_after: Optional[float] = None,
                 use_cache: bool = False, fetch_values: bool = True,
                 failover: bool = True,
                 **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.retry_interval = retry_interval
        self.give_up_after = give_up_after
        self.use_cache = use_cache
        self.fetch_values = fetch_values
        #: Try an element's replica copies when its home is unreachable,
        #: before treating it as blocked.  Safe under Figure 6: replicas
        #: can only restore visibility of live members, never resurrect
        #: removed ones (only the home answers "removed" authoritatively).
        self.failover = failover
        # Instance attr shadowing the class default: the pipeline's
        # failover policy is this iterator's failover policy.
        self.pipeline_failover = failover
        self.retries = 0          # cumulative blocked retries (observability)
        # Members learned to be removed (tombstoned at their home).
        # Removed oids never resurrect (a re-add mints a fresh oid), so
        # this memory is safe across invocations.
        self.stale_entries: set[Element] = set()

    def _step(self) -> Generator[Any, Any, Outcome]:
        if not self.fetch_values:
            return (yield from self._step_probe_only())
        blocked_since: Optional[float] = None
        forced_view: Optional[frozenset[Element]] = None
        pipe = self._ensure_pipeline(use_cache=self.use_cache)
        while True:
            if not pipe.pending:
                # The pipeline has drained: (re)plan from a fresh view.
                # While it still holds undelivered work we keep consuming
                # instead — no membership re-read per yield.
                if forced_view is not None:
                    view_members, forced_view = forced_view, None
                else:
                    try:
                        view_members = yield from self._best_view()
                    except FailureException:
                        # No membership host reachable: blocked at the
                        # view layer.  Optimism waits here too, on the
                        # same give_up_after budget as blocked fetches.
                        if self.repo.disconnected:
                            return self._disconnected_failure()
                        now = self.repo.world.now
                        if blocked_since is None:
                            blocked_since = now
                        if (self.give_up_after is not None
                                and now - blocked_since >= self.give_up_after):
                            return Failed(
                                f"gave up after blocking {self.give_up_after}s "
                                "(give_up_after escape hatch; Figure 6 proper "
                                "never fails)"
                            )
                        self.retries += 1
                        yield Sleep(self.retry_interval)
                        continue
                pipe.submit(view_members - self.yielded - self.stale_entries)
            result, unreachable = yield from self._next_from_pipeline()
            if result is not None:
                if result.ok:
                    return Yielded(result.element, result.value)
                # Tombstoned at its home: the member was removed and
                # our view is stale.  Skip — do not yield, do not block.
                self.stale_entries.add(result.element)
                continue
            if not unreachable:
                # Nothing unreachable: every remaining entry (if any) was
                # stale.  Confirm emptiness against the primary before
                # returning, in case this view missed recent additions.
                fresh_remaining = yield from self._fresh_remaining(self.stale_entries)
                if not fresh_remaining:
                    return Returned()
                # The primary knows members our view missed: iterate over
                # the authoritative view next round (no extra replica read).
                forced_view = fresh_remaining
                continue
            # Optimistic blocking: members exist but cannot be reached.
            # Sleeping with the pipeline empty means the next lap re-reads
            # a view and resubmits the blocked members — a fresh attempt.
            if self.repo.disconnected:
                return self._disconnected_failure()
            now = self.repo.world.now
            if blocked_since is None:
                blocked_since = now
            if (self.give_up_after is not None
                    and now - blocked_since >= self.give_up_after):
                return Failed(
                    f"gave up after blocking {self.give_up_after}s "
                    "(give_up_after escape hatch; Figure 6 proper never fails)"
                )
            self.retries += 1
            yield Sleep(self.retry_interval)

    def _step_probe_only(self) -> Generator[Any, Any, Outcome]:
        """Membership-only iteration (``fetch_values=False``): validate
        candidates by probing their home instead of fetching values."""
        blocked_since: Optional[float] = None
        forced_view: Optional[frozenset[Element]] = None
        while True:
            if forced_view is not None:
                view_members, forced_view = forced_view, None
            else:
                try:
                    view_members = yield from self._best_view()
                except FailureException:
                    # Blocked at the view layer: wait it out on the same
                    # give_up_after budget as blocked probes below.
                    if self.repo.disconnected:
                        return self._disconnected_failure()
                    now = self.repo.world.now
                    if blocked_since is None:
                        blocked_since = now
                    if (self.give_up_after is not None
                            and now - blocked_since >= self.give_up_after):
                        return Failed(
                            f"gave up after blocking {self.give_up_after}s "
                            "(give_up_after escape hatch; Figure 6 proper "
                            "never fails)"
                        )
                    self.retries += 1
                    yield Sleep(self.retry_interval)
                    continue
            remaining = view_members - self.yielded - self.stale_entries
            saw_unreachable = False
            for element in self.closest_first(remaining):
                try:
                    exists = yield from self.repo.probe(element)
                    if not exists:
                        raise NoSuchObjectError(element.oid)
                    return Yielded(element, None)
                except NoSuchObjectError:
                    self.stale_entries.add(element)
                except FailureException:
                    saw_unreachable = True
            if not saw_unreachable:
                fresh_remaining = yield from self._fresh_remaining(self.stale_entries)
                if not fresh_remaining:
                    return Returned()
                forced_view = fresh_remaining
                continue
            if self.repo.disconnected:
                return self._disconnected_failure()
            now = self.repo.world.now
            if blocked_since is None:
                blocked_since = now
            if (self.give_up_after is not None
                    and now - blocked_since >= self.give_up_after):
                return Failed(
                    f"gave up after blocking {self.give_up_after}s "
                    "(give_up_after escape hatch; Figure 6 proper never fails)"
                )
            self.retries += 1
            yield Sleep(self.retry_interval)

    # ------------------------------------------------------------------
    @staticmethod
    def _disconnected_failure() -> Failed:
        """Fail fast while the client is DISCONNECTED: the network is
        *known* absent (an explicit client state, not a suspected
        fault), so optimistic retrying can only burn simulated time —
        no later invocation can reach anything until reconnect."""
        return Failed("client disconnected: offline read failed fast "
                      "instead of retrying until give_up_after")

    def _best_view(self) -> Generator[Any, Any, frozenset[Element]]:
        """Membership from the nearest reachable host (optimistic read).

        With no host reachable at all, optimism means *wait*, not fail:
        retry until one comes back (bounded by ``give_up_after`` via the
        caller's loop when it never does — modelled here as an empty
        view plus blocking, so the outer loop's backoff applies).
        """
        while True:
            try:
                view = yield from self.repo.read_membership(
                    self.coll_id, source="nearest", use_cache=self.use_cache)
                return view.members
            except FailureException:
                if self.give_up_after is not None or self.repo.disconnected:
                    # Bounded mode (or an explicitly DISCONNECTED client,
                    # which never benefits from waiting): surface the
                    # block to the outer loop by raising.
                    raise
                self.retries += 1
                yield Sleep(self.retry_interval)

    def _fresh_remaining(self, stale_entries: set[Element]) -> Generator[Any, Any, frozenset[Element]]:
        """Unyielded members per the primary (empty set on best effort).

        An unreachable primary leaves the decision to the stale view —
        the honest residual weakness of optimism, possibly missing very
        recent additions.
        """
        try:
            fresh = yield from self.repo.read_membership(self.coll_id, source="primary")
        except FailureException:
            return frozenset()
        return fresh.members - self.yielded - stale_entries


class DynamicSet(WeakSet):
    """Figure 6 semantics: no consistency, first-bound — dynamic sets."""

    semantics = "fig6"
    iterator_cls = DynamicIterator
    expected_policy = "any"
