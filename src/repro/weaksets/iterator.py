"""The ``elements`` iterator protocol.

The paper's iterator model: "Like a procedure an iterator is called;
but unlike a procedure, it may suspend its state and later be resumed
(invoked again), continuing from its suspended state. … Eventually,
like a procedure, an iterator may terminate, returning normally or
exceptionally."

:class:`ElementsIterator` realizes that model in the simulation.  Each
call to :meth:`invoke` is one paper-invocation: a simulated
sub-generator that completes with exactly one
:class:`~repro.spec.termination.Outcome` —

* ``Yielded(element, value)``  (the invocation *suspends*),
* ``Returned()``               (the iterator *returns*), or
* ``Failed(reason)``           (the iterator *fails*).

Subclasses implement :meth:`_step` — the body of one invocation — in
terms of honest RPC via their :class:`~repro.store.repository.Repository`.
The base class enforces the protocol (no invocation after termination,
no duplicate yields) and drives the optional
:class:`~repro.spec.trace.TraceRecorder` so every run can be checked
against the figure specifications.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import FailureException, IteratorProtocolError
from ..net.address import NodeId
from ..spec.termination import Failed, Outcome, Yielded
from ..spec.trace import TraceRecorder
from ..store.elements import Element
from ..store.fetchplan import FetchPipeline, FetchResult, order_closest_first
from ..store.repository import Repository

__all__ = ["ElementsIterator", "DrainResult"]


class DrainResult:
    """Everything :meth:`ElementsIterator.drain` observed."""

    __slots__ = ("yields", "outcome", "first_yield_at", "finished_at", "started_at")

    def __init__(self, yields: list[Yielded], outcome: Outcome,
                 started_at: float, first_yield_at: Optional[float], finished_at: float):
        self.yields = yields
        self.outcome = outcome
        self.started_at = started_at
        self.first_yield_at = first_yield_at
        self.finished_at = finished_at

    @property
    def elements(self) -> list[Element]:
        return [y.element for y in self.yields]

    @property
    def values(self) -> list[Any]:
        return [y.value for y in self.yields]

    @property
    def failed(self) -> bool:
        return isinstance(self.outcome, Failed)

    @property
    def time_to_first(self) -> Optional[float]:
        if self.first_yield_at is None:
            return None
        return self.first_yield_at - self.started_at

    @property
    def total_time(self) -> float:
        return self.finished_at - self.started_at

    def __repr__(self) -> str:
        return (f"DrainResult({len(self.yields)} yields, {self.outcome}, "
                f"{self.total_time:.3f}s)")


class ElementsIterator:
    """Base class: one suspended/resumable iteration over a collection."""

    impl_name = "elements"

    #: Pop-time validation the variant's pipeline uses (see
    #: :mod:`repro.store.fetchplan`); subclasses override.
    pipeline_validation = "probe"
    #: Whether the variant's pipeline falls back to replica copies on
    #: transport failure at the home.
    pipeline_failover = False

    def __init__(self, repo: Repository, coll_id: str,
                 recorder: Optional[TraceRecorder] = None,
                 fetch_window: int = 8, fetch_batch: int = 4,
                 fetch_max_bytes: Optional[int] = None,
                 fetch_size_hint=None):
        self.repo = repo
        self.coll_id = coll_id
        self.client: NodeId = repo.client
        self.recorder = recorder
        self.yielded: frozenset[Element] = frozenset()
        self.terminated = False
        self.last_outcome: Optional[Outcome] = None
        # Shared fetch engine: every variant drains element values
        # through one batched, pipelined FetchPipeline (window=1,
        # batch=1 reproduces the old serial path exactly).
        self.fetch_window = fetch_window
        self.fetch_batch = fetch_batch
        # Byte-aware coalescing dials, passed through to the pipeline:
        # cap each multi-get's estimated reply bytes (needs a size hint
        # — a constant or a per-element callable — to be effective).
        self.fetch_max_bytes = fetch_max_bytes
        self.fetch_size_hint = fetch_size_hint
        self.pipeline: Optional[FetchPipeline] = None

    # ------------------------------------------------------------------
    def invoke(self) -> Generator[Any, Any, Outcome]:
        """One invocation (first call or resumption).  Sub-generator."""
        if self.terminated:
            raise IteratorProtocolError(
                f"{self.impl_name} over {self.coll_id} was invoked after terminating"
            )
        if self.recorder is not None:
            self.recorder.invocation_started()
        try:
            outcome = yield from self._step()
        except FailureException as exc:
            # Uncaught transport failures terminate the iterator with the
            # paper's ``failure`` exception.
            outcome = Failed(str(exc))
        if isinstance(outcome, Yielded):
            if outcome.element in self.yielded:
                raise IteratorProtocolError(
                    f"{self.impl_name} yielded {outcome.element} twice"
                )
            self.yielded = self.yielded | {outcome.element}
        else:
            self.terminated = True
            self._stop_pipeline()
        self.last_outcome = outcome
        if self.recorder is not None:
            self.recorder.invocation_completed(outcome)
        return outcome

    def drain(self, max_yields: Optional[int] = None) -> Generator[Any, Any, DrainResult]:
        """Invoke to termination (or ``max_yields``); gather statistics.

        Each drain is one ``drain`` span (tagged with the variant's
        ``impl_name``) containing every RPC span it caused, and feeds
        the ``drain.*`` metrics — the continuously-measured cost story
        the bench regression gate diffs.
        """
        obs = self.repo.obs
        span = obs.tracer.start("drain", impl=self.impl_name,
                                coll=self.coll_id, client=str(self.client))
        try:
            result = yield from self._drain_loop(max_yields)
        except BaseException as exc:
            obs.tracer.finish(span, outcome=type(exc).__name__)
            raise
        obs.tracer.finish(span, outcome=type(result.outcome).__name__,
                          yields=len(result.yields))
        self._record_drain_metrics(result)
        return result

    def _drain_loop(self, max_yields: Optional[int]) -> Generator[Any, Any, DrainResult]:
        started_at = self.repo.world.now
        first_yield_at: Optional[float] = None
        yields: list[Yielded] = []
        while True:
            outcome = yield from self.invoke()
            if isinstance(outcome, Yielded):
                if first_yield_at is None:
                    first_yield_at = self.repo.world.now
                yields.append(outcome)
                if max_yields is not None and len(yields) >= max_yields:
                    return DrainResult(yields, outcome, started_at,
                                       first_yield_at, self.repo.world.now)
            else:
                return DrainResult(yields, outcome, started_at,
                                   first_yield_at, self.repo.world.now)

    def _record_drain_metrics(self, result: DrainResult) -> None:
        metrics = self.repo.obs.metrics
        metrics.histogram("drain.latency").observe(result.total_time)
        metrics.histogram(f"drain.latency.{self.impl_name}").observe(result.total_time)
        if result.time_to_first is not None:
            metrics.histogram("drain.time_to_first").observe(result.time_to_first)
        metrics.counter("drain.yields").inc(len(result.yields))
        metrics.counter("drain.failed" if result.failed
                        else "drain.completed").inc()

    def abandon(self) -> None:
        """Discard the iterator without terminating it.

        The caller walked away mid-iteration (closed the browser tab).
        Detaches the trace recorder so the world stops feeding it
        snapshots; the partial trace remains checkable as-is.
        """
        if self.recorder is not None:
            self.recorder.abort()
        self.terminated = True
        self._stop_pipeline()

    # ------------------------------------------------------------------
    def _step(self) -> Generator[Any, Any, Outcome]:
        """The body of one invocation; implemented per design point."""
        raise NotImplementedError

    # -- shared helpers ---------------------------------------------------
    def closest_first(self, elements: frozenset[Element]) -> list[Element]:
        """Order candidates by expected latency to their home (then name).

        This is the paper's "fetching 'closer' files first"; unreachable
        homes sort last (infinite estimated latency).
        """
        return order_closest_first(self.repo.net, self.client, elements)

    def _ensure_pipeline(self, *, use_cache: bool = False) -> FetchPipeline:
        """The variant's shared fetch engine, created lazily per run."""
        if self.pipeline is None:
            self.pipeline = FetchPipeline(
                self.repo, use_cache=use_cache,
                window=self.fetch_window, batch_size=self.fetch_batch,
                max_batch_bytes=self.fetch_max_bytes,
                size_hint=self.fetch_size_hint,
                failover=self.pipeline_failover,
                validation=self.pipeline_validation,
                name=f"{self.impl_name}-{self.coll_id}")
            self.pipeline.start()
        return self.pipeline

    def _stop_pipeline(self) -> None:
        if self.pipeline is not None:
            self.pipeline.stop()

    def _next_from_pipeline(
        self,
    ) -> Generator[Any, Any, tuple[Optional[FetchResult], list[Element]]]:
        """Pop pipeline results until something deliverable appears.

        Returns ``(result, unreachable)``: ``result`` is the first ok or
        gone result (``None`` once the pipeline is drained), while
        ``unreachable`` accumulates elements skipped past on the way —
        the caller's retry policy decides what to do with those.
        """
        unreachable: list[Element] = []
        while True:
            result = yield from self.pipeline.next_result()
            if result is None:
                return None, unreachable
            if result.unreachable:
                unreachable.append(result.element)
                continue
            return result, unreachable

    def __repr__(self) -> str:
        state = "terminated" if self.terminated else "active"
        return (f"{type(self).__name__}({self.coll_id} from {self.client}, "
                f"{len(self.yielded)} yielded, {state})")
