"""The strong baseline: serializable iteration via distributed locking.

The paper's foil: "Although this functionality may be mandatory for
some high-integrity systems (e.g., a bank's distributed database), it
may [be] too constraining for low-integrity systems, especially
loosely-coupled ones (e.g., WWW)."

:class:`StrongSet` holds a collection-level read lock for the entire
run of ``elements`` and requires every element fetch to succeed; any
unreachable element aborts the run.  Mutators (its ``add``/``remove``)
take the write lock.  The result is serializable, first-vintage
behaviour — and exactly the latency/availability bill the benchmarks
E2/E4/E6 present.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import FailureException, NoSuchObjectError
from ..spec.termination import Failed, Outcome, Returned, Yielded
from ..store.elements import Element
from .base import WeakSet
from .iterator import ElementsIterator
from .locking import (
    LockClient,
    acquire_collection_locks,
    release_collection_locks,
)

__all__ = ["StrongIterator", "StrongSet"]


class StrongIterator(ElementsIterator):
    """Lock, snapshot, prefetch everything, then yield from memory.

    The prefetch runs through the shared :class:`FetchPipeline`, but in
    its *degenerate* configuration (``window=1, batch=1`` unless the
    caller overrides): a serializable database streams its scan one
    record at a time under the lock, and that serial bill is exactly
    the baseline cost story E2 measures.  Under the lock nothing can
    change, so pop-time validation is ``"none"``.
    """

    impl_name = "strong"
    pipeline_validation = "none"

    def __init__(self, *args: Any, lock_wait_timeout: Optional[float] = None,
                 hold_lock_while_yielding: bool = True, **kwargs: Any):
        kwargs.setdefault("fetch_window", 1)
        kwargs.setdefault("fetch_batch", 1)
        super().__init__(*args, **kwargs)
        self.lock_wait_timeout = lock_wait_timeout
        self.hold_lock_while_yielding = hold_lock_while_yielding
        self._locks: list[LockClient] = []
        self._loaded: Optional[list[tuple[Element, Any]]] = None
        self._cursor = 0

    def _step(self) -> Generator[Any, Any, Outcome]:
        if self._loaded is None:
            outcome = yield from self._load_all()
            if outcome is not None:
                return outcome
        assert self._loaded is not None
        if self._cursor < len(self._loaded):
            element, value = self._loaded[self._cursor]
            self._cursor += 1
            if self._cursor == len(self._loaded) and not self.hold_lock_while_yielding:
                pass  # lock already dropped after load
            return Yielded(element, value)
        if self._locks:
            locks, self._locks = self._locks, []
            yield from release_collection_locks(locks, quiet=True)
        return Returned()

    def _load_all(self) -> Generator[Any, Any, Optional[Outcome]]:
        """Acquire the read lock(s) and fetch every member, or abort.

        A sharded collection has one lock per shard; they are taken in
        ring order so concurrent strong writers cannot deadlock us.
        """
        try:
            self._locks = yield from acquire_collection_locks(
                self.repo, self.coll_id, "read",
                wait_timeout=self.lock_wait_timeout,
            )
        except FailureException as exc:
            self._locks = []
            return Failed(f"read lock unavailable: {exc}")
        failure: Optional[str] = None
        loaded: list[tuple[Element, Any]] = []
        try:
            view = yield from self.repo.read_membership(self.coll_id, source="primary")
            pipe = self._ensure_pipeline()
            pipe.submit(view.members)
            while True:
                result = yield from pipe.next_result()
                if result is None:
                    break
                if result.ok:
                    loaded.append((result.element, result.value))
                    continue
                # Strong semantics: all or nothing.
                reason = result.detail or f"{result.element} {result.status}"
                failure = (f"{NoSuchObjectError.__name__}: {reason}"
                           if result.gone else reason)
                break
        except FailureException as exc:
            failure = str(exc)
        if failure is not None:
            locks, self._locks = self._locks, []
            yield from release_collection_locks(locks, quiet=True)
            return Failed(f"strong iteration aborted: {failure}")
        self._loaded = loaded
        if not self.hold_lock_while_yielding:
            locks, self._locks = self._locks, []
            yield from release_collection_locks(locks, quiet=True)
        return None


class StrongSet(WeakSet):
    """Serializable set: the traditional-database comparison point.

    Requires a lock service on the collection's primary node
    (:func:`~repro.weaksets.locking.install_lock_service`), or one per
    shard (:func:`~repro.weaksets.locking.install_lock_services`) when
    the collection is sharded.  Its ``add``/``remove`` take the write
    lock(s) in ring order, so they serialize against every reader that
    plays by the same rules.
    """

    semantics = "strong"
    iterator_cls = StrongIterator
    expected_policy = "any"

    def add(self, name: str, value: Any = None, home: Optional[str] = None,
            size: int = 0) -> Generator[Any, Any, Element]:
        locks = yield from acquire_collection_locks(self.repo, self.coll_id, "write")
        try:
            element = yield from super().add(name, value, home, size)
        finally:
            yield from release_collection_locks(locks, quiet=True)
        return element

    def remove(self, element: Element) -> Generator[Any, Any, None]:
        locks = yield from acquire_collection_locks(self.repo, self.coll_id, "write")
        try:
            yield from super().remove(element)
        finally:
            yield from release_collection_locks(locks, quiet=True)