"""Figure 5: growing-only set with pessimistic failure handling.

"Unlike in the previous two specifications, each invocation uses the
current state of s, i.e., the pre-state, not first-state.  If there are
still elements to yield based on the remembered set and the current
state of the set, then we choose a reachable one and yield it.  If
there are no more elements to yield, we terminate.  Otherwise, because
we cannot reach an element that we know is in the set, we fail."

Each invocation therefore re-reads the membership from the **primary**
(the authoritative ``s_pre``) — the recurring cost of pre-state
semantics — and fails pessimistically as soon as every unyielded member
is unreachable.

Because "the set may grow faster than the iterator yields elements from
it, an iterator satisfying this specification may never terminate";
``max_yields`` on :meth:`~repro.weaksets.iterator.ElementsIterator.drain`
is the practical escape hatch the paper alludes to ("in practice this
behavior will not occur if objects are consumed more rapidly than they
are produced").

:class:`PerRunGrowOnlySet` is §3.3's relaxation: arbitrary mutation
between runs, growth-only during a run, enforced by the server-side
ghost protocol (``policy="grow-during-run"``) — "we can create copies
of any deleted objects and then garbage collect these 'ghost' copies
upon termination."
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..errors import FailureException
from ..spec.termination import Failed, Outcome, Returned, Yielded
from .base import WeakSet
from .iterator import ElementsIterator

__all__ = ["GrowOnlyIterator", "GrowOnlySet", "PerRunGrowOnlyIterator",
           "PerRunGrowOnlySet"]


class GrowOnlyIterator(ElementsIterator):
    """Pre-state iterator, pessimistic on failure.

    Values drain through the shared :class:`FetchPipeline`
    (``validation="probe"``).  A ``gone`` result here can only be a
    half-removed zombie (crash mid-remove) or a ghost: still a member,
    home answering — so its descriptor is yielded with ``value=None``.
    """

    impl_name = "grow-only"
    pipeline_validation = "probe"

    def __init__(self, *args: Any, fetch_values: bool = True, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.fetch_values = fetch_values

    def _read_view(self) -> Generator[Any, Any, frozenset]:
        # s_pre: the authoritative current membership.  An unreachable
        # primary is itself a failure (pessimism all the way down).
        view = yield from self.repo.read_membership(self.coll_id, source="primary")
        return view.members

    def _step(self) -> Generator[Any, Any, Outcome]:
        members = yield from self._read_view()
        remaining = members - self.yielded
        if not remaining:
            return Returned()
        if not self.fetch_values:
            return Yielded(self.closest_first(remaining)[0], None)
        pipe = self._ensure_pipeline()
        # Pre-state semantics: every invocation submits the *current*
        # remainder, so members added mid-run join the pipeline here
        # (already-pending elements are deduplicated; previously failed
        # ones are accepted again — a fresh per-invocation attempt).
        pipe.submit(remaining)
        retried = False
        while True:
            result, unreachable = yield from self._next_from_pipeline()
            if result is not None:
                if result.ok:
                    return Yielded(result.element, result.value)
                return Yielded(result.element, None)
            if unreachable and not retried:
                retried = True
                pipe.submit(unreachable)
                continue
            return Failed(
                f"{len(remaining)} member(s) known but unreachable (pessimistic)"
            )


class GrowOnlySet(WeakSet):
    """Figure 5 semantics, for collections with ``policy="grow-only"``."""

    semantics = "fig5"
    iterator_cls = GrowOnlyIterator
    expected_policy = "grow-only"


class PerRunGrowOnlyIterator(GrowOnlyIterator):
    """§3.3: registers the run so removals become ghosts until it ends."""

    impl_name = "per-run-grow-only"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self._token: Optional[str] = None

    def _step(self) -> Generator[Any, Any, Outcome]:
        if self._token is None:
            self._token = yield from self.repo.begin_iteration(self.coll_id)
        return (yield from super()._step())

    def invoke(self) -> Generator[Any, Any, Outcome]:
        outcome = yield from super().invoke()
        # Deregister *after* the terminating invocation completes, so the
        # ghost purge — the set finally shrinking — falls outside the
        # run's [first-state, last-state] window, as §3.3 intends.
        if self.terminated and self._token is not None:
            token, self._token = self._token, None
            try:
                yield from self.repo.end_iteration(self.coll_id, token)
            except FailureException:
                pass  # the primary will purge when the next run ends
        return outcome


class PerRunGrowOnlySet(WeakSet):
    """§3.3 semantics, for collections with ``policy="grow-during-run"``."""

    semantics = "fig5"
    iterator_cls = PerRunGrowOnlyIterator
    expected_policy = "grow-during-run"
