"""Factory helpers: pick a design point by name, with sane wiring.

The design space has one natural axis for users — "how weak can I
afford to be?" — so the factory exposes it as a single string.
"""

from __future__ import annotations

from typing import Any, Type

from ..net.address import NodeId
from ..store.world import World
from .base import WeakSet
from .dynamic import DynamicSet
from .grow_only import GrowOnlySet, PerRunGrowOnlySet
from .immutable import Figure1Set, ImmutableSet, PerRunImmutableSet
from .quorum import QuorumGrowOnlySet
from .snapshot import SnapshotSet
from .strong import StrongSet

__all__ = ["SEMANTICS", "weak_set_class", "make_weak_set", "policy_for"]

SEMANTICS: dict[str, Type[WeakSet]] = {
    "fig1": Figure1Set,
    "fig3": ImmutableSet,
    "immutable": ImmutableSet,
    "fig4": SnapshotSet,
    "snapshot": SnapshotSet,
    "fig5": GrowOnlySet,
    "grow-only": GrowOnlySet,
    "per-run-grow-only": PerRunGrowOnlySet,
    "quorum-grow-only": QuorumGrowOnlySet,
    "per-run-immutable": PerRunImmutableSet,
    "fig6": DynamicSet,
    "dynamic": DynamicSet,
    "optimistic": DynamicSet,
    "strong": StrongSet,
}


def weak_set_class(semantics: str) -> Type[WeakSet]:
    try:
        return SEMANTICS[semantics]
    except KeyError:
        raise KeyError(
            f"unknown semantics {semantics!r}; known: {sorted(SEMANTICS)}"
        ) from None


def policy_for(semantics: str) -> str:
    """The collection policy a design point expects its world to uphold."""
    cls = weak_set_class(semantics)
    return cls.expected_policy or "any"


def make_weak_set(world: World, client: NodeId, coll_id: str,
                  semantics: str = "dynamic", **kwargs: Any) -> WeakSet:
    """Build a weak set of the requested semantics.

    ``kwargs`` pass through to the class (cache, rpc_timeout, record,
    and iterator-specific knobs like ``retry_interval``).
    """
    return weak_set_class(semantics)(world, client, coll_id, **kwargs)
