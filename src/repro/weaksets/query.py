"""Predicate queries over weak sets.

"by supporting a set-like abstraction, we can support database-like
queries, e.g., finding all files that satisfy a given predicate."

A :class:`QueryIterator` drives an underlying ``elements`` iterator and
yields only the members whose (element, value) satisfy a predicate —
itself obeying the iterator protocol, so a filtered query inherits the
semantics (and the conformance story) of the design point it wraps.
Note one asymmetry the paper's model implies: filtering happens on the
*yield stream*, so a query over a Figure 6 iterator is exactly as weak
as the iterator itself.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from ..spec.termination import Outcome, Yielded
from ..store.elements import Element
from .base import WeakSet
from .iterator import DrainResult

__all__ = ["QueryIterator", "select"]

Predicate = Callable[[Element, Any], bool]


class QueryIterator:
    """Filters an iterator's yield stream.

    Mirrors the iterator protocol: each :meth:`invoke` produces one
    outcome, driving the underlying iterator as many invocations as it
    takes to find the next match (or to terminate).  The inner iterator
    may be an :class:`ElementsIterator` or anything protocol-compatible
    (e.g. a :class:`~repro.weaksets.union.UnionIterator`).
    """

    def __init__(self, inner: Any, predicate: Predicate):
        self.inner = inner
        self.predicate = predicate
        self.examined = 0
        self.matched = 0

    @property
    def terminated(self) -> bool:
        return self.inner.terminated

    def _now(self) -> float:
        repo = getattr(self.inner, "repo", None)
        if repo is not None:
            return repo.world.now
        world = getattr(self.inner, "world", None)
        return world.now if world is not None else 0.0

    def invoke(self) -> Generator[Any, Any, Outcome]:
        while True:
            outcome = yield from self.inner.invoke()
            if not isinstance(outcome, Yielded):
                return outcome
            self.examined += 1
            if self.predicate(outcome.element, outcome.value):
                self.matched += 1
                return outcome

    def drain(self, max_yields: Optional[int] = None) -> Generator[Any, Any, DrainResult]:
        started_at = self._now()
        first_yield_at: Optional[float] = None
        yields: list[Yielded] = []
        while True:
            outcome = yield from self.invoke()
            if isinstance(outcome, Yielded):
                if first_yield_at is None:
                    first_yield_at = self._now()
                yields.append(outcome)
                if max_yields is not None and len(yields) >= max_yields:
                    break
            else:
                break
        return DrainResult(yields, outcome, started_at, first_yield_at,
                           self._now())


def select(weakset: WeakSet, predicate: Predicate) -> QueryIterator:
    """Fresh filtered iteration over ``weakset``.

    Example — the paper's restaurant query::

        chinese = select(menus, lambda e, v: v and v.cuisine == "chinese")
        result = yield from chinese.drain()
    """
    return QueryIterator(weakset.elements(), predicate)
