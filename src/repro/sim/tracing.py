"""Structured trace log for simulations.

The trace is a list of timestamped records.  It serves two purposes:

* debugging (human-readable dump of what the simulation did), and
* the specification checker's *computation history* — the sequence of
  states the paper calls σ₀ S₁ σ₁ … is reconstructed from mutation
  records emitted by the object store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .clock import Clock

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped simulation event."""

    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.6f}] {self.kind:<16} {detail}"


class TraceLog:
    """Append-only event log; cheap no-op when disabled.

    Subscribers (e.g., the spec framework's constraint monitors) can
    register callbacks that see every record as it is appended,
    regardless of whether recording-for-dump is enabled.
    """

    def __init__(self, enabled: bool = False, clock: Optional["Clock"] = None):
        self.enabled = enabled
        self._clock = clock
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    def record(self, kind: str, **fields: Any) -> None:
        if not self.enabled and not self._subscribers:
            return
        now = self._clock.now if self._clock is not None else 0.0
        rec = TraceRecord(time=now, kind=kind, fields=fields)
        if self.enabled:
            self._records.append(rec)
        for callback in self._subscribers:
            callback(rec)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Register a live subscriber; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def records(self, kind: Optional[str] = None) -> Iterator[TraceRecord]:
        for rec in self._records:
            if kind is None or rec.kind == kind:
                yield rec

    def dump(self) -> str:
        return "\n".join(str(rec) for rec in self._records)

    def __len__(self) -> int:
        return len(self._records)
