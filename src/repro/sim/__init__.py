"""Deterministic discrete-event simulation substrate.

The paper's target environment — a wide-area network of possibly-mobile
workstations where "failures are assumed to be common" — is reproduced as
a single-threaded, virtual-time simulation.  See DESIGN.md §4.

Quick example::

    from repro.sim import Kernel, Sleep

    def hello():
        yield Sleep(1.5)
        return "done at t=1.5"

    k = Kernel(seed=42)
    print(k.run_process(hello()))
"""

from .clock import Clock
from .events import Fork, Join, Now, Signal, Sleep, Wait
from .kernel import Kernel
from .mailbox import CLOSED, Mailbox
from .process import Process, ProcessState
from .rng import RandomRouter, Stream
from .sched import HeapScheduler, WheelScheduler, make_scheduler
from .tracing import TraceLog, TraceRecord

__all__ = [
    "Clock",
    "Fork",
    "HeapScheduler",
    "Join",
    "CLOSED",
    "Kernel",
    "WheelScheduler",
    "make_scheduler",
    "Mailbox",
    "Now",
    "Process",
    "ProcessState",
    "RandomRouter",
    "Signal",
    "Sleep",
    "Stream",
    "TraceLog",
    "TraceRecord",
    "Wait",
]
