"""The deterministic discrete-event kernel.

One :class:`Kernel` instance owns a virtual clock, a scheduler of
pending actions, and a set of processes (Python generators).  The whole
simulation is single-threaded: concurrency is *simulated* by interleaving
process steps at their scheduled virtual times, so a run is exactly
reproducible given (code, seed).

Tie-breaking is by a monotonically increasing sequence number, so two
actions scheduled for the same instant run in scheduling order —
determinism does not depend on container internals.  The scheduler
structure itself is pluggable (see :mod:`repro.sim.sched`): the default
is the timer-wheel/slotted-heap hybrid; ``Kernel(scheduler="heap")``
selects the original binary heap, kept as the reference for
differential determinism tests and throughput baselines.

The event loop dispatches same-instant events as one *batch*: the
scheduler surfaces every entry stamped with the next virtual time at
once, and actions scheduled for the current instant during the batch
(zero-delay process steps, message deliveries) append to the live batch
instead of round-tripping through the scheduler.  Observable order is
still strict ``(time, seq)``.

Two hot-path conventions keep per-event cost down at population scale
(10⁵+ clients): a scheduled entry's ``action`` is either a plain
callable *or the Process itself* (meaning "advance this process"), so
resuming a process costs no closure or ``partial`` allocation; and the
no-``stop_when`` dispatch loop steps generators inline — the common
``yield Sleep(...)`` never leaves the loop frame.  Every slow or
re-entrant path still funnels through :meth:`Kernel._step`, which is
the semantic reference for what one step means.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Callable, Generator, Optional, Union

from ..errors import SimulationError, TimeoutFailure
from ..obs import Observability
from .clock import Clock
from .events import Fork, Join, Now, Signal, Sleep, Wait
from .process import Process, ProcessState
from .rng import RandomRouter, Stream
from .sched import EventScheduler, _Scheduled, make_scheduler
from .tracing import TraceLog

__all__ = ["Kernel"]

# Hot-path constants: enum attribute loads are not free at 10⁵ events/s.
_RUNNING = ProcessState.RUNNING
_WAITING = ProcessState.WAITING


class Kernel:
    """Discrete-event scheduler driving generator-based processes."""

    def __init__(self, seed: int = 0, trace: bool = False,
                 scheduler: Union[str, EventScheduler, None] = None):
        self.clock = Clock()
        self.random = RandomRouter(seed)
        self.trace = TraceLog(enabled=trace, clock=self.clock)
        if scheduler is None:
            scheduler = os.environ.get("REPRO_SIM_SCHED") or None
        self._sched: EventScheduler = make_scheduler(scheduler)
        self._seq = itertools.count()
        self._processes: list[Process] = []
        self._running: Optional[Process] = None
        # Live batch state: while run() drains an instant, zero-delay
        # schedules append straight onto the batch being dispatched.
        self._batch: list[_Scheduled] = []
        self._batch_time = -1.0
        self._dispatching = False
        # One observability surface per kernel: metrics + spans, timed by
        # the virtual clock, span parentage keyed by the running process.
        self.obs = Observability(self.clock, context_key=lambda: self._running)
        # Hot path: instruments are resolved once, not per event.
        self._m_events = self.obs.metrics.counter("kernel.events")
        self._m_queue_depth = self.obs.metrics.gauge("kernel.queue_depth")
        self._m_wall = self.obs.metrics.counter("kernel.wall_seconds")
        self._m_sim = self.obs.metrics.counter("kernel.sim_seconds")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def scheduler_name(self) -> str:
        return self._sched.name

    @property
    def current_process(self) -> Optional["Process"]:
        """The process whose generator is being stepped right now (the
        tracer's span-parentage context), or ``None`` between steps.
        Lets code that spawns workers directly — rather than via the
        ``Fork`` effect — adopt the creator's span context."""
        return self._running

    def stream(self, name: str) -> Stream:
        """Named deterministic random stream (see :mod:`repro.sim.rng`)."""
        return self.random.stream(name)

    def spawn(self, generator: Generator, name: str = "", daemon: bool = False,
              transient: bool = False) -> Process:
        """Create a process from ``generator`` and schedule its first step.

        ``transient`` processes are not retained in the kernel's process
        table: once finished they are garbage-collected with their
        generator frames.  Population-scale workloads (10⁵+ short-lived
        client sessions) spawn transient, so a run's memory stays
        bounded by the *live* population, not the arrival count.
        Transient processes do not appear in :meth:`processes` or
        :meth:`blocked_processes`.
        """
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        proc = Process(generator, name=name, daemon=daemon)
        if not transient:
            self._processes.append(proc)
        if self.trace.enabled:
            self.trace.record("spawn", process=proc.name)
        self._schedule(0.0, proc)
        return proc

    def call_soon(self, action: Callable[[], None], delay: float = 0.0) -> Callable[[], None]:
        """Schedule a plain callback ``delay`` seconds from now.

        Returns a cancel function.  Used by the network layer to model
        message delivery without a full process per message.
        """
        return self._schedule(delay, action).cancel

    def run(self, until: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Run scheduled actions until the queue empties (or ``until``,
        or ``stop_when()`` turns true between actions)."""
        wall_start = time.perf_counter()
        sim_start = self.clock.now
        sched = self._sched
        sched_push = sched.push
        clock = self.clock
        batch = self._batch
        seq = self._seq
        executed = 0
        try:
            while True:
                if stop_when is not None and stop_when():
                    return
                next_time = sched.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    clock.advance_to(until)
                    return
                sched.pop_batch(batch)
                clock.advance_to(next_time)
                self._batch_time = next_time
                self._dispatching = True
                index = 0
                try:
                    if stop_when is None:
                        # Hot loop: `for` picks up entries appended to
                        # the live batch mid-dispatch, and the common
                        # case — resume a process whose generator
                        # yields another Sleep — is stepped inline
                        # (no _step frame, no closure, no re-entry
                        # into the scheduler for same-instant wakes).
                        for entry in batch:
                            index += 1
                            if entry.cancelled:
                                continue
                            executed += 1
                            action = entry.action
                            if action.__class__ is not Process:
                                action()
                                continue
                            proc = action
                            if proc._terminal:
                                continue
                            if (proc._resume_value is not None
                                    or proc._resume_error is not None):
                                self._step(proc)
                                continue
                            proc.state = _RUNNING
                            self._running = proc
                            try:
                                effect = proc.generator.send(None)
                            except StopIteration as stop:
                                proc._finish(stop.value)
                                self.trace.record("finish", process=proc.name)
                                self._running = None
                                continue
                            except BaseException as exc:
                                proc._fail(exc)
                                self.trace.record("fail", process=proc.name,
                                                  error=repr(exc))
                                self._running = None
                                continue
                            self._running = None
                            if effect.__class__ is Sleep:
                                proc.state = _WAITING
                                # The entry that woke us is dead (fired,
                                # never cancellable from outside): reuse
                                # it for the next sleep — zero
                                # allocation per steady-state event.
                                entry.time = when = next_time + effect.duration
                                entry.seq = next(seq)
                                if when == next_time:
                                    batch.append(entry)
                                else:
                                    sched_push(entry)
                                continue
                            self._interpret(proc, effect)
                    else:
                        fresh_check = True   # stop_when was just evaluated
                        for entry in batch:
                            index += 1
                            if entry.cancelled:
                                continue
                            if not fresh_check and stop_when():
                                sched.requeue(batch[index - 1:])
                                return
                            fresh_check = False
                            executed += 1
                            action = entry.action
                            if action.__class__ is Process:
                                self._step(action)
                            else:
                                action()
                except BaseException:
                    # A raising action is dropped (it was underway), the
                    # rest of the instant survives for the next run().
                    sched.requeue(batch[index:])
                    raise
                finally:
                    self._dispatching = False
                    del batch[:]
                self._m_queue_depth.value = len(sched)
            if until is not None and until > clock.now:
                clock.advance_to(until)
        finally:
            self._m_events.value += executed
            # Wall-per-sim-time: how much real time one virtual second
            # costs (the simulator's own efficiency, tracked per run).
            self._m_wall.value += time.perf_counter() - wall_start
            self._m_sim.value += clock.now - sim_start

    def run_process(self, generator: Generator, name: str = "main", until: Optional[float] = None) -> Any:
        """Spawn ``generator``, run until it finishes, return its result.

        The common entry point for tests and examples.  Stops as soon as
        the process completes (background daemons — replication,
        fault injectors — may still have work queued; they simply stop
        here and resume on the next ``run``).  Raises the process's
        exception if it failed, and ``SimulationError`` if the simulation
        ran out of events or hit ``until`` before the process finished.
        """
        proc = self.spawn(generator, name=name)
        self.run(until=until, stop_when=lambda: proc.finished)
        if not proc.finished:
            raise SimulationError(
                f"simulation ended at t={self.now:.3f} before {name!r} finished "
                f"(state={proc.state.value}; deadlock or `until` too small)"
            )
        return proc.result

    def kill(self, proc: Process) -> None:
        """Terminate ``proc`` (public API; no-op if already finished).

        The generator is closed (its ``finally`` blocks run) and any
        joiner is resumed with :class:`~repro.errors.ProcessKilled`.
        """
        proc.kill()
        self.trace.record("kill", process=proc.name)

    def processes(self) -> list[Process]:
        return list(self._processes)

    def blocked_processes(self) -> list[Process]:
        """Processes suspended with nothing scheduled to wake them."""
        return [
            p for p in self._processes
            if p.state is ProcessState.WAITING and not p.daemon
        ]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schedule(self, delay: float,
                  action: Union[Callable[[], None], Process]) -> _Scheduled:
        # ``action`` is a callable to invoke, or a Process to advance.
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        when = self.clock.now + delay
        entry = _Scheduled(when, next(self._seq), action)
        if self._dispatching and when == self._batch_time:
            # Same-instant schedule during dispatch: join the live batch
            # (appends carry increasing seqs, so order stays exact).
            self._batch.append(entry)
        else:
            self._sched.push(entry)
        return entry

    def _step(self, proc: Process, *, throw: Optional[BaseException] = None) -> None:
        """Advance ``proc`` by one generator step and interpret its effect."""
        if proc._terminal:
            return
        # Inlined _take_resume: this runs once per event.
        value = proc._resume_value
        error = proc._resume_error
        if value is not None or error is not None:
            proc._resume_value = None
            proc._resume_error = None
        if throw is not None:
            error = throw
        proc.state = _RUNNING
        self._running = proc
        try:
            if error is not None:
                effect = proc.generator.throw(error)
            else:
                effect = proc.generator.send(value)
        except StopIteration as stop:
            proc._finish(stop.value)
            self.trace.record("finish", process=proc.name)
            return
        except BaseException as exc:
            proc._fail(exc)
            self.trace.record("fail", process=proc.name, error=repr(exc))
            return
        finally:
            self._running = None
        if type(effect) is Sleep:
            # Fast path: Sleep dominates every workload.  Inlines
            # _schedule (Sleep validated duration >= 0 at construction).
            proc.state = _WAITING
            when = self.clock._now + effect.duration
            entry = _Scheduled(when, next(self._seq), proc)
            if self._dispatching and when == self._batch_time:
                self._batch.append(entry)
            else:
                self._sched.push(entry)
            return
        self._interpret(proc, effect)

    def _interpret(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Sleep):
            proc.state = _WAITING
            self._schedule(effect.duration, proc)
        elif isinstance(effect, Wait):
            self._do_wait(proc, effect.signal, effect.timeout)
        elif isinstance(effect, Join):
            self._do_wait(proc, effect.process.done, effect.timeout)
        elif isinstance(effect, Fork):
            child = self.spawn(effect.generator, name=effect.name, daemon=effect.daemon)
            # A forked child's spans nest under the forker's active span
            # (hedged RPC attempts trace back to the drain that fired them).
            self.obs.tracer.adopt(child, proc)
            proc._set_resume(value=child)
            self._schedule(0.0, proc)
        elif isinstance(effect, Now):
            proc._set_resume(value=self.clock.now)
            self._schedule(0.0, proc)
        elif isinstance(effect, Signal):
            # Sugar: yielding a bare signal waits on it without timeout.
            self._do_wait(proc, effect, None)
        else:
            err = SimulationError(
                f"{proc.name} yielded {effect!r}, which is not a simulation effect"
            )
            self._schedule(0.0, lambda: self._step(proc, throw=err))

    def _do_wait(self, proc: Process, signal: Signal, timeout: Optional[float]) -> None:
        proc.state = ProcessState.WAITING
        settled = {"done": False}
        timer: list[_Scheduled] = []

        def on_fire(sig: Signal) -> None:
            if settled["done"]:
                return
            settled["done"] = True
            if timer:
                timer[0].cancelled = True
            if sig.error is not None:
                proc._set_resume(error=sig.error)
            else:
                proc._set_resume(value=sig._value)
            self._schedule(0.0, proc)

        signal.add_waiter(on_fire)
        if timeout is not None and not settled["done"]:
            def on_timeout() -> None:
                if settled["done"]:
                    return
                settled["done"] = True
                signal.discard_waiter(on_fire)
                proc._set_resume(error=TimeoutFailure(
                    f"wait on {signal.name or 'signal'} timed out after {timeout}s"
                ))
                self._step(proc)

            timer.append(self._schedule(timeout, on_timeout))

    def _resume(self, proc: Process) -> None:
        self._step(proc)

    def __repr__(self) -> str:
        return (f"Kernel(now={self.now:.3f}, queued={len(self._sched)}, "
                f"procs={len(self._processes)})")
