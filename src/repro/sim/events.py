"""Completion signals and the effect vocabulary of simulated processes.

A simulated process is a Python generator.  It communicates with the
kernel by *yielding effects*:

========================  ====================================================
``yield Sleep(d)``        suspend for ``d`` seconds of virtual time
``yield Wait(sig)``       suspend until ``sig`` fires; resumes with its value
``yield Wait(sig, t)``    same, but raise :class:`TimeoutFailure` after ``t``
``yield Fork(gen)``       spawn a child process; resumes with its handle
``yield Join(proc)``      suspend until ``proc`` finishes; resumes with result
``yield Now()``           resumes immediately with the current virtual time
========================  ====================================================

Ordinary ``yield from`` composes sub-generators without kernel
involvement, so simulated code factors into functions naturally.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process

__all__ = ["Signal", "Sleep", "Wait", "Fork", "Join", "Now", "Effect"]


class Signal:
    """A one-shot, single-value completion signal.

    A signal starts *pending*; exactly one of :meth:`fire` or
    :meth:`fail` moves it to *fired*.  Processes wait on it with
    ``yield Wait(signal)``; waiters registered after firing are resumed
    immediately by the kernel.
    """

    __slots__ = ("name", "_fired", "_value", "_error", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: list[Callable[["Signal"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error if self._fired else None

    def fire(self, value: Any = None) -> None:
        """Complete the signal successfully with ``value``."""
        self._complete(value, None)

    def fail(self, error: BaseException) -> None:
        """Complete the signal with an exception."""
        self._complete(None, error)

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._error = error
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(self)

    def add_waiter(self, callback: Callable[["Signal"], None]) -> None:
        """Kernel-internal: register a resumption callback."""
        if self._fired:
            callback(self)
        else:
            self._waiters.append(callback)

    def discard_waiter(self, callback: Callable[["Signal"], None]) -> None:
        """Kernel-internal: remove a callback (used by timed-out waits)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


# Effects are deliberately plain ``__slots__`` classes rather than
# (frozen) dataclasses: one is allocated per kernel event, and a frozen
# dataclass pays an ``object.__setattr__`` per field on every
# construction — measurable at population scale (10⁵+ client sessions).


class Sleep:
    """Suspend the yielding process for ``duration`` seconds."""

    __slots__ = ("duration",)

    def __init__(self, duration: float):
        if duration < 0:
            raise SimulationError(f"cannot sleep for negative time {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Sleep({self.duration!r})"


class Wait:
    """Suspend until ``signal`` fires, optionally bounded by ``timeout``.

    On success the process resumes with the signal's value; if the signal
    failed, its exception is thrown into the process; if the timeout
    elapses first, :class:`repro.errors.TimeoutFailure` is thrown.
    """

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: Optional[float] = None):
        if timeout is not None and timeout < 0:
            raise SimulationError(f"negative timeout {timeout}")
        self.signal = signal
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"Wait({self.signal!r}, timeout={self.timeout!r})"


class Fork:
    """Spawn ``generator`` as a new process; resume with its handle."""

    __slots__ = ("generator", "name", "daemon")

    def __init__(self, generator: Generator, name: str = "",
                 daemon: bool = False):
        self.generator = generator
        self.name = name
        self.daemon = daemon

    def __repr__(self) -> str:
        return f"Fork({self.name!r}, daemon={self.daemon})"


class Join:
    """Suspend until ``process`` finishes; resume with its return value.

    If the process died with an exception, that exception is rethrown in
    the joiner.  An optional timeout raises ``TimeoutFailure``.
    """

    __slots__ = ("process", "timeout")

    def __init__(self, process: "Process", timeout: Optional[float] = None):
        self.process = process
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"Join({self.process!r}, timeout={self.timeout!r})"


class Now:
    """Resume immediately with the current virtual time."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Now()"


Effect = (Sleep, Wait, Fork, Join, Now)
