"""Completion signals and the effect vocabulary of simulated processes.

A simulated process is a Python generator.  It communicates with the
kernel by *yielding effects*:

========================  ====================================================
``yield Sleep(d)``        suspend for ``d`` seconds of virtual time
``yield Wait(sig)``       suspend until ``sig`` fires; resumes with its value
``yield Wait(sig, t)``    same, but raise :class:`TimeoutFailure` after ``t``
``yield Fork(gen)``       spawn a child process; resumes with its handle
``yield Join(proc)``      suspend until ``proc`` finishes; resumes with result
``yield Now()``           resumes immediately with the current virtual time
========================  ====================================================

Ordinary ``yield from`` composes sub-generators without kernel
involvement, so simulated code factors into functions naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .process import Process

__all__ = ["Signal", "Sleep", "Wait", "Fork", "Join", "Now", "Effect"]


class Signal:
    """A one-shot, single-value completion signal.

    A signal starts *pending*; exactly one of :meth:`fire` or
    :meth:`fail` moves it to *fired*.  Processes wait on it with
    ``yield Wait(signal)``; waiters registered after firing are resumed
    immediately by the kernel.
    """

    __slots__ = ("name", "_fired", "_value", "_error", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._waiters: list[Callable[["Signal"], None]] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"signal {self.name!r} has not fired")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error if self._fired else None

    def fire(self, value: Any = None) -> None:
        """Complete the signal successfully with ``value``."""
        self._complete(value, None)

    def fail(self, error: BaseException) -> None:
        """Complete the signal with an exception."""
        self._complete(None, error)

    def _complete(self, value: Any, error: Optional[BaseException]) -> None:
        if self._fired:
            raise SimulationError(f"signal {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._error = error
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(self)

    def add_waiter(self, callback: Callable[["Signal"], None]) -> None:
        """Kernel-internal: register a resumption callback."""
        if self._fired:
            callback(self)
        else:
            self._waiters.append(callback)

    def discard_waiter(self, callback: Callable[["Signal"], None]) -> None:
        """Kernel-internal: remove a callback (used by timed-out waits)."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self._fired else "pending"
        return f"Signal({self.name!r}, {state})"


@dataclass(frozen=True)
class Sleep:
    """Suspend the yielding process for ``duration`` seconds."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError(f"cannot sleep for negative time {self.duration}")


@dataclass(frozen=True)
class Wait:
    """Suspend until ``signal`` fires, optionally bounded by ``timeout``.

    On success the process resumes with the signal's value; if the signal
    failed, its exception is thrown into the process; if the timeout
    elapses first, :class:`repro.errors.TimeoutFailure` is thrown.
    """

    signal: Signal
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout < 0:
            raise SimulationError(f"negative timeout {self.timeout}")


@dataclass(frozen=True)
class Fork:
    """Spawn ``generator`` as a new process; resume with its handle."""

    generator: Generator
    name: str = ""
    daemon: bool = field(default=False)


@dataclass(frozen=True)
class Join:
    """Suspend until ``process`` finishes; resume with its return value.

    If the process died with an exception, that exception is rethrown in
    the joiner.  An optional timeout raises ``TimeoutFailure``.
    """

    process: "Process"
    timeout: Optional[float] = None


@dataclass(frozen=True)
class Now:
    """Resume immediately with the current virtual time."""


Effect = (Sleep, Wait, Fork, Join, Now)
