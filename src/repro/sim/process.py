"""Process handles for the discrete-event kernel."""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

from ..errors import ProcessKilled, SimulationError
from .events import Signal

__all__ = ["Process", "ProcessState"]


class ProcessState(enum.Enum):
    READY = "ready"          # scheduled to run (new or resumed)
    RUNNING = "running"      # currently executing a step
    WAITING = "waiting"      # suspended on a Sleep/Wait/Join
    FINISHED = "finished"    # returned normally
    FAILED = "failed"        # raised an exception
    KILLED = "killed"        # killed externally


_TERMINAL = {ProcessState.FINISHED, ProcessState.FAILED, ProcessState.KILLED}


class Process:
    """Handle for one simulated process (a generator driven by the kernel).

    The completion :class:`Signal` (``proc.done``) fires with the
    generator's return value, or fails with its exception; ``yield
    Join(proc)`` is sugar for waiting on it.

    ``__slots__`` and the ``_terminal`` flag are deliberate: population
    workloads hold 10⁵+ live processes, and ``finished`` is polled once
    per kernel event by ``run_process``, so both memory-per-process and
    the terminal check are hot.
    """

    __slots__ = ("pid", "name", "daemon", "generator", "state", "done",
                 "_terminal", "_resume_value", "_resume_error")

    _counter = 0

    def __init__(self, generator: Generator, name: str = "", daemon: bool = False):
        Process._counter += 1
        self.pid = Process._counter
        self.name = name or f"proc-{self.pid}"
        self.daemon = daemon
        self.generator = generator
        self.state = ProcessState.READY
        self.done = Signal(name=f"{self.name}.done")
        # Kernel bookkeeping: terminal flag (mirrors ``state``, cheap to
        # poll) and the value/exception to send on next resume.  The
        # kernel schedules the Process object itself as a timer action,
        # so no per-process callback object exists at all.
        self._terminal = False
        self._resume_value: Any = None
        self._resume_error: Optional[BaseException] = None

    # -- status ---------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._terminal

    @property
    def result(self) -> Any:
        """Return value of the process; raises if it failed or is alive."""
        if not self.finished:
            raise SimulationError(f"{self.name} has not finished")
        return self.done.value

    @property
    def error(self) -> Optional[BaseException]:
        return self.done.error

    # -- kernel-internal lifecycle ---------------------------------------
    def _set_resume(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._resume_value = value
        self._resume_error = error

    def _take_resume(self) -> tuple[Any, Optional[BaseException]]:
        value, error = self._resume_value, self._resume_error
        self._resume_value, self._resume_error = None, None
        return value, error

    def _finish(self, value: Any) -> None:
        self.state = ProcessState.FINISHED
        self._terminal = True
        self.done.fire(value)

    def _fail(self, error: BaseException) -> None:
        self.state = ProcessState.FAILED
        self._terminal = True
        self.done.fail(error)

    def kill(self) -> None:
        """Terminate the process externally (public API).

        Closes the generator (running its ``finally`` blocks) and fails
        ``done`` with :class:`ProcessKilled`.  Killing a finished or
        already-killed process is a no-op.
        """
        if self._terminal:
            return
        self.state = ProcessState.KILLED
        self._terminal = True
        try:
            self.generator.close()
        except Exception:  # pragma: no cover - close() rarely raises
            pass
        self.done.fail(ProcessKilled(f"{self.name} was killed"))

    # Kept for kernel-internal call sites and backward compatibility.
    _kill = kill

    def __repr__(self) -> str:
        return f"Process({self.name!r}, pid={self.pid}, state={self.state.value})"
