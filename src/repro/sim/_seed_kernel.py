"""Frozen reference kernel: the pre-refactor heapq event loop.

This is the seed implementation of :class:`repro.sim.Kernel`, kept
verbatim (one global binary heap, one event dispatched per loop
iteration, a fresh resume closure per wake).  It exists for two jobs:

* **Differential determinism tests** — ``tests/test_sim_sched.py``
  replays randomized schedules through this kernel and the current one
  and asserts identical event order, timestamps, and traces.  Any
  divergence is a bug in the new scheduler, by definition.

* **Throughput baseline** — the kernel-throughput benchmark (E22a,
  ``benchmarks/bench_population.py``) measures the shipped kernel's
  events/sec against this loop at 10\u2075-client populations; the \u22653x
  speedup gate in CI compares against numbers produced here.

Do not modernise this file; its value is that it does not change.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, Generator, Optional

from ..errors import SimulationError, TimeoutFailure
from ..obs import Observability
from .clock import Clock
from .events import Fork, Join, Now, Signal, Sleep, Wait
from .process import Process, ProcessState
from .rng import RandomRouter, Stream
from .tracing import TraceLog

__all__ = ["Kernel"]


class _Scheduled:
    """Heap entry: an action to run at a virtual time."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def __lt__(self, other: "_Scheduled") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Kernel:
    """Discrete-event scheduler driving generator-based processes."""

    def __init__(self, seed: int = 0, trace: bool = False):
        self.clock = Clock()
        self.random = RandomRouter(seed)
        self.trace = TraceLog(enabled=trace, clock=self.clock)
        self._queue: list[_Scheduled] = []
        self._seq = itertools.count()
        self._processes: list[Process] = []
        self._running: Optional[Process] = None
        # One observability surface per kernel: metrics + spans, timed by
        # the virtual clock, span parentage keyed by the running process.
        self.obs = Observability(self.clock, context_key=lambda: self._running)
        # Hot path: instruments are resolved once, not per event.
        self._m_events = self.obs.metrics.counter("kernel.events")
        self._m_queue_depth = self.obs.metrics.gauge("kernel.queue_depth")
        self._m_wall = self.obs.metrics.counter("kernel.wall_seconds")
        self._m_sim = self.obs.metrics.counter("kernel.sim_seconds")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def current_process(self) -> Optional["Process"]:
        """The process whose generator is being stepped right now (the
        tracer's span-parentage context), or ``None`` between steps.
        Lets code that spawns workers directly — rather than via the
        ``Fork`` effect — adopt the creator's span context."""
        return self._running

    def stream(self, name: str) -> Stream:
        """Named deterministic random stream (see :mod:`repro.sim.rng`)."""
        return self.random.stream(name)

    def spawn(self, generator: Generator, name: str = "", daemon: bool = False) -> Process:
        """Create a process from ``generator`` and schedule its first step."""
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__} "
                "(did you forget to call the generator function?)"
            )
        proc = Process(generator, name=name, daemon=daemon)
        self._processes.append(proc)
        self.trace.record("spawn", process=proc.name)
        self._schedule(0.0, lambda: self._step(proc))
        return proc

    def call_soon(self, action: Callable[[], None], delay: float = 0.0) -> Callable[[], None]:
        """Schedule a plain callback ``delay`` seconds from now.

        Returns a cancel function.  Used by the network layer to model
        message delivery without a full process per message.
        """
        entry = self._schedule(delay, action)

        def cancel() -> None:
            entry.cancelled = True

        return cancel

    def run(self, until: Optional[float] = None,
            stop_when: Optional[Callable[[], bool]] = None) -> None:
        """Run scheduled actions until the queue empties (or ``until``,
        or ``stop_when()`` turns true between actions)."""
        wall_start = time.perf_counter()
        sim_start = self.clock.now
        try:
            while self._queue:
                if stop_when is not None and stop_when():
                    return
                entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    self.clock.advance_to(until)
                    return
                heapq.heappop(self._queue)
                self.clock.advance_to(entry.time)
                self._m_events.value += 1
                self._m_queue_depth.value = len(self._queue)
                entry.action()
            if until is not None and until > self.clock.now:
                self.clock.advance_to(until)
        finally:
            # Wall-per-sim-time: how much real time one virtual second
            # costs (the simulator's own efficiency, tracked per run).
            self._m_wall.value += time.perf_counter() - wall_start
            self._m_sim.value += self.clock.now - sim_start

    def run_process(self, generator: Generator, name: str = "main", until: Optional[float] = None) -> Any:
        """Spawn ``generator``, run until it finishes, return its result.

        The common entry point for tests and examples.  Stops as soon as
        the process completes (background daemons — replication,
        fault injectors — may still have work queued; they simply stop
        here and resume on the next ``run``).  Raises the process's
        exception if it failed, and ``SimulationError`` if the simulation
        ran out of events or hit ``until`` before the process finished.
        """
        proc = self.spawn(generator, name=name)
        self.run(until=until, stop_when=lambda: proc.finished)
        if not proc.finished:
            raise SimulationError(
                f"simulation ended at t={self.now:.3f} before {name!r} finished "
                f"(state={proc.state.value}; deadlock or `until` too small)"
            )
        return proc.result

    def kill(self, proc: Process) -> None:
        """Terminate ``proc`` (public API; no-op if already finished).

        The generator is closed (its ``finally`` blocks run) and any
        joiner is resumed with :class:`~repro.errors.ProcessKilled`.
        """
        proc.kill()
        self.trace.record("kill", process=proc.name)

    def processes(self) -> list[Process]:
        return list(self._processes)

    def blocked_processes(self) -> list[Process]:
        """Processes suspended with nothing scheduled to wake them."""
        return [
            p for p in self._processes
            if p.state is ProcessState.WAITING and not p.daemon
        ]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _schedule(self, delay: float, action: Callable[[], None]) -> _Scheduled:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        entry = _Scheduled(self.clock.now + delay, next(self._seq), action)
        heapq.heappush(self._queue, entry)
        return entry

    def _step(self, proc: Process, *, throw: Optional[BaseException] = None) -> None:
        """Advance ``proc`` by one generator step and interpret its effect."""
        if proc.finished:
            return
        value, error = proc._take_resume()
        if throw is not None:
            error = throw
        proc.state = ProcessState.RUNNING
        self._running = proc
        try:
            if error is not None:
                effect = proc.generator.throw(error)
            else:
                effect = proc.generator.send(value)
        except StopIteration as stop:
            proc._finish(stop.value)
            self.trace.record("finish", process=proc.name)
            return
        except BaseException as exc:
            proc._fail(exc)
            self.trace.record("fail", process=proc.name, error=repr(exc))
            return
        finally:
            self._running = None
        self._interpret(proc, effect)

    def _interpret(self, proc: Process, effect: Any) -> None:
        if isinstance(effect, Sleep):
            proc.state = ProcessState.WAITING
            self._schedule(effect.duration, lambda: self._resume(proc))
        elif isinstance(effect, Wait):
            self._do_wait(proc, effect.signal, effect.timeout)
        elif isinstance(effect, Join):
            self._do_wait(proc, effect.process.done, effect.timeout)
        elif isinstance(effect, Fork):
            child = self.spawn(effect.generator, name=effect.name, daemon=effect.daemon)
            # A forked child's spans nest under the forker's active span
            # (hedged RPC attempts trace back to the drain that fired them).
            self.obs.tracer.adopt(child, proc)
            proc._set_resume(value=child)
            self._schedule(0.0, lambda: self._step(proc))
        elif isinstance(effect, Now):
            proc._set_resume(value=self.clock.now)
            self._schedule(0.0, lambda: self._step(proc))
        elif isinstance(effect, Signal):
            # Sugar: yielding a bare signal waits on it without timeout.
            self._do_wait(proc, effect, None)
        else:
            err = SimulationError(
                f"{proc.name} yielded {effect!r}, which is not a simulation effect"
            )
            self._schedule(0.0, lambda: self._step(proc, throw=err))

    def _do_wait(self, proc: Process, signal: Signal, timeout: Optional[float]) -> None:
        proc.state = ProcessState.WAITING
        settled = {"done": False}
        timer: list[_Scheduled] = []

        def on_fire(sig: Signal) -> None:
            if settled["done"]:
                return
            settled["done"] = True
            if timer:
                timer[0].cancelled = True
            if sig.error is not None:
                proc._set_resume(error=sig.error)
            else:
                proc._set_resume(value=sig._value)
            self._schedule(0.0, lambda: self._step(proc))

        signal.add_waiter(on_fire)
        if timeout is not None and not settled["done"]:
            def on_timeout() -> None:
                if settled["done"]:
                    return
                settled["done"] = True
                signal.discard_waiter(on_fire)
                proc._set_resume(error=TimeoutFailure(
                    f"wait on {signal.name or 'signal'} timed out after {timeout}s"
                ))
                self._step(proc)

            timer.append(self._schedule(timeout, on_timeout))

    def _resume(self, proc: Process) -> None:
        self._step(proc)

    def __repr__(self) -> str:
        return f"Kernel(now={self.now:.3f}, queued={len(self._queue)}, procs={len(self._processes)})"
