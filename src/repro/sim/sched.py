"""Event schedulers: the data structure under the kernel's event loop.

The kernel's ordering contract is strict ``(time, seq)`` order — two
actions scheduled for the same instant run in scheduling order, and
determinism never depends on container internals.  This module provides
two interchangeable structures honouring that contract:

* :class:`HeapScheduler` — the original design: one global binary heap
  of :class:`_Scheduled` entries.  Correct and simple, but every push
  and pop funnels O(log n) comparisons through the Python-level
  ``_Scheduled.__lt__``, which dominates kernel time once populations
  reach 10⁵ clients.  Kept verbatim as (a) the reference
  implementation differential determinism tests compare against and
  (b) the baseline the kernel-throughput benchmark (E22a) measures
  speedups over.

* :class:`WheelScheduler` — a timer-wheel/slotted-heap hybrid (a
  calendar queue with heap-ordered slots).  Entries hash into
  fixed-width time slots (O(1) list append, no per-push allocation);
  slots are ordered by a small heap of integer keys (C-speed
  comparisons); a slot is stably sorted lazily by time — C-speed via
  ``attrgetter``, with seq order riding on sort stability — when the
  clock reaches it.  Same-instant runs are
  surfaced as whole batches so the kernel can dispatch them without
  per-event queue traffic.  Slotting is a pure performance choice:
  every slot is sorted by ``(time, seq)`` before dispatch and slots are
  visited in key order, so the observable event order is identical to
  the heap's for any schedule (property-tested in
  ``tests/test_sim_sched.py``).

Both expose the same four-method protocol the kernel drives:
``push(entry)``, ``peek_time()`` (drop cancelled heads, return the next
event time or ``None``), ``pop_batch(out)`` (move every live entry at
exactly that time into ``out``, in seq order — only valid immediately
after a successful ``peek_time``), and ``requeue(entries)`` (put
not-yet-run entries back, preserving their stamps, when ``run()`` stops
mid-batch).
"""

from __future__ import annotations

import heapq
from bisect import insort
from operator import attrgetter
from typing import Callable, Iterable, Optional, Protocol, Sequence, Union

from ..errors import SimulationError

__all__ = ["_Scheduled", "EventScheduler", "HeapScheduler", "WheelScheduler",
           "make_scheduler", "DEFAULT_SLOT_WIDTH"]


class _Scheduled:
    """An action to run at virtual ``time``; ties broken by ``seq``."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Scheduled") -> bool:
        # Used by the heap reference on every sift, and by the wheel
        # only on the rare insort-into-active-slot path; bulk slot
        # sorting goes through the stable C-speed time key instead.
        return (self.time, self.seq) < (other.time, other.seq)


class EventScheduler(Protocol):
    """The protocol both schedulers implement (see module docstring)."""

    name: str

    def push(self, entry: _Scheduled) -> None: ...
    def peek_time(self) -> Optional[float]: ...
    def pop_batch(self, out: list) -> None: ...
    def requeue(self, entries: Sequence[_Scheduled]) -> None: ...
    def __len__(self) -> int: ...


class HeapScheduler:
    """The seed structure: a single binary heap of entries."""

    name = "heap"

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: list[_Scheduled] = []

    def push(self, entry: _Scheduled) -> None:
        heapq.heappush(self._queue, entry)

    def requeue(self, entries: Iterable[_Scheduled]) -> None:
        for entry in entries:
            heapq.heappush(self._queue, entry)

    def peek_time(self) -> Optional[float]:
        queue = self._queue
        while queue:
            head = queue[0]
            if head.cancelled:
                heapq.heappop(queue)
                continue
            return head.time
        return None

    def pop_batch(self, out: list) -> None:
        queue = self._queue
        when = queue[0].time
        while queue and queue[0].time == when:
            entry = heapq.heappop(queue)
            if not entry.cancelled:
                out.append(entry)

    def __len__(self) -> int:
        return len(self._queue)

    def __repr__(self) -> str:
        return f"HeapScheduler(pending={len(self._queue)})"


#: Slot width in virtual seconds.  Simulated RPC latencies sit in the
#: 2–80 ms band, so ~2 ms slots keep a handful of events per slot at
#: population scale without inflating the key heap for long quiet runs.
DEFAULT_SLOT_WIDTH = 1.0 / 512.0

#: Times at or beyond this slot key (including +inf timeouts) all share
#: one far-future slot.  Slotting never affects order — slots sort by
#: (time, seq) before dispatch — so clamping is safe at any horizon.
_FAR_KEY = 1 << 62

#: Stable-sort key for slot activation: time only, C-speed, zero
#: allocation.  Correct because buckets are append-ordered by globally
#: increasing ``seq`` (see ``push``), so a *stable* sort on time alone
#: yields exact (time, seq) order without building a key tuple per
#: entry — tuple churn at 10⁵ events/s is what feeds the GC.
_TIME_KEY = attrgetter("time")


class WheelScheduler:
    """Timer-wheel/slotted-heap hybrid (calendar queue, heap-ordered).

    ``_buckets`` maps integer slot keys (``int(time / width)``) to
    lists of :class:`_Scheduled` entries; ``_keys`` is a heap over the
    live keys.  When the kernel reaches a slot it is popped, stably
    sorted once by time, and drained front to back through
    ``_active``/``_active_pos``; pushes landing in the active slot
    bisect into the unconsumed tail, so intra-slot order stays exact.

    Ordering invariant: every ``push`` of a *new* entry appends with a
    ``seq`` larger than anything already in the structure (the kernel's
    sequence counter is global and monotonic), so bucket ties are
    already in seq order and the stable time-sort preserves them.  The
    two paths that re-insert *old* entries — ``requeue`` of an
    interrupted batch, and a shelved active tail — go through
    ``insort`` (full ``(time, seq)`` comparison) and a pre-sorted
    prefix respectively, so the invariant survives both.
    """

    name = "wheel"

    __slots__ = ("width", "_inv_width", "_buckets", "_keys",
                 "_active", "_active_pos", "_active_key", "_count")

    def __init__(self, width: float = DEFAULT_SLOT_WIDTH):
        if width <= 0:
            raise SimulationError(f"slot width must be positive, got {width}")
        self.width = width
        self._inv_width = 1.0 / width
        self._buckets: dict[int, list[_Scheduled]] = {}
        self._keys: list[int] = []
        self._active: list[_Scheduled] = []
        self._active_pos = 0
        self._active_key = -1
        self._count = 0

    def push(self, entry: _Scheduled) -> None:
        scaled = entry.time * self._inv_width
        key = _FAR_KEY if scaled >= _FAR_KEY else int(scaled)
        if key == self._active_key:
            # Landing in the slot being drained: bisect into the
            # unconsumed tail (new stamps always sort at or after the
            # drain position, so consumed entries are never revisited).
            insort(self._active, entry, lo=self._active_pos)
        else:
            bucket = self._buckets.get(key)
            if bucket is None:
                self._buckets[key] = [entry]
                heapq.heappush(self._keys, key)
            else:
                bucket.append(entry)
        self._count += 1

    def requeue(self, entries: Iterable[_Scheduled]) -> None:
        for entry in entries:
            self.push(entry)

    def peek_time(self) -> Optional[float]:
        while True:
            active = self._active
            pos = self._active_pos
            size = len(active)
            while pos < size:
                if active[pos].cancelled:
                    pos += 1
                    self._count -= 1
                else:
                    break
            self._active_pos = pos
            keys = self._keys
            if pos < size:
                if keys and keys[0] < self._active_key:
                    # A run() that stopped early (hit `until`) left this
                    # slot mid-drain, and later pushes landed in an
                    # earlier slot.  Shelve the unconsumed tail and let
                    # the loop activate the earlier slot first.
                    self._shelve_active_tail(pos)
                    continue
                return active[pos].time
            if not keys:
                return None
            self._activate(heapq.heappop(keys))

    def _shelve_active_tail(self, pos: int) -> None:
        # The tail is (time, seq)-sorted; any append that follows
        # carries a larger seq, so the stable re-sort at the next
        # activation still lands in exact order.
        tail = self._active[pos:]
        self._buckets[self._active_key] = tail
        heapq.heappush(self._keys, self._active_key)
        self._active = []
        self._active_pos = 0
        self._active_key = -1

    def _activate(self, key: int) -> None:
        bucket = self._buckets.pop(key)
        bucket.sort(key=_TIME_KEY)
        self._active = bucket
        self._active_pos = 0
        self._active_key = key

    def pop_batch(self, out: list) -> None:
        active = self._active
        pos = self._active_pos
        size = len(active)
        when = active[pos].time
        start = pos
        while pos < size:
            entry = active[pos]
            if entry.time != when:
                break
            pos += 1
            if not entry.cancelled:
                out.append(entry)
        self._count -= pos - start
        self._active_pos = pos

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return (f"WheelScheduler(pending={self._count}, "
                f"slots={len(self._buckets)}, width={self.width})")


_SCHEDULERS = {
    "heap": HeapScheduler,
    "wheel": WheelScheduler,
}


def make_scheduler(spec: Union[str, EventScheduler, None]) -> EventScheduler:
    """Resolve a scheduler choice: a name, an instance, or ``None``
    (the default wheel)."""
    if spec is None:
        return WheelScheduler()
    if isinstance(spec, str):
        try:
            return _SCHEDULERS[spec]()
        except KeyError:
            raise SimulationError(
                f"unknown scheduler {spec!r}; known: {sorted(_SCHEDULERS)}"
            ) from None
    return spec
