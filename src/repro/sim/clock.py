"""Virtual time for the discrete-event kernel.

Simulated time is a float number of *seconds*.  Nothing in the simulator
ever consults the wall clock; a run is a pure function of its inputs.
"""

from __future__ import annotations

from ..errors import SimulationError

__all__ = ["Clock"]


class Clock:
    """A monotonically non-decreasing virtual clock.

    Only the kernel advances the clock; user code reads it via
    :attr:`now` (or ``kernel.now``).
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.  Moving backwards is a bug."""
        if t < self._now:
            raise SimulationError(
                f"clock would move backwards: {self._now} -> {t}"
            )
        self._now = t

    def __repr__(self) -> str:
        return f"Clock(now={self._now:.6f})"
