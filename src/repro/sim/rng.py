"""Named, seed-derived random streams.

All randomness in a simulation flows through a :class:`RandomRouter`.
Each consumer asks for a *named* stream; the stream's seed is derived
deterministically from the root seed and the name, so adding a new
consumer never perturbs the random sequence seen by existing consumers.
This is the standard trick for keeping large discrete-event simulations
reproducible as they grow.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Iterator, Sequence, TypeVar

__all__ = ["RandomRouter", "Stream"]

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Stream:
    """A deterministic random stream with simulation-oriented helpers."""

    def __init__(self, seed: int, name: str):
        self.name = name
        self._rng = random.Random(seed)

    # -- thin wrappers -------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    # -- simulation helpers --------------------------------------------
    def exponential(self, mean: float) -> float:
        """Exponentially distributed delay with the given mean (>= 0)."""
        if mean <= 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        return self._rng.random() < p

    def zipf_index(self, n: int, skew: float = 1.0) -> int:
        """An index in ``[0, n)`` drawn from a Zipf-like distribution.

        Index 0 is the most popular.  ``skew == 0`` degenerates to
        uniform.  Uses inverse-CDF sampling over the finite support.
        """
        if n <= 0:
            raise ValueError("zipf_index needs n >= 1")
        if skew <= 0:
            return self._rng.randrange(n)
        weights = [1.0 / (i + 1) ** skew for i in range(n)]
        total = sum(weights)
        target = self._rng.random() * total
        acc = 0.0
        for i, w in enumerate(weights):
            acc += w
            if target < acc:
                return i
        return n - 1

    def lognormal(self, mean: float, sigma: float = 1.0) -> float:
        """Lognormally distributed delay with the given *mean* (>= 0).

        Parameterised by the distribution's mean rather than ``mu`` so
        open-loop arrival processes can dial a target rate directly:
        ``mu = ln(mean) - sigma**2 / 2`` makes ``E[X] == mean`` while
        ``sigma`` controls how heavy the tail is (burstiness).
        """
        if mean <= 0:
            return 0.0
        mu = math.log(mean) - 0.5 * sigma * sigma
        return self._rng.lognormvariate(mu, sigma)

    def pareto_latency(self, floor: float, alpha: float = 2.5) -> float:
        """Heavy-tailed latency: ``floor`` plus a Pareto-distributed tail.

        WAN latencies are famously heavy-tailed; this gives the benchmark
        workloads a realistic latency spread without a trace file.
        """
        return floor * (1.0 + self._rng.paretovariate(alpha) - 1.0)

    def __repr__(self) -> str:
        return f"Stream({self.name!r})"


class RandomRouter:
    """Hands out named deterministic streams derived from one root seed."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* stream object
        (which therefore continues its sequence, rather than restarting).
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        s = Stream(_derive_seed(self.root_seed, name), name)
        self._streams[name] = s
        return s

    def streams(self) -> Iterator[Stream]:
        return iter(self._streams.values())

    def __repr__(self) -> str:
        return f"RandomRouter(root_seed={self.root_seed}, streams={len(self._streams)})"
