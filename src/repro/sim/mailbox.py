"""An unbounded FIFO channel between simulated processes.

The kernel's :class:`~repro.sim.events.Signal` is one-shot; a
:class:`Mailbox` is the reusable many-message primitive built on it:
producers ``put`` without blocking, consumers ``yield from get()`` and
block (in virtual time) until an item arrives.  Closing wakes all
consumers; a drained, closed mailbox returns the ``on_closed`` sentinel.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator, Optional

from ..errors import SimulationError
from .events import Signal, Wait

__all__ = ["Mailbox", "CLOSED"]


class _Closed:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<mailbox CLOSED>"


CLOSED = _Closed()


class Mailbox:
    """FIFO queue with blocking (virtual-time) consumers."""

    def __init__(self, name: str = "mailbox"):
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Signal] = deque()
        self._closed = False

    # -- producer side ------------------------------------------------------
    def put(self, item: Any) -> None:
        if self._closed:
            raise SimulationError(f"{self.name}: put() after close()")
        self._items.append(item)
        self._wake_one()

    def close(self) -> None:
        """No more puts; pending gets drain, then receive ``CLOSED``."""
        self._closed = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.fired:
                waiter.fire(None)

    # -- consumer side ------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Generator[Any, Any, Any]:
        """Next item, blocking until one arrives.

        Returns :data:`CLOSED` when the mailbox is closed and drained.
        A ``timeout`` raises :class:`~repro.errors.TimeoutFailure`.
        """
        while True:
            if self._items:
                return self._items.popleft()
            if self._closed:
                return CLOSED
            signal = Signal(name=f"{self.name}.get")
            self._waiters.append(signal)
            yield Wait(signal, timeout=timeout)

    def get_nowait(self) -> Any:
        """Next item or :data:`CLOSED` or raise if simply empty."""
        if self._items:
            return self._items.popleft()
        if self._closed:
            return CLOSED
        raise SimulationError(f"{self.name}: empty (and not closed)")

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.fired:
                waiter.fire(None)
                return

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"Mailbox({self.name!r}, {len(self._items)} queued, {state})"
