"""Reproduction of *Specifying Weak Sets* (Wing & Steere, ICDCS 1995).

The package builds, from scratch, everything the paper describes or
depends on:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.net` — wide-area network with crashes, link failures, and
  partitions;
* :mod:`repro.store` — distributed object repository (scattered
  collections, stale replicas, the ``reachable`` ground truth);
* :mod:`repro.spec` — the paper's Larch-style specifications, executable,
  plus a trace conformance checker;
* :mod:`repro.weaksets` — the four weak-set design points and the strong
  (locking) baseline, as honest distributed programs;
* :mod:`repro.dynsets` — the dynamic-sets distributed file system layer;
* :mod:`repro.wan` — the paper's motivating WWW/library/restaurant
  workloads;
* :mod:`repro.bench` — the evaluation harness (experiments E1–E10).

Quickstart: see ``examples/quickstart.py`` or README.md.
"""

from . import errors
from .errors import FailureException
from .obs import MetricsRegistry, Observability, Span, Tracer
from .sim import Kernel, Sleep
from .net import FixedLatency, Network, ParetoLatency, UniformLatency, full_mesh, wan_clusters
from .store import Element, Repository, World, figure2_world
from .spec import (
    ALL_FIGURES,
    FunctionalSet,
    check_conformance,
    conformance_matrix,
    spec_by_id,
    taxonomy_table,
)
from .weaksets import (
    DynamicSet,
    GrowOnlySet,
    ImmutableSet,
    SnapshotSet,
    StrongSet,
    install_lock_service,
    make_weak_set,
    select,
)

__version__ = "0.1.0"

__all__ = [
    "ALL_FIGURES",
    "DynamicSet",
    "Element",
    "FailureException",
    "FixedLatency",
    "FunctionalSet",
    "GrowOnlySet",
    "ImmutableSet",
    "Kernel",
    "MetricsRegistry",
    "Network",
    "Observability",
    "ParetoLatency",
    "Repository",
    "Sleep",
    "SnapshotSet",
    "Span",
    "StrongSet",
    "Tracer",
    "UniformLatency",
    "World",
    "check_conformance",
    "conformance_matrix",
    "errors",
    "figure2_world",
    "full_mesh",
    "install_lock_service",
    "make_weak_set",
    "select",
    "spec_by_id",
    "taxonomy_table",
    "wan_clusters",
]
