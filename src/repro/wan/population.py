"""Population-scale open-loop load engine.

The paper's environment is "thousands of workstations" scattered over
the wide area; earlier experiments drive one client carefully, this
module drives a *population*.  The model follows modern load tools
(locust scenarios, k6 arrival-rate executors):

* A :class:`Behavior` is a named client script with a weight; the mix
  of behaviours in flight follows the weights.
* A :class:`Stage` is a ramp step: hold/ramp the arrival rate for a
  duration, with per-stage SLOs (failure-rate ceiling, p95 latency
  bound) judged over the sessions that *arrived* during the stage.
* Arrivals are **open-loop**: inter-arrival gaps are drawn from a
  heavy-tailed process (lognormal or Pareto; exponential for a Poisson
  control) at the stage's current rate, independent of completions —
  slow responses do not throttle offered load, which is exactly what
  makes open-loop populations stress a service.

Sessions are spawned as *transient* kernel processes, so a run's
memory tracks the live population, not the arrival count — 10⁵+
arrivals are routine.  A configurable fraction of sessions is
*audited*: the session runs a recording weak-set iteration and the
trace is checked against a figure specification on the spot
(``population.audit_violations`` stays at zero or the run is wrong).

Everything is observable through ``population.*`` metrics on the
scenario kernel's registry; :meth:`PopulationEngine.run` additionally
returns one :class:`StageResult` per stage with the SLO verdicts.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional, Sequence

from ..errors import FailureException, SimulationError, StoreError
from ..net.wire import BANDWIDTH_PRESETS, apply_bandwidth_preset
from ..sim.events import Sleep
from ..sim.rng import Stream
from ..spec import check_conformance, spec_by_id
from ..weaksets import make_weak_set
from .workload import Scenario

__all__ = ["Behavior", "Stage", "PopulationSpec", "StageResult",
           "PopulationEngine", "default_behaviors"]

#: Exceptions a session may die with that count as *failures* (the SLO
#: denominator) rather than bugs: unreachable hosts, timeouts, policy
#: rejections.  Anything else propagates — a population run must not
#: silently eat programming errors.
_SESSION_FAILURES = (FailureException, StoreError)


@dataclass(frozen=True)
class Behavior:
    """A named client script plus its share of the traffic mix.

    ``session`` is called as ``session(scenario, stream)`` and must
    return a generator to run as the session body.  ``weight`` is
    relative (any positive scale); the engine normalises.
    """

    name: str
    weight: float
    session: Callable[[Scenario, Stream], Generator]


@dataclass(frozen=True)
class Stage:
    """One ramp step of the arrival schedule.

    The arrival rate ramps linearly from the previous stage's target
    (0 for the first stage unless ``start_rate`` says otherwise) to
    ``arrival_rate`` over ``duration`` seconds — set them equal for a
    constant-rate stage.  SLOs are judged over sessions that arrived
    during the stage: ``max_failure_rate`` bounds failed/completed,
    ``max_p95_latency`` bounds the 95th percentile session latency.
    """

    duration: float
    arrival_rate: float
    name: str = ""
    start_rate: Optional[float] = None      # None: previous stage's target
    max_failure_rate: float = 1.0           # 1.0 = no failure SLO
    max_p95_latency: float = math.inf       # inf = no latency SLO


@dataclass(frozen=True)
class PopulationSpec:
    """Dials for a population run (the load side of a scenario)."""

    behaviors: tuple[Behavior, ...]
    stages: tuple[Stage, ...]
    arrival: str = "lognormal"              # lognormal | pareto | exponential
    lognormal_sigma: float = 1.0            # tail weight of lognormal gaps
    pareto_alpha: float = 1.5               # tail index of Pareto gaps (>1)
    audit_fraction: float = 0.0             # sessions running a recorded,
                                            # conformance-checked iteration
    audit_semantics: str = "dynamic"        # weak-set impl audited sessions use
    audit_figure: str = "fig6"              # spec the audit trace is checked against
    drain_grace: float = 10.0               # extra virtual seconds for
                                            # in-flight sessions to finish
    bandwidth_preset: Optional[str] = None  # retro-fit the scenario's links
                                            # with a named bandwidth preset
                                            # ("lan" | "wan" | "mobile") so
                                            # population runs can load a
                                            # constrained wire

    def __post_init__(self) -> None:
        if not self.behaviors:
            raise SimulationError("population needs at least one behavior")
        if not self.stages:
            raise SimulationError("population needs at least one stage")
        if any(b.weight <= 0 for b in self.behaviors):
            raise SimulationError("behavior weights must be positive")
        if self.arrival not in ("lognormal", "pareto", "exponential"):
            raise SimulationError(
                f"unknown arrival process {self.arrival!r}; "
                "known: lognormal, pareto, exponential")
        if self.pareto_alpha <= 1.0:
            raise SimulationError("pareto_alpha must exceed 1 (finite mean)")
        if (self.bandwidth_preset is not None
                and self.bandwidth_preset not in BANDWIDTH_PRESETS):
            raise SimulationError(
                f"unknown bandwidth preset {self.bandwidth_preset!r}; "
                f"known: {sorted(BANDWIDTH_PRESETS)}")

    @property
    def total_duration(self) -> float:
        return sum(s.duration for s in self.stages)


@dataclass
class StageResult:
    """Per-stage outcome: load offered, sessions finished, SLO verdict."""

    index: int
    name: str
    target_rate: float
    duration: float = 0.0
    arrivals: int = 0
    completions: int = 0
    failures: int = 0
    audit_violations: int = 0
    p95_latency: float = 0.0
    p95_ok_latency: float = 0.0
    violations: tuple[str, ...] = ()
    _latencies: list = field(default_factory=list, repr=False)
    _ok_latencies: list = field(default_factory=list, repr=False)

    @property
    def failure_rate(self) -> float:
        done = self.completions
        return (self.failures / done) if done else 0.0

    @property
    def goodput(self) -> float:
        """Successful sessions per second of stage wall-clock.

        *The* overload curve: offered load keeps climbing open-loop,
        but goodput is what the service actually delivers.  A protected
        server's goodput plateaus at capacity; a collapsing one's falls
        as work is wasted on doomed retries and timed-out completions.
        """
        if self.duration <= 0.0:
            return 0.0
        return (self.completions - self.failures) / self.duration

    @property
    def slo_ok(self) -> bool:
        return not self.violations


def default_behaviors(scenario: Scenario) -> tuple[Behavior, ...]:
    """The stock mix: mostly readers, some scanners, few writers.

    * ``reader`` (weight 8) — read membership nearest-first, fetch one
      member's value (cache-friendly, the common lookup).
    * ``scanner`` (weight 1) — full membership read plus a handful of
      fetches (the "ls -l" shape from the dynamic-sets workloads).
    * ``writer`` (weight 1) — add a fresh member, then remove it:
      exercises the write pipeline while keeping the collection's size
      stationary under any run length.
    """
    coll = scenario.coll_id
    counter = itertools.count(1)

    def reader(sc: Scenario, stream: Stream) -> Generator:
        repo = sc.repo()
        view = yield from repo.read_membership(coll)
        members = sorted(view.members, key=lambda e: e.name)
        if members:
            target = members[stream.randint(0, len(members) - 1)]
            yield from repo.fetch(target, use_cache=True)

    def scanner(sc: Scenario, stream: Stream) -> Generator:
        repo = sc.repo()
        view = yield from repo.read_membership(coll)
        members = sorted(view.members, key=lambda e: e.name)
        for target in members[:4]:
            yield from repo.fetch(target, use_cache=True)

    def writer(sc: Scenario, stream: Stream) -> Generator:
        repo = sc.repo()
        i = next(counter)
        element = yield from repo.add(coll, f"pop-{i:07d}",
                                      value=f"pop-payload-{i}")
        yield from repo.remove(coll, element)

    return (
        Behavior("reader", 8.0, reader),
        Behavior("scanner", 1.0, scanner),
        Behavior("writer", 1.0, writer),
    )


class PopulationEngine:
    """Drives an open-loop population against a built scenario.

    One engine owns one run: construct, :meth:`run`, read the stage
    results (and the ``population.*`` metrics on the scenario kernel).
    """

    def __init__(self, scenario: Scenario, spec: PopulationSpec):
        self.scenario = scenario
        self.spec = spec
        self.kernel = scenario.kernel
        if spec.bandwidth_preset is not None:
            apply_bandwidth_preset(scenario.net.topology,
                                   spec.bandwidth_preset,
                                   access_nodes=(scenario.client,))
        self.stream = self.kernel.stream("population.arrivals")
        self.stage_results: list[StageResult] = [
            StageResult(index=i, name=s.name or f"stage-{i}",
                        target_rate=s.arrival_rate, duration=s.duration)
            for i, s in enumerate(spec.stages)
        ]
        self.active = 0
        self.peak_active = 0
        self._audit_spec = spec_by_id(spec.audit_figure)
        # Weighted-choice table (few behaviours: linear scan is fine).
        self._cum_weights: list[float] = list(
            itertools.accumulate(b.weight for b in spec.behaviors))
        # population.* metrics: resolved once, per-behaviour keyed.
        metrics = self.kernel.obs.metrics
        self._m_arrivals = metrics.counter("population.arrivals")
        self._m_completions = metrics.counter("population.completions")
        self._m_failures = metrics.counter("population.failures")
        self._m_active = metrics.gauge("population.active")
        self._m_peak = metrics.gauge("population.peak_active")
        self._m_audits = metrics.counter("population.audits")
        self._m_violations = metrics.counter("population.audit_violations")
        self._b_sessions = {b.name: metrics.counter(
            f"population.sessions.{b.name}") for b in spec.behaviors}
        self._b_failures = {b.name: metrics.counter(
            f"population.failures.{b.name}") for b in spec.behaviors}
        self._b_latency = {b.name: metrics.histogram(
            f"population.latency.{b.name}") for b in spec.behaviors}

    # -- driving -------------------------------------------------------
    def run(self) -> list[StageResult]:
        """Run the whole arrival schedule; return per-stage results.

        Advances the scenario kernel until every stage has elapsed plus
        ``drain_grace`` for stragglers, then freezes SLO verdicts.
        Sessions still in flight after the grace window count as
        arrived-but-not-completed (they are neither failures nor
        completions — the SLO denominator is completed sessions).
        """
        start = self.kernel.now
        self.kernel.spawn(self._driver(), name="population-driver",
                          daemon=True)
        self.kernel.run(until=start + self.spec.total_duration
                        + self.spec.drain_grace)
        return self._finalize()

    def _driver(self) -> Generator:
        """The arrival process: one daemon emitting the whole schedule."""
        spec = self.spec
        prev_target = 0.0
        for index, stage in enumerate(spec.stages):
            start_rate = (stage.start_rate if stage.start_rate is not None
                          else prev_target)
            stage_start = self.kernel.now
            stage_end = stage_start + stage.duration
            while True:
                now = self.kernel.now
                if now >= stage_end:
                    break
                # Linear ramp: interpolate the instantaneous rate, then
                # draw one heavy-tailed gap with that mean.
                frac = (now - stage_start) / stage.duration
                rate = start_rate + (stage.arrival_rate - start_rate) * frac
                if rate <= 0.0:
                    # Ramp still at zero: idle forward a slice.
                    yield Sleep(stage.duration * 0.05)
                    continue
                yield Sleep(self._gap(1.0 / rate))
                if self.kernel.now >= stage_end:
                    break
                self._arrive(index)
            prev_target = stage.arrival_rate

    def _gap(self, mean: float) -> float:
        spec = self.spec
        stream = self.stream
        if spec.arrival == "lognormal":
            return stream.lognormal(mean, spec.lognormal_sigma)
        if spec.arrival == "pareto":
            alpha = spec.pareto_alpha
            return stream.pareto_latency(mean * (alpha - 1.0) / alpha, alpha)
        return stream.exponential(mean)

    def _arrive(self, stage_index: int) -> None:
        stream = self.stream
        target = stream.random() * self._cum_weights[-1]
        for i, acc in enumerate(self._cum_weights):
            if target < acc:
                behavior = self.spec.behaviors[i]
                break
        else:  # pragma: no cover - float edge
            behavior = self.spec.behaviors[-1]
        audited = (self.spec.audit_fraction > 0.0
                   and stream.bernoulli(self.spec.audit_fraction))
        self._m_arrivals.inc()
        self.stage_results[stage_index].arrivals += 1
        self.kernel.spawn(self._session(behavior, stage_index, audited),
                          name="", transient=True)

    # -- sessions ------------------------------------------------------
    def _session(self, behavior: Behavior, stage_index: int,
                 audited: bool) -> Generator:
        kernel = self.kernel
        result = self.stage_results[stage_index]
        self.active += 1
        self._m_active.set(self.active)
        if self.active > self.peak_active:
            self.peak_active = self.active
            self._m_peak.set(self.active)
        started = kernel.now
        failed = False
        try:
            if audited:
                yield from self._audited_iteration(result)
            else:
                yield from behavior.session(self.scenario, self.stream)
        except _SESSION_FAILURES:
            failed = True
        finally:
            self.active -= 1
            self._m_active.set(self.active)
        elapsed = kernel.now - started
        self._m_completions.inc()
        self._b_sessions[behavior.name].inc()
        self._b_latency[behavior.name].observe(elapsed)
        result.completions += 1
        result._latencies.append(elapsed)
        if failed:
            self._m_failures.inc()
            self._b_failures[behavior.name].inc()
            result.failures += 1
        else:
            result._ok_latencies.append(elapsed)

    def _audited_iteration(self, result: StageResult) -> Generator:
        """A recorded full iteration, conformance-checked on the spot."""
        ws = make_weak_set(self.scenario.world, self.scenario.client,
                           self.scenario.coll_id,
                           semantics=self.spec.audit_semantics, record=True)
        yield from ws.elements().drain()
        self._m_audits.inc()
        report = check_conformance(ws.last_trace, self._audit_spec,
                                   self.scenario.world)
        if not report.conformant:
            self._m_violations.inc()
            result.audit_violations += 1

    # -- verdicts ------------------------------------------------------
    def _finalize(self) -> list[StageResult]:
        for stage, result in zip(self.spec.stages, self.stage_results):
            latencies = sorted(result._latencies)
            if latencies:
                rank = max(0, math.ceil(0.95 * len(latencies)) - 1)
                result.p95_latency = latencies[rank]
            ok_latencies = sorted(result._ok_latencies)
            if ok_latencies:
                rank = max(0, math.ceil(0.95 * len(ok_latencies)) - 1)
                result.p95_ok_latency = ok_latencies[rank]
            violations = []
            if result.failure_rate > stage.max_failure_rate:
                violations.append(
                    f"failure rate {result.failure_rate:.4f} > "
                    f"{stage.max_failure_rate:.4f}")
            if result.p95_latency > stage.max_p95_latency:
                violations.append(
                    f"p95 latency {result.p95_latency:.4f}s > "
                    f"{stage.max_p95_latency:.4f}s")
            if result.audit_violations:
                violations.append(
                    f"{result.audit_violations} conformance violation(s)")
            result.violations = tuple(violations)
        return self.stage_results

    def __repr__(self) -> str:
        return (f"PopulationEngine(behaviors={len(self.spec.behaviors)}, "
                f"stages={len(self.spec.stages)}, active={self.active})")
