"""The paper's motivating wide-area workloads (§1).

Three concrete scenarios — WWW ``.face`` files, the library information
system, and Pittsburgh restaurant menus — plus the generic scenario
builder and background mutator they share.
"""

from .library import CatalogEntry, LibraryWorkload, build_library
from .mirror import CATEGORIES, MirrorWorkload, build_mirror
from .restaurants import CUISINES, Menu, RestaurantsWorkload, build_restaurants
from .web import FaceRecord, FacesWorkload, build_faces
from .workload import Mutator, Scenario, ScenarioSpec, build_scenario

__all__ = [
    "CATEGORIES",
    "CUISINES",
    "CatalogEntry",
    "FaceRecord",
    "FacesWorkload",
    "LibraryWorkload",
    "Menu",
    "MirrorWorkload",
    "Mutator",
    "RestaurantsWorkload",
    "Scenario",
    "ScenarioSpec",
    "build_faces",
    "build_library",
    "build_mirror",
    "build_restaurants",
    "build_scenario",
]
