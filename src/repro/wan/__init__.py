"""The paper's motivating wide-area workloads (§1).

Three concrete scenarios — WWW ``.face`` files, the library information
system, and Pittsburgh restaurant menus — plus the generic scenario
builder and background mutator they share, and the population-scale
open-loop load engine that drives 10⁵+ simulated clients against any
built scenario.
"""

from .library import CatalogEntry, LibraryWorkload, build_library
from .mirror import CATEGORIES, MirrorWorkload, build_mirror
from .population import (
    Behavior,
    PopulationEngine,
    PopulationSpec,
    Stage,
    StageResult,
    default_behaviors,
)
from .restaurants import CUISINES, Menu, RestaurantsWorkload, build_restaurants
from .web import FaceRecord, FacesWorkload, build_faces
from .workload import Mutator, Scenario, ScenarioSpec, build_scenario

__all__ = [
    "Behavior",
    "CATEGORIES",
    "CUISINES",
    "CatalogEntry",
    "FaceRecord",
    "FacesWorkload",
    "LibraryWorkload",
    "Menu",
    "MirrorWorkload",
    "Mutator",
    "PopulationEngine",
    "PopulationSpec",
    "RestaurantsWorkload",
    "Scenario",
    "ScenarioSpec",
    "Stage",
    "StageResult",
    "build_faces",
    "build_library",
    "build_mirror",
    "build_restaurants",
    "build_scenario",
    "default_behaviors",
]
