"""The Pittsburgh restaurant-menu workload.

"Suppose you are a tourist in Pittsburgh and want to look at the
on-line menus of all Chinese restaurants before choosing where to eat
for dinner. … we would not go hungry if our restaurant search missed
some (but not all) Chinese restaurants in Pittsburgh."

Menus live on each restaurant's own server; a city guide collection
indexes them.  Menus "change weekly or seasonally", which the paper
models as remove-old-add-new; :meth:`RestaurantsWorkload.rotate_menu`
does exactly that.  The canonical query is a cuisine select with an
early stop once the tourist has seen enough menus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..net.failures import FaultPlan
from ..store.elements import Element
from ..weaksets.base import WeakSet
from ..weaksets.factory import make_weak_set
from ..weaksets.query import QueryIterator, select
from .workload import Scenario, ScenarioSpec, build_scenario

__all__ = ["Menu", "RestaurantsWorkload", "build_restaurants", "CUISINES"]

CUISINES = ["chinese", "italian", "thai", "diner", "indian", "ethiopian"]


@dataclass(frozen=True)
class Menu:
    """A restaurant's posted menu."""

    restaurant: str
    cuisine: str
    dishes: tuple[str, ...]
    season: int = 0

    def __str__(self) -> str:
        return f"{self.restaurant} [{self.cuisine}] ({len(self.dishes)} dishes, season {self.season})"


@dataclass
class RestaurantsWorkload:
    scenario: Scenario
    menus: list[Element]

    @property
    def kernel(self):
        return self.scenario.kernel

    @property
    def world(self):
        return self.scenario.world

    @property
    def net(self):
        return self.scenario.net

    def guide(self, semantics: str = "dynamic", **kwargs: Any) -> WeakSet:
        return make_weak_set(self.world, self.scenario.client,
                             self.scenario.coll_id, semantics, **kwargs)

    def menus_of(self, cuisine: str, semantics: str = "dynamic",
                 **kwargs: Any) -> QueryIterator:
        return select(self.guide(semantics, **kwargs),
                      lambda e, v: v is not None and v.cuisine == cuisine)

    def run_cuisine_query(self, cuisine: str, semantics: str = "dynamic",
                          max_menus: Optional[int] = None,
                          **kwargs: Any) -> Generator:
        query = self.menus_of(cuisine, semantics, **kwargs)
        result = yield from query.drain(max_yields=max_menus)
        return result

    def rotate_menu(self, element: Element) -> Generator:
        """The weekly menu change: delete the old item, add the new one.

        "we could model this by the deletion of an old item from the set
        followed by the addition of a new item."
        """
        from ..store.repository import Repository
        repo = Repository(self.world, self.scenario.spec.primary)
        old: Menu = self.world.server(element.home).objects[element.oid].value
        fresh = Menu(
            restaurant=old.restaurant,
            cuisine=old.cuisine,
            dishes=old.dishes,
            season=old.season + 1,
        )
        return (yield from repo.replace(
            self.scenario.coll_id, element,
            f"{old.restaurant}-menu-s{fresh.season}",
            value=fresh, home=element.home, size=1024,
        ))


def build_restaurants(seed: int = 0, *, n_restaurants: int = 30,
                      n_neighborhoods: int = 5,
                      fault_plan: Optional[FaultPlan] = None) -> RestaurantsWorkload:
    """The Pittsburgh guide: restaurants spread over neighborhoods."""
    spec = ScenarioSpec(
        n_clusters=n_neighborhoods,
        cluster_size=3,
        n_members=0,
        policy="any",
        inter_latency=0.030,          # it's one city, not a WAN
        fault_plan=fault_plan,
        coll_id="pgh-restaurants",
    )
    scenario = build_scenario(spec, seed=seed)
    stream = scenario.kernel.stream("restaurants.seed")
    menus: list[Element] = []
    for i in range(n_restaurants):
        cuisine = CUISINES[stream.zipf_index(len(CUISINES), 0.5)]
        menu = Menu(
            restaurant=f"rest{i:03d}",
            cuisine=cuisine,
            dishes=tuple(f"dish-{i}-{d}" for d in range(stream.randint(4, 12))),
        )
        hood = stream.zipf_index(n_neighborhoods, 0.4)
        node = f"n{hood}.{stream.randint(0, spec.cluster_size - 1)}"
        menus.append(scenario.world.seed_member(
            spec.coll_id, f"{menu.restaurant}-menu-s0", value=menu,
            home=node, size=1024,
        ))
    scenario.elements = menus
    return RestaurantsWorkload(scenario=scenario, menus=menus)
