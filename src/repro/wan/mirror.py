"""A software-distribution mirror workload on the dynamic-sets FS.

The paper generalizes beyond its three queries: weak sets suit any
"loose collections of reference objects (e.g., encyclopedias or papers
in archival journals) that are stored across many organizations."  A
mirror network is the canonical 1990s example: a package tree whose
files live on volunteer servers, some of which are down at any moment.

The workload builds ``/pub/<category>/<package>/`` trees scattered over
mirror sites and exposes the two queries users actually run: list a
category (``weak_ls``) and find packages by predicate (``weak_find``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dynsets.filesystem import FileSystem
from ..net.fabric import Network
from ..net.failures import FaultInjector, FaultPlan
from ..net.link import FixedLatency
from ..net.topology import wan_clusters
from ..sim.kernel import Kernel
from ..store.world import World

__all__ = ["MirrorWorkload", "build_mirror", "CATEGORIES"]

CATEGORIES = ["editors", "compilers", "games", "networking"]


@dataclass
class MirrorWorkload:
    kernel: Kernel
    net: Network
    world: World
    fs: FileSystem
    packages: list[str]              # package directory paths
    injector: Optional[FaultInjector] = None

    @property
    def client(self) -> str:
        return "client"


def build_mirror(seed: int = 0, *, n_sites: int = 4, site_size: int = 2,
                 packages_per_category: int = 3, files_per_package: int = 3,
                 fault_plan: Optional[FaultPlan] = None) -> MirrorWorkload:
    """Build the mirror network and its package tree."""
    kernel = Kernel(seed=seed)
    # 500 kB/s on every link: the old World(bandwidth=...) transfer
    # charge, now modeled where it belongs — on the wire.
    topo = wan_clusters([site_size] * n_sites,
                        intra_latency=FixedLatency(0.003),
                        inter_latency=FixedLatency(0.070),
                        intra_bandwidth=500_000.0,
                        inter_bandwidth=500_000.0)
    topo.add_node("client")
    topo.add_link("client", "n0.0", FixedLatency(0.003),
                  bandwidth=500_000.0)
    net = Network(kernel, topo)
    world = World(net)
    fs = FileSystem(world, root_node="n0.0")
    stream = kernel.stream("mirror.seed")

    def any_site_node() -> str:
        site = stream.zipf_index(n_sites, 0.7)
        return f"n{site}.{stream.randint(0, site_size - 1)}"

    fs.mkdir("/pub", node="n0.0")
    packages: list[str] = []
    for category in CATEGORIES:
        fs.mkdir(f"/pub/{category}", node=any_site_node())
        for p in range(packages_per_category):
            pkg = f"{category[:4]}-pkg{p}"
            pkg_path = f"/pub/{category}/{pkg}"
            pkg_node = any_site_node()
            fs.mkdir(pkg_path, node=pkg_node)
            packages.append(pkg_path)
            for f in range(files_per_package):
                size = stream.randint(10_000, 200_000)
                fs.create_file(
                    f"{pkg_path}/{pkg}-{f}.tar.gz",
                    content=f"tarball {pkg}/{f}",
                    home=any_site_node(),
                    size=size,
                )
            fs.create_file(f"{pkg_path}/README", content=f"{pkg} readme",
                           home=pkg_node, size=512)
    workload = MirrorWorkload(kernel=kernel, net=net, world=world, fs=fs,
                              packages=packages)
    if fault_plan is not None:
        workload.injector = FaultInjector(net, fault_plan)
        workload.injector.start()
    return workload
