"""Generic wide-area workload construction.

The paper's argument rests on three workload properties: objects are
*scattered* over many organizations, some far away; membership
*mutates rarely* ("Elements in the set change infrequently"); and
*failures are common*.  :func:`build_scenario` builds worlds with those
properties as dials, and :class:`Mutator` / the fault plans turn the
other two.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Generator, Optional

from ..errors import FailureException
from ..net.address import NodeId
from ..net.fabric import Network
from ..net.executor import ExecutorPolicy
from ..net.failures import FaultInjector, FaultPlan
from ..net.link import FixedLatency, ParetoLatency
from ..net.topology import wan_clusters
from ..net.wire import BANDWIDTH_PRESETS, WireFormat, codec_by_name
from ..sim.events import Sleep
from ..sim.kernel import Kernel
from ..store.offline import CONNECTED, OfflineClient
from ..store.repository import Repository
from ..store.world import World
from ..store.writeplan import AddSpec

__all__ = ["ScenarioSpec", "Scenario", "Mutator", "build_scenario",
           "member_plan"]


@dataclass(frozen=True)
class ScenarioSpec:
    """Dials for a wide-area scenario."""

    n_clusters: int = 4
    cluster_size: int = 4
    n_members: int = 40
    member_size: int = 2048                 # bytes per object
    placement_skew: float = 0.8             # Zipf skew over clusters
    policy: str = "any"
    replicas: int = 0                       # membership replicas (first nodes
                                            # of other clusters)
    object_replicas: int = 0                # per-object copies on other
                                            # clusters (failover targets)
    intra_latency: float = 0.002
    inter_latency: float = 0.080
    heavy_tail: bool = False                # Pareto inter-cluster latency
    service_time: float = 0.002
    replica_lag: float = 0.5
    fault_plan: Optional[FaultPlan] = None
    coll_id: str = "collection"
    fail_fast: bool = True                  # transport-layer failure signals
    rpc_timeout: float = 5.0                # the timeout backstop
    recovery_enabled: bool = True           # WAL + replay + scrub (E18 ablation)
    scrub_interval: float = 2.0             # repair daemon period
    rpc_populate: bool = False              # seed members over RPC from the
                                            # client (batched write pipeline)
                                            # instead of God-mode seeding
    populate_window: int = 4                # write-pipeline dials used when
    populate_batch: int = 8                 # rpc_populate is on
    # -- disconnected operation (E21) ----------------------------------
    disconnect_rate: float = 0.0            # client disconnects per second
                                            # (the mobile client flapping)
    offline_duration: float = 1.0           # mean seconds per offline stint
    dc_partition_rate: float = 0.0          # correlated whole-cluster
                                            # partitions per group-second
    # -- overload protection (E23) -------------------------------------
    executor: Optional[ExecutorPolicy] = None   # server admission control
                                                # (None = unbounded seed
                                                # concurrency)
    # -- the wire (E25) --------------------------------------------------
    codec: str = "compact"                  # wire codec: "compact" | "naive"
    bandwidth_preset: Optional[str] = None  # "lan" | "wan" | "mobile";
                                            # fills the three bandwidth
                                            # dials below where they are 0
    intra_bandwidth: float = 0.0            # bytes/s inside a cluster
    inter_bandwidth: float = 0.0            # bytes/s between cluster heads
    access_bandwidth: float = 0.0           # bytes/s on the client's link
    serialize_rate: float = 0.0             # sender-CPU bytes/s (0 = free)
    # -- sharded membership (E24) --------------------------------------
    shards: int = 0                         # 0 = classic single-primary
                                            # registry; N>0 partitions the
                                            # member registry over the
                                            # first N nodes (slot-major,
                                            # so shards spread across
                                            # clusters before doubling up)
    ring_vnodes: int = 16                   # virtual nodes per shard

    @property
    def client(self) -> NodeId:
        return "client"

    def bandwidths(self) -> tuple[float, float, float, float]:
        """Resolved (intra, inter, access, serialize_rate) in bytes/s.

        The named preset fills any dial left at 0; explicit non-zero
        dials win over the preset.
        """
        intra, inter = self.intra_bandwidth, self.inter_bandwidth
        access, srate = self.access_bandwidth, self.serialize_rate
        if self.bandwidth_preset is not None:
            preset = BANDWIDTH_PRESETS[self.bandwidth_preset]
            intra = intra or preset.intra
            inter = inter or preset.inter
            access = access or preset.access
            srate = srate or preset.serialize_rate
        return intra, inter, access, srate

    @property
    def primary(self) -> NodeId:
        return "n0.0"

    @property
    def shard_nodes(self) -> tuple[NodeId, ...]:
        """Shard servers, slot-major: n0.0, n1.0, … then n0.1, n1.1, …"""
        ordered = [f"n{c}.{i}" for i in range(self.cluster_size)
                   for c in range(self.n_clusters)]
        return tuple(ordered[:self.shards])

    @property
    def replica_nodes(self) -> tuple[NodeId, ...]:
        """Membership replicas; disjoint from :attr:`shard_nodes`."""
        if self.shards > 0:
            ordered = [f"n{c}.{i}" for i in range(self.cluster_size)
                       for c in range(self.n_clusters)]
            return tuple(ordered[self.shards:self.shards + self.replicas])
        return tuple(f"n{c}.0" for c in range(1, 1 + self.replicas))


@dataclass
class Scenario:
    """A built world, ready to run experiments against."""

    spec: ScenarioSpec
    kernel: Kernel
    net: Network
    world: World
    elements: list = field(default_factory=list)
    injector: Optional[FaultInjector] = None
    #: when set (e.g. by an experiment), the client flapper drives this
    #: OfflineClient — explicit DISCONNECTED state, outbox, reconcile —
    #: instead of raw partition isolate/rejoin.
    offline: Optional[OfflineClient] = None
    flaps: int = 0

    @property
    def coll_id(self) -> str:
        return self.spec.coll_id

    @property
    def client(self) -> NodeId:
        return self.spec.client

    def repo(self, client: Optional[NodeId] = None) -> Repository:
        return Repository(self.world, client or self.client)


def build_scenario(spec: ScenarioSpec, seed: int = 0) -> Scenario:
    """Deterministically build the world a spec describes.

    The client joins the first cluster (its "organization"); members are
    placed over clusters with Zipf skew — most objects nearby, a long
    tail far away — which is what makes closest-first matter.
    """
    kernel = Kernel(seed=seed)
    inter = (ParetoLatency(spec.inter_latency) if spec.heavy_tail
             else FixedLatency(spec.inter_latency))
    intra_bw, inter_bw, access_bw, serialize_rate = spec.bandwidths()
    topo = wan_clusters(
        [spec.cluster_size] * spec.n_clusters,
        intra_latency=FixedLatency(spec.intra_latency),
        inter_latency=inter,
        intra_bandwidth=intra_bw,
        inter_bandwidth=inter_bw,
    )
    topo.add_node(spec.client)
    topo.add_link(spec.client, "n0.0", FixedLatency(spec.intra_latency),
                  bandwidth=access_bw)
    wire = WireFormat(codec=codec_by_name(spec.codec),
                      serialize_rate=serialize_rate)
    net = Network(kernel, topo, fail_fast=spec.fail_fast,
                  default_timeout=spec.rpc_timeout, wire=wire)
    world = World(net, service_time=spec.service_time,
                  replica_lag=spec.replica_lag,
                  recovery_enabled=spec.recovery_enabled,
                  scrub_interval=spec.scrub_interval,
                  executor=spec.executor)
    replica_nodes = list(spec.replica_nodes)
    if spec.shards > 0:
        shard_nodes = spec.shard_nodes
        world.create_collection(spec.coll_id, primary=shard_nodes[0],
                                replicas=replica_nodes, policy=spec.policy,
                                shards=shard_nodes, vnodes=spec.ring_vnodes)
    else:
        world.create_collection(spec.coll_id, primary=spec.primary,
                                replicas=replica_nodes, policy=spec.policy)
    plan = member_plan(spec, kernel)
    if spec.rpc_populate:
        # Populate like an honest client would: batched multi-puts with
        # concurrent replica fan-out, group-committed registrations.
        repo = Repository(world, spec.client)
        elements = kernel.run_process(repo.add_many(
            spec.coll_id, plan, window=spec.populate_window,
            batch_size=spec.populate_batch))
    else:
        # God-mode: instant, free — the default, so experiments that
        # measure *other* phases keep their calibrated timings.
        elements = [world.seed_member(
            spec.coll_id, s.name, value=s.value,
            home=s.home, size=s.size, replicas=s.replicas,
        ) for s in plan]
    if spec.policy == "immutable":
        world.seal(spec.coll_id)
    scenario = Scenario(spec=spec, kernel=kernel, net=net, world=world,
                        elements=elements)
    plan = spec.fault_plan
    if spec.dc_partition_rate > 0.0:
        # Correlated whole-cluster partitions: augment (or create) the
        # fault plan with one group per cluster; groups containing a
        # protected node are filtered by the injector itself.
        groups = tuple(
            tuple(f"n{c}.{i}" for i in range(spec.cluster_size))
            for c in range(spec.n_clusters)
        )
        plan = replace(plan if plan is not None else FaultPlan(),
                       dc_partition_rate=spec.dc_partition_rate,
                       dc_groups=groups)
    if plan is not None and plan.total_rate(
            len(net.nodes), len(net.topology.links())) > 0:
        scenario.injector = FaultInjector(net, plan)
        scenario.injector.start()
    if spec.disconnect_rate > 0.0:
        kernel.spawn(_client_flapper(scenario), name="client-flapper",
                     daemon=True)
    return scenario


def _client_flapper(scenario: Scenario) -> Generator:
    """The mobile client's disconnect/reconnect schedule.

    Exponential inter-arrivals at ``disconnect_rate``; each stint lasts
    an exponential draw with mean ``offline_duration``.  When the
    scenario carries an :class:`OfflineClient` the flap is an explicit
    DISCONNECTED session (stale reads, outbox, reconcile-on-reconnect);
    otherwise it is a raw partition isolate/rejoin of the client node.
    """
    spec = scenario.spec
    stream = scenario.kernel.stream("workload.flapper")
    while True:
        yield Sleep(stream.exponential(1.0 / spec.disconnect_rate))
        duration = stream.exponential(max(spec.offline_duration, 1e-6))
        offline = scenario.offline
        if offline is not None:
            if offline.state != CONNECTED:
                continue                 # already offline or reconciling
            offline.disconnect()
            yield Sleep(duration)
            try:
                yield from offline.reconnect()
            except FailureException:
                # Reconcile hit an unreachable primary: entries stay
                # queued; the next reconnect retries them.
                pass
        else:
            scenario.net.isolate(spec.client)
            yield Sleep(duration)
            scenario.net.rejoin(spec.client)
        scenario.flaps += 1


def member_plan(spec: ScenarioSpec, kernel: Kernel) -> list[AddSpec]:
    """The deterministic member placement a spec describes.

    Draws from the kernel's ``"workload.placement"`` stream in exactly
    the order the God-mode seeder always has, so the same seed yields
    the same placements whether a world is seeded instantly, populated
    over RPC (``rpc_populate``), or populated by a benchmark measuring
    the write path itself.
    """
    stream = kernel.stream("workload.placement")
    plan: list[AddSpec] = []
    for i in range(spec.n_members):
        cluster = stream.zipf_index(spec.n_clusters, spec.placement_skew)
        node_index = stream.randint(0, spec.cluster_size - 1)
        home = f"n{cluster}.{node_index}"
        # Object replicas go to the same node slot in the next clusters
        # around the ring — deterministic, and never on the home cluster,
        # so a whole-cluster outage still leaves a copy elsewhere.
        object_replicas = tuple(
            f"n{(cluster + k) % spec.n_clusters}.{node_index}"
            for k in range(1, 1 + min(spec.object_replicas,
                                      spec.n_clusters - 1))
        )
        plan.append(AddSpec(name=f"m{i:04d}", value=f"payload-{i}",
                            home=home, size=spec.member_size,
                            replicas=object_replicas))
    return plan


class Mutator:
    """Background process mutating a collection at given rates.

    Adds create fresh members (on random nodes); removes pick random
    current members.  Mutations originate at the primary's node so they
    stay possible under client-side partitions.  Failed mutations
    (unreachable homes, policy rejections) are counted and skipped.
    """

    def __init__(self, scenario: Scenario, *, add_rate: float = 0.0,
                 remove_rate: float = 0.0, stream_name: str = "mutator"):
        self.scenario = scenario
        self.add_rate = add_rate
        self.remove_rate = remove_rate
        self.stream = scenario.kernel.stream(stream_name)
        self.repo = Repository(scenario.world, scenario.spec.primary)
        self.added: list = []
        self.removed: list = []
        self.failures = 0
        self._counter = itertools.count(1)

    def start(self) -> None:
        total = self.add_rate + self.remove_rate
        if total > 0:
            self.scenario.kernel.spawn(self._run(), name="mutator", daemon=True)

    def _run(self) -> Generator:
        from ..errors import MutationNotAllowed, StoreError, FailureException
        spec = self.scenario.spec
        total = self.add_rate + self.remove_rate
        while True:
            yield Sleep(self.stream.exponential(1.0 / total))
            do_add = self.stream.random() * total < self.add_rate
            try:
                if do_add:
                    i = next(self._counter)
                    cluster = self.stream.zipf_index(spec.n_clusters,
                                                     spec.placement_skew)
                    node_index = self.stream.randint(0, spec.cluster_size - 1)
                    node = f"n{cluster}.{node_index}"
                    replicas = tuple(
                        f"n{(cluster + k) % spec.n_clusters}.{node_index}"
                        for k in range(1, 1 + min(spec.object_replicas,
                                                  spec.n_clusters - 1))
                    )
                    # One-spec batch through the write pipeline: same
                    # RPC sequence as repo.add, but with the replica
                    # fan-out concurrent and the registration group-
                    # committed — the path real bulk writers take.
                    added = yield from self.repo.add_many(
                        spec.coll_id,
                        [AddSpec(f"added-{i:04d}",
                                 value=f"added-payload-{i}", home=node,
                                 size=spec.member_size, replicas=replicas)],
                        window=1, batch_size=1,
                    )
                    self.added.extend(added)
                else:
                    current = sorted(
                        self.scenario.world.true_members(spec.coll_id),
                        key=lambda e: e.name,
                    )
                    if not current:
                        continue
                    victim = current[self.stream.randint(0, len(current) - 1)]
                    yield from self.repo.remove(spec.coll_id, victim)
                    self.removed.append(victim)
            except (FailureException, MutationNotAllowed, StoreError):
                self.failures += 1
