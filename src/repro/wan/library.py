"""The library-information-system (LIS) workload.

"Suppose through the on-line library information system (LIS) you want
to get a list of papers by a particular author. … if the LIS database
is not up-to-date, we would not be surprised if an author's most recent
paper is not listed."

The catalog is a grow-only collection (papers are never retracted —
"an LIS entry, never [changes]"); new papers arrive while queries run.
The canonical query is a predicate select by author.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..net.failures import FaultPlan
from ..store.elements import Element
from ..weaksets.base import WeakSet
from ..weaksets.factory import make_weak_set
from ..weaksets.query import QueryIterator, select
from .workload import Scenario, ScenarioSpec, build_scenario

__all__ = ["CatalogEntry", "LibraryWorkload", "build_library"]

_AUTHORS = ["wing", "steere", "liskov", "garcia-molina", "satyanarayanan",
            "guttag", "reynolds", "owicki"]


@dataclass(frozen=True)
class CatalogEntry:
    """One card-catalog record."""

    title: str
    author: str
    year: int

    def __str__(self) -> str:
        return f"{self.author} ({self.year}): {self.title}"


@dataclass
class LibraryWorkload:
    scenario: Scenario
    entries: list[Element]

    @property
    def kernel(self):
        return self.scenario.kernel

    @property
    def world(self):
        return self.scenario.world

    @property
    def net(self):
        return self.scenario.net

    def catalog(self, semantics: str = "grow-only", **kwargs: Any) -> WeakSet:
        return make_weak_set(self.world, self.scenario.client,
                             self.scenario.coll_id, semantics, **kwargs)

    def papers_by(self, author: str, semantics: str = "grow-only",
                  **kwargs: Any) -> QueryIterator:
        """The paper's query: all papers by one author."""
        return select(self.catalog(semantics, **kwargs),
                      lambda e, v: v is not None and v.author == author)

    def run_author_query(self, author: str, semantics: str = "grow-only",
                         **kwargs: Any) -> Generator:
        query = self.papers_by(author, semantics, **kwargs)
        result = yield from query.drain()
        return result


def build_library(seed: int = 0, *, n_entries: int = 60, n_sites: int = 5,
                  fault_plan: Optional[FaultPlan] = None) -> LibraryWorkload:
    """Catalog entries scattered over library consortium sites."""
    spec = ScenarioSpec(
        n_clusters=n_sites,
        cluster_size=2,
        n_members=0,
        policy="grow-only",
        inter_latency=0.050,
        fault_plan=fault_plan,
        coll_id="lis-catalog",
    )
    scenario = build_scenario(spec, seed=seed)
    stream = scenario.kernel.stream("library.seed")
    entries: list[Element] = []
    for i in range(n_entries):
        author = _AUTHORS[stream.zipf_index(len(_AUTHORS), 0.7)]
        entry = CatalogEntry(
            title=f"On the Theory of Topic {i:03d}",
            author=author,
            year=1975 + stream.randint(0, 19),
        )
        site = stream.zipf_index(n_sites, 0.6)
        node = f"n{site}.{stream.randint(0, spec.cluster_size - 1)}"
        entries.append(scenario.world.seed_member(
            spec.coll_id, f"paper{i:03d}", value=entry, home=node, size=512,
        ))
    scenario.elements = entries
    return LibraryWorkload(scenario=scenario, entries=entries)
