"""The WWW ``.face`` workload.

"Suppose you are browsing the World Wide Web (WWW) and want to display
the .face files of all people listed on Carnegie Mellon's home page."

The home page is a collection hosted at CMU (cluster 0); each listed
person's ``.face`` bitmap lives on their own organization's server —
many local, some far away, a few behind flaky links.  The query is a
plain iteration: display faces as they arrive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..net.failures import FaultPlan
from ..store.elements import Element
from ..weaksets.base import WeakSet
from ..weaksets.factory import make_weak_set
from .workload import Scenario, ScenarioSpec, build_scenario

__all__ = ["FaceRecord", "FacesWorkload", "build_faces"]


@dataclass(frozen=True)
class FaceRecord:
    """A person's entry: their ``.face`` bitmap plus minimal identity."""

    person: str
    organization: str
    bitmap_bytes: int

    def __str__(self) -> str:
        return f"{self.person} ({self.organization}, {self.bitmap_bytes}B .face)"


@dataclass
class FacesWorkload:
    """The built scenario plus domain helpers."""

    scenario: Scenario
    people: list[Element]

    @property
    def kernel(self):
        return self.scenario.kernel

    @property
    def world(self):
        return self.scenario.world

    @property
    def net(self):
        return self.scenario.net

    def home_page(self, semantics: str = "dynamic", **kwargs: Any) -> WeakSet:
        """The home-page weak set, seen from the browsing client."""
        return make_weak_set(self.world, self.scenario.client,
                             self.scenario.coll_id, semantics, **kwargs)

    def display_all_faces(self, semantics: str = "dynamic",
                          **kwargs: Any) -> Generator:
        """The paper's query as a runnable process: drain the iterator."""
        ws = self.home_page(semantics, **kwargs)
        iterator = ws.elements()
        result = yield from iterator.drain()
        return result


def build_faces(seed: int = 0, *, n_people: int = 48, n_orgs: int = 6,
                fault_plan: Optional[FaultPlan] = None,
                policy: str = "any") -> FacesWorkload:
    """Build the CMU home-page world.

    ``.face`` files are small (1–4 KB) bitmaps; people cluster at a few
    big organizations (Zipf placement); the page itself changes rarely
    (people join/leave ~annually), which the caller models with a
    :class:`~repro.wan.workload.Mutator` if desired.
    """
    spec = ScenarioSpec(
        n_clusters=n_orgs,
        cluster_size=3,
        n_members=0,                        # we seed people ourselves
        policy=policy,
        heavy_tail=True,
        inter_latency=0.060,
        fault_plan=fault_plan,
        coll_id="cmu-home-page",
    )
    scenario = build_scenario(spec, seed=seed)
    stream = scenario.kernel.stream("faces.seed")
    people: list[Element] = []
    for i in range(n_people):
        org = stream.zipf_index(n_orgs, 0.9)
        node = f"n{org}.{stream.randint(0, spec.cluster_size - 1)}"
        size = stream.randint(1024, 4096)
        record = FaceRecord(person=f"person{i:03d}", organization=f"org{org}",
                            bitmap_bytes=size)
        people.append(scenario.world.seed_member(
            spec.coll_id, f"{record.person}.face", value=record,
            home=node, size=size,
        ))
    if policy == "immutable":
        scenario.world.seal(spec.coll_id)
    scenario.elements = people
    return FacesWorkload(scenario=scenario, people=people)
